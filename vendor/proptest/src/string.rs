//! Regex-subset string generation: the sub-language proptest string
//! strategies are used with in this workspace.
//!
//! Supported syntax: literal characters, `\n`/`\t`/`\\` escapes, character
//! classes `[...]` (with `a-z` ranges, escapes, and literal leading/trailing
//! `-`), groups `(...)`, and counted repetition `{m,n}` / `{n}` on any atom.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<(Atom, (usize, usize))>),
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset (unterminated class or
/// group, malformed repetition).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_sequence(&mut pattern.chars().collect::<Vec<_>>().as_slice());
    let mut out = String::new();
    emit_sequence(&atoms, rng, &mut out);
    out
}

fn emit_sequence(atoms: &[(Atom, (usize, usize))], rng: &mut TestRng, out: &mut String) {
    for (atom, (lo, hi)) in atoms {
        let count = if lo == hi {
            *lo
        } else {
            rng.gen_range_usize(*lo, hi + 1)
        };
        for _ in 0..count {
            emit_atom(atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                .sum();
            let mut pick = rng.gen_range_u64(0, total.max(1));
            for (a, b) in ranges {
                let span = (*b as u64) - (*a as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*a as u32 + pick as u32).unwrap_or(*a));
                    break;
                }
                pick -= span;
            }
        }
        Atom::Group(inner) => emit_sequence(inner, rng, out),
    }
}

/// Parses a sequence of quantified atoms, consuming until end of input or an
/// unmatched `)`.
fn parse_sequence(input: &mut &[char]) -> Vec<(Atom, (usize, usize))> {
    let mut out = Vec::new();
    while let Some(&c) = input.first() {
        let atom = match c {
            ')' => break,
            '(' => {
                *input = &input[1..];
                let inner = parse_sequence(input);
                assert_eq!(input.first(), Some(&')'), "unterminated group");
                *input = &input[1..];
                Atom::Group(inner)
            }
            '[' => {
                *input = &input[1..];
                Atom::Class(parse_class(input))
            }
            '\\' => {
                *input = &input[1..];
                let esc = *input.first().expect("dangling escape");
                *input = &input[1..];
                Atom::Literal(unescape(esc))
            }
            _ => {
                *input = &input[1..];
                Atom::Literal(c)
            }
        };
        let reps = parse_repetition(input);
        out.push((atom, reps));
    }
    out
}

/// Parses the inside of `[...]` into inclusive character ranges.
fn parse_class(input: &mut &[char]) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let &c = input.first().expect("unterminated character class");
        *input = &input[1..];
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                return ranges;
            }
            '\\' => {
                let &esc = input.first().expect("dangling escape in class");
                *input = &input[1..];
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(unescape(esc));
            }
            '-' => {
                // A dash is a range operator only between two chars;
                // leading or trailing it is a literal.
                match (pending.take(), input.first()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        let hi = if hi == '\\' {
                            *input = &input[1..];
                            let &esc = input.first().expect("dangling escape in range");
                            *input = &input[1..];
                            unescape(esc)
                        } else {
                            *input = &input[1..];
                            hi
                        };
                        assert!(lo <= hi, "inverted class range {lo}-{hi}");
                        ranges.push((lo, hi));
                    }
                    (prev, _) => {
                        if let Some(p) = prev {
                            ranges.push((p, p));
                        }
                        pending = Some('-');
                    }
                }
            }
            _ => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(c);
            }
        }
    }
}

/// Parses an optional `{m,n}` / `{n}` suffix; defaults to exactly one.
fn parse_repetition(input: &mut &[char]) -> (usize, usize) {
    if input.first() != Some(&'{') {
        return (1, 1);
    }
    let close = input
        .iter()
        .position(|&c| c == '}')
        .expect("unterminated repetition");
    let body: String = input[1..close].iter().collect();
    *input = &input[close + 1..];
    match body.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().expect("repetition lower bound");
            let hi = hi.trim().parse().expect("repetition upper bound");
            assert!(lo <= hi, "inverted repetition {lo},{hi}");
            (lo, hi)
        }
        None => {
            let n = body.trim().parse().expect("repetition count");
            (n, n)
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        let mut rng = TestRng::seed_from_u64(seed);
        generate_from_pattern(pattern, &mut rng)
    }

    #[test]
    fn class_with_ranges_and_len() {
        for seed in 0..50 {
            let s = gen("[a-z]{1,6}", seed);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_space_to_tilde() {
        for seed in 0..50 {
            let s = gen("[ -~]{0,16}", seed);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn escaped_dash_and_specials_in_class() {
        let pattern = "[a-zA-Z0-9_./ {}:#|>\\-]{0,24}";
        let allowed = |c: char| c.is_ascii_alphanumeric() || "_./ {}:#|>-".contains(c);
        for seed in 0..80 {
            let s = gen(pattern, seed);
            assert!(s.len() <= 24);
            assert!(s.chars().all(allowed), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut saw_dash = false;
        for seed in 0..300 {
            let s = gen("[a-zA-Z0-9_.: -]{1,12}", seed);
            assert!(!s.is_empty() && s.len() <= 12);
            saw_dash |= s.contains('-');
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.: -".contains(c)),
                "{s:?}"
            );
        }
        assert!(saw_dash, "dash must be generatable as a literal");
    }

    #[test]
    fn group_with_newline_literal() {
        for seed in 0..50 {
            let s = gen("([a-z ]{0,8}\n){0,4}", seed);
            assert!(s.lines().count() <= 4);
            assert!(s.is_empty() || s.ends_with('\n'), "{s:?}");
        }
    }

    #[test]
    fn class_including_newline() {
        let mut saw_newline = false;
        for seed in 0..100 {
            let s = gen("[ -~\n]{0,200}", seed);
            assert!(s.len() <= 200);
            saw_newline |= s.contains('\n');
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
        assert!(saw_newline);
    }

    #[test]
    fn exact_repetition() {
        assert_eq!(gen("x{3}", 1), "xxx");
        assert_eq!(gen("ab", 1), "ab");
    }
}
