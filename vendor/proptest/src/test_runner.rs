//! Test-runner configuration and the per-case error type.

use std::fmt;

/// How many cases `proptest!` runs per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why one generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The per-case result type proptest bodies may `return Ok(())` from.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Placeholder runner type for API compatibility (unused by the macro).
#[derive(Debug, Default)]
pub struct TestRunner;

/// Derives the deterministic seed for one named case index.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_case_and_name() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(512).cases, 512);
    }
}
