//! The deterministic RNG driving all strategies: splitmix64, seeded per
//! test case so failures are reproducible from the printed seed.

/// A splitmix64 generator — tiny, fast, and statistically fine for test-case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range_u64(5, 9);
            assert!((5..9).contains(&v));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
