//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The container building this repository cannot reach crates.io, so the real
//! `proptest` cannot be fetched. This shim keeps the property-test sources
//! compiling and *meaningful*: strategies generate seeded pseudo-random
//! values (including a regex-subset string generator), `proptest!` runs the
//! configured number of cases, and failures panic with the case seed so a
//! run can be reproduced. What it does not do is shrink counterexamples.

pub mod strategy;
pub mod string;
pub mod test_runner;

mod rng;

pub use rng::TestRng;

/// `proptest::collection` — collection strategies (only `vec` is needed).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a uniformly sampled length.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let hi = self.size.end.max(self.size.start + 1);
            let len = rng.gen_range_usize(self.size.start, hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::arbitrary` — the [`Arbitrary`] trait behind [`any`].
pub mod arbitrary {
    use crate::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_u64() & 1 == 1
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_u64() as i64
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_u64() as u32
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_u64() as usize
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_f64() * 2e9 - 1e9
        }
    }
}

/// Strategy producing any value of `T` (via [`arbitrary::Arbitrary`]).
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// The prelude: everything the test files import with `use
/// proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares seeded property tests. Mirrors proptest's surface: an optional
/// `#![proptest_config(..)]` inner attribute, then test functions whose
/// arguments are drawn from strategies with `pat in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let mut __pt_rng = $crate::TestRng::seed_from_u64(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strategy),
                        &mut __pt_rng,
                    );)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest {}: case {}/{} (seed {:#x}) failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            seed,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments on cases must be accepted like in real proptest.
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-2.0..2.0).contains(&f), "f={}", f);
        }

        #[test]
        fn string_pattern_respects_class_and_len(s in "[a-z]{1,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{:?}", s);
        }

        #[test]
        fn vec_and_tuple_strategies(
            pairs in prop::collection::vec(("[a-z]{1,3}", 0u64..9), 0..5),
        ) {
            prop_assert!(pairs.len() < 5);
            for (k, v) in &pairs {
                prop_assert!(!k.is_empty() && *v < 9);
            }
        }

        #[test]
        fn oneof_map_and_recursive(v in super::tests::nested()) {
            prop_assert!(depth(&v) <= 4, "depth {}", depth(&v));
        }

        #[test]
        fn early_ok_return_is_allowed(x in 0u64..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    /// A tiny recursive tree, mirroring the YAML round-trip test's shape.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Tree {
        Leaf(i64),
        Flag(bool),
        Node(Vec<Tree>),
    }

    pub fn nested() -> BoxedStrategy<Tree> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(Tree::Leaf),
            any::<bool>().prop_map(Tree::Flag),
        ];
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) | Tree::Flag(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        use crate::strategy::Strategy;
        let s = "[a-zA-Z0-9_.: -]{1,12}";
        let mut a = crate::TestRng::seed_from_u64(99);
        let mut b = crate::TestRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
