//! The [`Strategy`] trait and its combinators: constants, maps, unions,
//! tuples, ranges, and boxed (type-erased, clonable) strategies.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::TestRng;

/// A recipe for generating values of one type from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth and returns the one for the next. `depth` levels are
    /// stacked on top of `self` (the leaf); the `_desired_size` /
    /// `_expected_branch_size` hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = f(current).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe form of [`Strategy`] (used by [`BoxedStrategy`]).
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for the whole domain of `T` (see [`crate::any`]).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (see
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range_usize(0, self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.gen_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.gen_f64() as f32) * (self.end - self.start)
    }
}

/// String literals are regex-subset strategies, like in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_and_map() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = Just(21).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng), 42);
    }

    #[test]
    fn union_picks_all_options_eventually() {
        let mut rng = TestRng::seed_from_u64(4);
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn int_ranges_cover_negative_spans() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn boxed_is_clonable_and_shared() {
        let b = Just("x".to_string()).boxed();
        let c = b.clone();
        let mut rng = TestRng::seed_from_u64(6);
        assert_eq!(b.generate(&mut rng), c.generate(&mut rng));
    }
}
