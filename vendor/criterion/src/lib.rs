//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The container building this repository cannot reach crates.io, so the real
//! `criterion` cannot be fetched. This shim keeps the bench sources compiling
//! unchanged (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `benchmark_group` / `bench_with_input`) and performs honest wall-clock
//! measurement: a warm-up pass, `sample_size` timed samples, and a report of
//! the median time per iteration plus throughput when configured.
//!
//! It is intentionally tiny: no statistical regression analysis, no HTML
//! reports, no CLI filtering — just numbers on stdout in a stable format.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
pub struct Criterion {
    sample_size: usize,
    /// Target time for one measured sample.
    sample_target: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            sample_target: Duration::from_millis(50),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target measurement time for one sample.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.sample_target = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Throughput annotation: turns time/iter into a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        run_one(self.criterion, &label, throughput, &mut |b| f(b, input));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        run_one(self.criterion, &label, throughput, &mut |b| f(b));
        self
    }

    /// Ends the group (reports are printed eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the bench closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    /// Iterations to run in the timed region.
    iters: u64,
    /// Measured elapsed time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up while estimating iterations per sample.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    while warm_start.elapsed() < cfg.warm_up {
        let elapsed = time_once(f, iters);
        per_iter = elapsed.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        if elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(4).max(1);
        } else if elapsed < cfg.sample_target {
            iters = iters.saturating_mul(2).max(1);
        }
    }
    // Pick an iteration count aiming at sample_target per sample.
    let target_ns = cfg.sample_target.as_nanos().max(1) as u64;
    let per_ns = per_iter.as_nanos().max(1) as u64;
    let iters = (target_ns / per_ns).clamp(1, 1_000_000_000);

    let mut samples: Vec<f64> = (0..cfg.sample_size)
        .map(|_| time_once(f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let mut line = format!(
        "bench: {label:<48} time/iter: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (median * 1e-9);
        line.push_str(&format!("  thrpt: {rate:.0} {unit}"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        assert!(runs > 0, "routine must have been exercised");
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("350M").id, "350M");
    }
}
