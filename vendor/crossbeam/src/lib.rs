//! Offline stand-in for the parts of `crossbeam` this workspace uses.
//!
//! The container building this repository has no access to crates.io, so the
//! real `crossbeam` cannot be fetched. Scoped threads have been part of the
//! standard library since Rust 1.63 (`std::thread::scope`); this shim exposes
//! them under the `crossbeam::scope` API so callers keep the familiar
//! `scope.spawn(|_| ...)` / `handle.join()` shape. The [`channel`] module
//! adds bounded MPMC channels (mutex + condvar, not lock-free) under the
//! `crossbeam::channel::bounded` API for the streaming pipeline stages.

pub mod channel;

use std::any::Any;
use std::thread;

/// A scope in which threads borrowing local data can be spawned.
///
/// Wraps [`std::thread::Scope`]; spawned closures receive a copy of the
/// scope so nested spawns work like in crossbeam.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned inside a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload if it panicked.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (crossbeam
    /// style) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
///
/// All spawned threads are joined before this returns (the `std` scope
/// guarantees it). Mirrors `crossbeam::scope`'s `Result` return so existing
/// `.expect("crossbeam scope")` call sites compile unchanged; the error arm
/// is never produced because unjoined panics propagate as panics, exactly
/// like `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let total: u32 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| scope.spawn(move |_| part.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(r, 7);
    }
}
