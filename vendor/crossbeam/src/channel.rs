//! Bounded MPMC channels, API-compatible with `crossbeam-channel`'s
//! `bounded` for the subset this workspace uses.
//!
//! The real crate is lock-free; this stand-in is a `Mutex<VecDeque>` with
//! two condvars (not-empty / not-full), which is plenty for the pipeline
//! stages that use it (document-sized messages, thousands per second, not
//! tens of millions). Semantics match crossbeam where it matters:
//!
//! * `bounded(cap)` creates a channel holding at most `cap` messages;
//!   `send` blocks while full, `recv` blocks while empty;
//! * senders and receivers are cloneable handles; the channel disconnects
//!   when either side's last handle drops;
//! * `recv` on an empty disconnected channel returns [`RecvError`];
//!   `send` on a receiver-less channel returns the message in
//!   [`SendError`];
//! * `len()` reports the queue depth (used for backpressure gauges).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] once the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// The sending half of a bounded channel. Cloneable; the channel
/// disconnects for receivers when the last clone drops.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a bounded channel. Cloneable (MPMC); the channel
/// disconnects for senders when the last clone drops.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a bounded channel that holds at most `capacity` messages.
///
/// # Panics
///
/// Panics if `capacity == 0` (rendezvous channels are not implemented).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "zero-capacity channels are not supported");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `msg`. Returns the message
    /// in `Err` if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.inner.capacity {
                state.queue.push_back(msg);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Messages currently queued (a backpressure signal, racy by nature).
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives. Returns [`RecvError`] once the
    /// channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Messages currently queued (a backpressure signal, racy by nature).
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator over received messages; ends when the channel
    /// disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).expect("send");
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_after_all_senders_drop_drains_then_errors() {
        let (tx, rx) = bounded(2);
        tx.send(1).expect("send");
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_after_all_receivers_drop_returns_message() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_capacity_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).expect("send");
        let t = thread::spawn(move || {
            // Blocks until the main thread drains one slot.
            tx.send(1).expect("send");
        });
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        t.join().expect("join");
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded(8);
        let n = 200;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..n {
                        tx.send(p * n + i).expect("send");
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().expect("producer");
        }
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..4 * n).collect::<Vec<_>>());
    }

    #[test]
    fn len_reports_queue_depth() {
        let (tx, rx) = bounded(4);
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(1).expect("send");
        tx.send(2).expect("send");
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
    }
}
