#!/usr/bin/env bash
# Repo lint gate: formatting, clippy (warnings are errors), a compile pass
# over every test and bench target so bench-only breakage is caught without
# running criterion, the fast decode-agreement suites (the bit-for-bit
# guarantees behind prefill, batching, the prefix KV cache, speculative
# decoding, and int8 quantization), the tensor-kernel unit + property tests
# (including the quantized GEBP's dequant-oracle identity), doc tests, the
# telemetry substrate's unit + property tests, the router agreement suite
# (rendezvous stability + multi-replica/single-replica bit-identity), and
# the grammar crate's automaton unit + property tests, the grammar
# agreement suite (constrained decodes parse + lint clean, bit-identity
# with unconstrained whenever the unconstrained argmax is legal, across
# the solo/batched/speculative paths), and
# the observability/serving e2e tests (/metrics scrape, /healthz, /readyz,
# SSE streaming vs plain bit-identity, constrained completions over HTTP
# incl. SSE, keep-alive socket reuse — all over real sockets), and the
# curation crate's unit + property + determinism suites (MinHash estimator
# tolerance and LSH recall/no-false-drop properties, plus the end-to-end
# byte-identical-shards-across-worker-counts contract). Run from
# the repository root before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace --no-run
cargo bench --workspace --no-run
cargo test -q -p wisdom-model \
  --test prefill_agreement \
  --test batch_agreement \
  --test prefix_cache_agreement \
  --test speculative_agreement \
  --test quant_agreement \
  --test grammar_agreement
cargo test -q -p wisdom-grammar
cargo test -q -p wisdom-tensor
cargo test --doc -q
cargo test -q -p wisdom-telemetry
cargo test -q -p wisdom-server --test router_props
cargo test -q -p wisdom-curation
cargo test -q --test server_e2e -- \
  metrics_scrape_mid_load_counts_requests \
  health_and_readiness_endpoints \
  streaming_completion_is_bit_identical_to_the_plain_response \
  keep_alive_connection_reuses_one_socket_for_sequential_requests \
  constrained_completion_round_trip_and_stats_echo \
  invalid_constraint_is_rejected_with_400 \
  streaming_constrained_completion_matches_the_plain_constrained_response
