#!/usr/bin/env bash
# Repo lint gate: formatting and clippy (warnings are errors).
# Run from the repository root before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
