#!/usr/bin/env bash
# Repo lint gate: formatting, clippy (warnings are errors), and a compile
# pass over every test and bench target so bench-only breakage is caught
# without running criterion. Run from the repository root before sending a
# change.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace --no-run
cargo bench --workspace --no-run
