#!/usr/bin/env bash
# Repo lint gate: formatting, clippy (warnings are errors), a compile pass
# over every test and bench target so bench-only breakage is caught without
# running criterion, and the fast decode-agreement suites (the bit-for-bit
# guarantees behind prefill, batching, and the prefix KV cache). Run from
# the repository root before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace --no-run
cargo bench --workspace --no-run
cargo test -q -p wisdom-model \
  --test prefill_agreement \
  --test batch_agreement \
  --test prefix_cache_agreement
