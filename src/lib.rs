//! Ansible Wisdom — facade crate.
//!
//! Re-exports every subsystem of the Ansible Wisdom reproduction (DAC 2023,
//! *Automated Code generation for Information Technology Tasks in YAML
//! through Large Language Models*) under one roof. See the individual crates
//! for details:
//!
//! * [`yaml`] — YAML parser/emitter substrate.
//! * [`ansible`] — Ansible domain model, schema lint, normalization.
//! * [`corpus`] — dataset construction pipeline.
//! * [`tokenizer`] — BPE tokenizer.
//! * [`tensor`] — CPU autograd engine.
//! * [`model`] — transformer / n-gram / retrieval language models.
//! * [`metrics`] — Exact Match, BLEU, Ansible Aware, Schema Correct.
//! * [`eval`] — experiment harness regenerating the paper's tables.
//! * [`telemetry`] — metrics registry, latency histograms, Prometheus
//!   exposition, structured logging.
//! * [`core`] — the end-to-end Wisdom pipeline and completion service.
//! * [`server`] — REST inference server.
//!
//! # Examples
//!
//! ```
//! let doc = ansible_wisdom::yaml::parse("- name: demo\n  ansible.builtin.ping: {}\n")?;
//! assert!(doc.as_seq().is_some());
//! # Ok::<(), ansible_wisdom::yaml::ParseYamlError>(())
//! ```

pub use wisdom_ansible as ansible;
pub use wisdom_core as core;
pub use wisdom_corpus as corpus;
pub use wisdom_curation as curation;
pub use wisdom_eval as eval;
pub use wisdom_metrics as metrics;
pub use wisdom_model as model;
pub use wisdom_prng as prng;
pub use wisdom_server as server;
pub use wisdom_telemetry as telemetry;
pub use wisdom_tensor as tensor;
pub use wisdom_tokenizer as tokenizer;
pub use wisdom_yaml as yaml;
