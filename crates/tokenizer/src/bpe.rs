//! Byte-level BPE implementation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Mutex;

/// Names of the reserved special tokens, in id order.
///
/// * `<|endoftext|>` — end-of-generation marker appended after every
///   fine-tuning sample and used as the stop condition at inference.
/// * `<|sep|>` — file separator used when packing pre-training files into
///   fixed context windows (§4.3 of the paper).
/// * `<|pad|>` — batch padding.
pub static SPECIAL_TOKENS: &[&str] = &["<|endoftext|>", "<|sep|>", "<|pad|>"];

const NUM_SPECIAL: u32 = 3;
// Base vocabulary: 3 specials + 256 raw bytes = 259 tokens.

/// A trainable byte-level BPE tokenizer.
///
/// Token id layout: `[0, 3)` special tokens, `[3, 259)` raw bytes,
/// `[259, …)` learned merges.
#[derive(Debug)]
pub struct BpeTokenizer {
    /// Learned merges in rank order: merging `(left, right)` token ids.
    merges: Vec<(u32, u32)>,
    /// Byte content of every token id (empty for specials).
    vocab_bytes: Vec<Vec<u8>>,
    /// Merge pair → resulting token id.
    merge_table: HashMap<(u32, u32), u32>,
    /// Per-word encode cache.
    cache: Mutex<HashMap<Vec<u8>, Vec<u32>>>,
}

impl BpeTokenizer {
    /// The `<|endoftext|>` token id.
    pub fn eot(&self) -> u32 {
        0
    }

    /// The `<|sep|>` file-separator token id.
    pub fn sep(&self) -> u32 {
        1
    }

    /// The `<|pad|>` token id.
    pub fn pad(&self) -> u32 {
        2
    }

    /// Total vocabulary size (specials + bytes + merges).
    pub fn vocab_size(&self) -> usize {
        self.vocab_bytes.len()
    }

    /// Byte content of token `id` (empty slice for the special tokens),
    /// or `None` when `id` is out of range. Lets downstream consumers —
    /// notably the grammar-constrained decoder — classify the vocabulary
    /// without re-deriving the byte table.
    pub fn token_bytes(&self, id: u32) -> Option<&[u8]> {
        self.vocab_bytes.get(id as usize).map(Vec::as_slice)
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Trains a tokenizer on `texts`, growing the vocabulary to at most
    /// `vocab_size` tokens (never below the 259 base tokens).
    ///
    /// Training follows the classic BPE recipe: pre-tokenize into words,
    /// count adjacent token-pair frequencies, repeatedly merge the most
    /// frequent pair. Ties break toward the lexicographically smaller pair so
    /// training is deterministic.
    pub fn train<'a, I>(texts: I, vocab_size: usize) -> BpeTokenizer
    where
        I: IntoIterator<Item = &'a str>,
    {
        // Word frequency table.
        let mut word_counts: HashMap<Vec<u8>, u64> = HashMap::new();
        for text in texts {
            for word in pre_tokenize(text) {
                *word_counts.entry(word.as_bytes().to_vec()).or_insert(0) += 1;
            }
        }
        // Each distinct word as a sequence of token ids (initially bytes).
        let mut words: Vec<(Vec<u32>, u64)> = word_counts
            .into_iter()
            .map(|(bytes, count)| {
                (
                    bytes.iter().map(|b| NUM_SPECIAL + u32::from(*b)).collect(),
                    count,
                )
            })
            .collect();
        // Deterministic order regardless of hash seeds.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        let mut vocab_bytes: Vec<Vec<u8>> = Vec::new();
        for _ in 0..NUM_SPECIAL {
            vocab_bytes.push(Vec::new());
        }
        for b in 0..=255u8 {
            vocab_bytes.push(vec![b]);
        }

        let mut merges = Vec::new();
        let mut merge_table = HashMap::new();
        let target = vocab_size.max(vocab_bytes.len());

        while vocab_bytes.len() < target {
            // Count adjacent pairs.
            let mut pair_counts: HashMap<(u32, u32), u64> = HashMap::new();
            for (word, count) in &words {
                for w in word.windows(2) {
                    *pair_counts.entry((w[0], w[1])).or_insert(0) += count;
                }
            }
            let Some((&best_pair, &best_count)) = pair_counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if best_count < 2 {
                break;
            }
            let new_id = vocab_bytes.len() as u32;
            let mut merged_bytes = vocab_bytes[best_pair.0 as usize].clone();
            merged_bytes.extend_from_slice(&vocab_bytes[best_pair.1 as usize]);
            vocab_bytes.push(merged_bytes);
            merges.push(best_pair);
            merge_table.insert(best_pair, new_id);
            for (word, _) in &mut words {
                apply_merge(word, best_pair, new_id);
            }
        }

        BpeTokenizer {
            merges,
            vocab_bytes,
            merge_table,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Encodes text into token ids. Special tokens are never produced by
    /// `encode`; use [`BpeTokenizer::sep`]/[`BpeTokenizer::eot`] to insert
    /// them explicitly.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3 + 1);
        for word in pre_tokenize(text) {
            let bytes = word.as_bytes();
            if let Some(cached) = self.cache.lock().expect("cache lock").get(bytes) {
                out.extend_from_slice(cached);
                continue;
            }
            let ids = self.encode_word(bytes);
            out.extend_from_slice(&ids);
            self.cache
                .lock()
                .expect("cache lock")
                .insert(bytes.to_vec(), ids);
        }
        out
    }

    fn encode_word(&self, bytes: &[u8]) -> Vec<u32> {
        let mut ids: Vec<u32> = bytes.iter().map(|b| NUM_SPECIAL + u32::from(*b)).collect();
        loop {
            // Find the lowest-rank (earliest-learned) applicable merge.
            let mut best: Option<(usize, u32, u32)> = None; // (pos, new_id, rank)
            for i in 0..ids.len().saturating_sub(1) {
                if let Some(&new_id) = self.merge_table.get(&(ids[i], ids[i + 1])) {
                    let rank = new_id;
                    if best.map(|(_, _, r)| rank < r).unwrap_or(true) {
                        best = Some((i, new_id, rank));
                    }
                }
            }
            match best {
                Some((pos, new_id, _)) => {
                    ids[pos] = new_id;
                    ids.remove(pos + 1);
                }
                None => return ids,
            }
        }
    }

    /// Decodes token ids back into text. Special tokens decode to their
    /// printable names; invalid UTF-8 (impossible for round-tripped input)
    /// is replaced lossily.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::new();
        let mut out = String::new();
        for &id in ids {
            if id < NUM_SPECIAL {
                out.push_str(&String::from_utf8_lossy(&bytes));
                bytes.clear();
                out.push_str(SPECIAL_TOKENS[id as usize]);
            } else if let Some(tb) = self.vocab_bytes.get(id as usize) {
                bytes.extend_from_slice(tb);
            }
        }
        out.push_str(&String::from_utf8_lossy(&bytes));
        out
    }

    /// Decodes, stopping at (and excluding) the first `<|endoftext|>`.
    pub fn decode_until_eot(&self, ids: &[u32]) -> String {
        let end = ids
            .iter()
            .position(|&id| id == self.eot())
            .unwrap_or(ids.len());
        self.decode(&ids[..end])
    }

    /// Serializes the tokenizer to a plain-text format (one merge per line).
    pub fn to_text(&self) -> String {
        let mut s = String::from("wisdom-bpe v1\n");
        for (a, b) in &self.merges {
            s.push_str(&format!("{a} {b}\n"));
        }
        s
    }

    /// Restores a tokenizer from [`BpeTokenizer::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns [`LoadTokenizerError`] on version or format mismatches.
    pub fn from_text(text: &str) -> Result<BpeTokenizer, LoadTokenizerError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(LoadTokenizerError::Empty)?;
        if header != "wisdom-bpe v1" {
            return Err(LoadTokenizerError::BadHeader);
        }
        let mut vocab_bytes: Vec<Vec<u8>> = Vec::new();
        for _ in 0..NUM_SPECIAL {
            vocab_bytes.push(Vec::new());
        }
        for b in 0..=255u8 {
            vocab_bytes.push(vec![b]);
        }
        let mut merges = Vec::new();
        let mut merge_table = HashMap::new();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(' ');
            let parse = |p: Option<&str>| -> Result<u32, LoadTokenizerError> {
                p.and_then(|s| s.parse().ok())
                    .ok_or(LoadTokenizerError::BadMerge { line: lineno + 2 })
            };
            let a = parse(parts.next())?;
            let b = parse(parts.next())?;
            let max = vocab_bytes.len() as u32;
            if a >= max || b >= max || a < NUM_SPECIAL || b < NUM_SPECIAL {
                return Err(LoadTokenizerError::BadMerge { line: lineno + 2 });
            }
            let new_id = vocab_bytes.len() as u32;
            let mut merged = vocab_bytes[a as usize].clone();
            merged.extend_from_slice(&vocab_bytes[b as usize]);
            vocab_bytes.push(merged);
            merges.push((a, b));
            merge_table.insert((a, b), new_id);
        }
        Ok(BpeTokenizer {
            merges,
            vocab_bytes,
            merge_table,
            cache: Mutex::new(HashMap::new()),
        })
    }
}

/// Error when restoring a tokenizer from its text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadTokenizerError {
    /// The input was empty.
    Empty,
    /// Unknown header line.
    BadHeader,
    /// A merge line was malformed or referenced an out-of-range id.
    BadMerge {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for LoadTokenizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadTokenizerError::Empty => write!(f, "tokenizer file is empty"),
            LoadTokenizerError::BadHeader => write!(f, "unrecognized tokenizer header"),
            LoadTokenizerError::BadMerge { line } => {
                write!(f, "malformed merge at line {line}")
            }
        }
    }
}

impl Error for LoadTokenizerError {}

fn apply_merge(word: &mut Vec<u32>, pair: (u32, u32), new_id: u32) {
    let mut i = 0;
    while i + 1 < word.len() {
        if word[i] == pair.0 && word[i + 1] == pair.1 {
            word[i] = new_id;
            word.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

/// Splits text into BPE "words": merges never cross these boundaries.
/// Word classes: identifier runs (with a single leading space absorbed, as
/// in GPT-2's pre-tokenizer), digit runs, whitespace runs, punctuation runs,
/// and single newlines.
fn pre_tokenize(text: &str) -> Vec<&str> {
    #[derive(PartialEq, Clone, Copy)]
    enum Class {
        Ident,
        Digit,
        Space,
        Newline,
        Punct,
    }
    fn classify(c: char) -> Class {
        if c == '\n' {
            Class::Newline
        } else if c.is_whitespace() {
            Class::Space
        } else if c.is_ascii_digit() {
            Class::Digit
        } else if c.is_alphanumeric() || c == '_' {
            Class::Ident
        } else {
            Class::Punct
        }
    }

    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let offset = |k: usize| if k < n { chars[k].0 } else { text.len() };
    let mut words = Vec::new();
    let mut i = 0;
    while i < n {
        let c = chars[i].1;
        match classify(c) {
            Class::Newline => {
                words.push(&text[offset(i)..offset(i + 1)]);
                i += 1;
            }
            Class::Space => {
                let mut j = i;
                while j < n && classify(chars[j].1) == Class::Space {
                    j += 1;
                }
                // GPT-2 style: the final space fuses with a following
                // identifier, producing " name" tokens.
                let fuse = j < n && chars[j - 1].1 == ' ' && classify(chars[j].1) == Class::Ident;
                let space_end = if fuse { j - 1 } else { j };
                if space_end > i {
                    words.push(&text[offset(i)..offset(space_end)]);
                }
                if fuse {
                    let mut k = j;
                    while k < n && classify(chars[k].1) == Class::Ident {
                        k += 1;
                    }
                    words.push(&text[offset(space_end)..offset(k)]);
                    i = k;
                } else {
                    i = j;
                }
            }
            class => {
                let mut j = i + 1;
                while j < n && classify(chars[j].1) == class {
                    j += 1;
                }
                words.push(&text[offset(i)..offset(j)]);
                i = j;
            }
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Vec<&'static str> {
        vec![
            "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
            "- name: Start nginx\n  ansible.builtin.service:\n    name: nginx\n    state: started\n",
            "- name: Install httpd\n  ansible.builtin.yum:\n    name: httpd\n    state: latest\n",
        ]
    }

    #[test]
    fn round_trip_simple() {
        let tok = BpeTokenizer::train(sample_corpus(), 400);
        for text in sample_corpus() {
            assert_eq!(tok.decode(&tok.encode(text)), text);
        }
    }

    #[test]
    fn round_trip_unseen_text() {
        let tok = BpeTokenizer::train(sample_corpus(), 400);
        let unseen = "completely différent text: with → unicode ☃ and\ttabs\n";
        assert_eq!(tok.decode(&tok.encode(unseen)), unseen);
    }

    #[test]
    fn vocab_grows_with_merges() {
        let tok = BpeTokenizer::train(sample_corpus(), 320);
        assert!(tok.vocab_size() > 259);
        assert!(tok.vocab_size() <= 320);
        assert_eq!(tok.vocab_size(), 259 + tok.merge_count());
    }

    #[test]
    fn compression_beats_bytes() {
        let tok = BpeTokenizer::train(sample_corpus(), 500);
        let text = sample_corpus()[0];
        let ids = tok.encode(text);
        assert!(
            ids.len() < text.len() / 2,
            "expected >2x compression: {} tokens for {} bytes",
            ids.len(),
            text.len()
        );
    }

    #[test]
    fn determinism() {
        let a = BpeTokenizer::train(sample_corpus(), 350);
        let b = BpeTokenizer::train(sample_corpus(), 350);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn special_tokens_reserved() {
        let tok = BpeTokenizer::train(sample_corpus(), 300);
        assert_eq!(tok.eot(), 0);
        assert_eq!(tok.sep(), 1);
        assert_eq!(tok.pad(), 2);
        let ids = tok.encode("anything at all");
        assert!(ids.iter().all(|&id| id >= 3));
    }

    #[test]
    fn decode_until_eot_stops() {
        let tok = BpeTokenizer::train(sample_corpus(), 300);
        let mut ids = tok.encode("keep this");
        ids.push(tok.eot());
        ids.extend(tok.encode("drop this"));
        assert_eq!(tok.decode_until_eot(&ids), "keep this");
    }

    #[test]
    fn save_load_round_trip() {
        let tok = BpeTokenizer::train(sample_corpus(), 400);
        let text = tok.to_text();
        let loaded = BpeTokenizer::from_text(&text).unwrap();
        assert_eq!(loaded.vocab_size(), tok.vocab_size());
        let sample = "- name: Install nginx\n";
        assert_eq!(loaded.encode(sample), tok.encode(sample));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(matches!(
            BpeTokenizer::from_text(""),
            Err(LoadTokenizerError::Empty)
        ));
        assert!(matches!(
            BpeTokenizer::from_text("other format\n1 2\n"),
            Err(LoadTokenizerError::BadHeader)
        ));
        assert!(matches!(
            BpeTokenizer::from_text("wisdom-bpe v1\n99999 3\n"),
            Err(LoadTokenizerError::BadMerge { .. })
        ));
        assert!(matches!(
            BpeTokenizer::from_text("wisdom-bpe v1\nnot numbers\n"),
            Err(LoadTokenizerError::BadMerge { .. })
        ));
    }

    #[test]
    fn empty_text() {
        let tok = BpeTokenizer::train(sample_corpus(), 300);
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
    }

    #[test]
    fn pre_tokenize_splits_sensibly() {
        let words = pre_tokenize("name: nginx_v2\n  state: present");
        // Round-trip property of pre-tokenization.
        assert_eq!(words.concat(), "name: nginx_v2\n  state: present");
        // Newlines stand alone.
        assert!(words.contains(&"\n"));
    }

    #[test]
    fn pre_tokenize_absorbs_single_leading_space() {
        let words = pre_tokenize("state: present");
        assert!(words.contains(&" present"), "{words:?}");
    }

    #[test]
    fn frequent_domain_strings_become_single_tokens() {
        let corpus: Vec<&str> = std::iter::repeat_n(sample_corpus(), 5).flatten().collect();
        let tok = BpeTokenizer::train(corpus, 600);
        // " name" (with the fused leading space) appears everywhere; it
        // should compress to very few tokens.
        assert!(tok.encode(" name").len() <= 2, "{:?}", tok.encode(" name"));
        assert!(
            tok.encode(" state").len() <= 2,
            "{:?}",
            tok.encode(" state")
        );
    }
}
