//! A trainable byte-pair-encoding tokenizer with byte fallback.
//!
//! The paper's Wisdom models reuse the CodeGen tokenizer; since no pretrained
//! vocabulary is available offline, this crate implements the same family of
//! tokenizer from scratch: byte-level BPE with special tokens. Any UTF-8
//! text can be encoded (unknown content falls back to raw byte tokens), and
//! `decode(encode(text)) == text` for all inputs.
//!
//! # Examples
//!
//! ```
//! use wisdom_tokenizer::BpeTokenizer;
//!
//! let corpus = ["- name: Install nginx\n  apt:\n    name: nginx\n"; 4];
//! let tok = BpeTokenizer::train(corpus.iter().copied(), 300);
//! let ids = tok.encode("- name: Install nginx\n");
//! assert_eq!(tok.decode(&ids), "- name: Install nginx\n");
//! ```

mod bpe;

pub use bpe::{BpeTokenizer, LoadTokenizerError, SPECIAL_TOKENS};
