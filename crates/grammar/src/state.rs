//! The incremental constraint automaton: a byte-level machine over Ansible
//! playbook / task-file documents (and a relaxed YAML-only mode) whose
//! states are small `Copy` values suitable for hashing and caching.
//!
//! Shape of the grammar (Ansible mode), anchored at a `- name: …\n` line the
//! prompt supplies (or that the automaton generates itself):
//!
//! ```text
//! - name: <free text from the prompt>
//!   <module>:              # exactly one module key per task
//!     <param>: <value>     # known params only, required ones eventually
//!   <keyword>: <value>     # task keywords, each at most once
//! ```
//!
//! or, when the first body key commits to a play:
//!
//! ```text
//! - name: <prompt text>
//!   hosts: <value>         # required before the document can end
//!   <play keyword>: <value>
//!   tasks:
//!     - name: <generated>
//!       <task body at column 6>
//! ```
//!
//! Every construct tracks exactly what the `crates/ansible` linter will
//! check: duplicate keys are impossible (the YAML parser rejects them),
//! unknown keys are impossible (candidate tries), required module parameters
//! gate "closability", and scalar machines guarantee each value resolves to
//! a kind its keyword/parameter accepts.

use crate::tables::{
    Tables, ValueSpec, FREE_FORM_SPEC, ITEM_SPEC, NAME_SPEC, TASKS_BIT, YAML_SPEC,
};

/// Maximum key length the accumulator can hold (longest FQCN fits).
pub(crate) const MAX_KEY: usize = 40;
/// Maximum frames on the structure stack (playbook nesting is ≤ 6).
pub(crate) const MAX_DEPTH: usize = 8;
/// Plain-scalar length cap: forces a newline eventually so close estimates
/// stay bounded.
const PLAIN_CAP: u8 = 96;
/// YAML-mode identifier key length cap.
const YKEY_CAP: u8 = 24;
/// Jinja identifier length cap.
const JIDENT_CAP: u8 = 24;
/// Loop guard for canonical-close construction (far above any real close).
const CLOSE_CAP: usize = 4096;

const NAME_LIT: &[u8; 6] = b"name: ";

/// YAML plain-scalar words that resolve to something other than `Str`.
/// The first three are the null class; the rest resolve to booleans.
const BAD_WORDS: &[&str] = &[
    "null", "Null", "NULL", // null class
    "true", "True", "TRUE", "yes", "Yes", "YES", "on", "On", "ON", "false", "False", "FALSE", "no",
    "No", "NO", "off", "Off", "OFF",
];
const NULL_MASK: u32 = 0b111;
const BOOL_MASK: u32 = ((1 << BAD_WORDS.len()) - 1) & !NULL_MASK;

fn bw_init(b: u8) -> u32 {
    let mut m = 0;
    for (i, w) in BAD_WORDS.iter().enumerate() {
        if w.as_bytes()[0] == b {
            m |= 1 << i;
        }
    }
    m
}

/// Words still exactly matched after appending `b` at position `len`.
fn bw_step(mask: u32, len: u8, b: u8) -> u32 {
    let mut m = 0;
    for (i, w) in BAD_WORDS.iter().enumerate() {
        if mask & (1 << i) != 0 && (len as usize) < w.len() && w.as_bytes()[len as usize] == b {
            m |= 1 << i;
        }
    }
    m
}

/// Words of exactly `len` bytes still matched (at most one bit set).
fn bw_exact(mask: u32, len: u8) -> u32 {
    let mut m = 0;
    for (i, w) in BAD_WORDS.iter().enumerate() {
        if mask & (1 << i) != 0 && w.len() == len as usize {
            m |= 1 << i;
        }
    }
    m
}

fn allowed_word_mask(spec: &ValueSpec) -> u32 {
    let mut m = 0;
    if spec.nulls {
        m |= NULL_MASK;
    }
    if spec.bools {
        m |= BOOL_MASK;
    }
    m
}

fn strict_first(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'/' || b == b'_'
}

fn relaxed_first(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'/' || b == b'_'
}

/// Interior bytes of a plain scalar: never `:`/`#` (structure/comment
/// hazards), never quotes or flow indicators.
fn plain_interior(b: u8) -> bool {
    b.is_ascii_alphanumeric()
        || matches!(
            b,
            b' ' | b'.' | b'_' | b',' | b'-' | b'/' | b'(' | b')' | b'=' | b'+' | b'\''
        )
}

fn ident_first(b: u8) -> bool {
    b.is_ascii_lowercase() || b == b'_'
}

fn yident_char(b: u8) -> bool {
    b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-'
}

fn jident_char(b: u8) -> bool {
    b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'
}

/// First-character bit for YAML-mode duplicate-key avoidance (`a`–`z`, `_`).
fn first_char_bit(b: u8) -> u32 {
    if b == b'_' {
        1 << 26
    } else {
        1 << (b - b'a')
    }
}

/// A partially typed key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct KeyAcc {
    buf: [u8; MAX_KEY],
    len: u8,
}

impl KeyAcc {
    fn start(b: u8) -> KeyAcc {
        let mut buf = [0u8; MAX_KEY];
        buf[0] = b;
        KeyAcc { buf, len: 1 }
    }

    fn push(&self, b: u8) -> Option<KeyAcc> {
        if (self.len as usize) < MAX_KEY {
            let mut next = *self;
            next.buf[next.len as usize] = b;
            next.len += 1;
            Some(next)
        } else {
            None
        }
    }

    fn bytes(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

/// Whether the top-level document holds task items or play items (a mixed
/// document would fail lint auto-detection, so the first item commits it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum DocKind {
    Unset,
    TaskFile,
    Playbook,
}

/// One open construct on the structure stack. Columns strictly increase
/// with depth, so de-indentation closes frames unambiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Frame {
    /// Top-level document: `- name: …` items at column 0.
    Doc { count: u8, kind: DocKind },
    /// Body at column 2 whose first key decides task vs play.
    Body0 { task_ok: bool, play_ok: bool },
    /// A task body; `module` is the committed module key spelling.
    Task {
        col: u8,
        module: Option<u16>,
        used: u64,
    },
    /// A module's parameter mapping at `col`.
    Params { col: u8, module: u16, used: u16 },
    /// A block sequence of scalar items at `col`.
    Items { col: u8, count: u8 },
    /// After `key:` + newline for a list-capable value: either becomes
    /// `Items` at `col + 2` or resolves to null (when allowed).
    Pending { col: u8, null_ok: bool },
    /// A play body at column 2.
    Play { used: u64 },
    /// The play's `tasks:` list (items at column 4, bodies at column 6).
    Tasks { count: u8 },
    /// Relaxed-YAML mapping at `col`.
    YMap { col: u8, seen: u32 },
    /// Relaxed-YAML sequence at `col`.
    YSeq { col: u8, count: u8 },
    /// Relaxed-YAML `key:` + newline: nested map/seq at `col + 2` or null.
    YPending { col: u8 },
}

const DUMMY_FRAME: Frame = Frame::Doc {
    count: 0,
    kind: DocKind::Unset,
};

/// Value position after a committed key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum AfterKey {
    Scalar { spec: ValueSpec },
    Module { m: u16 },
    TasksKey,
    YamlKey,
}

/// Position inside a `{{ ident }}` template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Jinja {
    /// Saw `{`, expecting the second `{`.
    Open2,
    /// Saw `{{`, expecting the space.
    SpaceOpen,
    /// Inside the identifier (`len` bytes so far).
    Ident { len: u8 },
    /// Saw the closing space, expecting `}`.
    Close1,
    /// Saw one `}`, expecting the second.
    Close2,
}

/// An in-progress scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Scalar {
    Fresh,
    /// Plain text; `bw` tracks which bad words the text still equals.
    Plain {
        bw: u32,
        len: u8,
        sp: bool,
    },
    Int {
        len: u8,
        zero: bool,
    },
    Jinja(Jinja),
    /// Complete; only a newline may follow.
    Closed,
}

/// Position within the current line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Line {
    /// At a line start, `spaces` indent bytes emitted so far.
    Start { spaces: u8 },
    /// The prompt ended mid-line: force a newline before any structure.
    ForceNewline,
    /// Typing a key.
    Key { acc: KeyAcc },
    /// `key:` emitted, deciding between inline value and block forms.
    Colon { after: AfterKey },
    /// Typing an inline scalar value.
    Value { spec: ValueSpec, s: Scalar },
    /// `-` emitted in a sequence, expecting the space.
    Dash,
    /// Emitting the literal `name: ` of a generated `- name:` line.
    NamePrefix { pos: u8 },
}

/// Constraint flavor carried by the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Mode {
    Ansible,
    Yaml,
}

/// One sequence's position in the grammar. Small, `Copy`, hashable — used
/// directly as the mask-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintState {
    pub(crate) mode: Mode,
    pub(crate) frames: [Frame; MAX_DEPTH],
    pub(crate) depth: u8,
    pub(crate) line: Line,
}

impl ConstraintState {
    fn new(mode: Mode, stack: &[Frame], line: Line) -> ConstraintState {
        let mut frames = [DUMMY_FRAME; MAX_DEPTH];
        frames[..stack.len()].copy_from_slice(stack);
        ConstraintState {
            mode,
            frames,
            depth: stack.len() as u8,
            line,
        }
    }

    fn top(&self) -> &Frame {
        &self.frames[self.depth as usize - 1]
    }

    fn top_mut(&mut self) -> &mut Frame {
        &mut self.frames[self.depth as usize - 1]
    }

    fn push(&mut self, f: Frame) -> bool {
        if (self.depth as usize) < MAX_DEPTH {
            self.frames[self.depth as usize] = f;
            self.depth += 1;
            true
        } else {
            false
        }
    }

    /// Pops down to `keep` frames, normalizing vacated slots so equal
    /// states hash equally.
    fn pop_to(&mut self, keep: u8) {
        for i in keep as usize..self.depth as usize {
            self.frames[i] = DUMMY_FRAME;
        }
        self.depth = keep;
    }

    fn ymap_depth(&self) -> usize {
        self.frames[..self.depth as usize]
            .iter()
            .filter(|f| matches!(f, Frame::YMap { .. }))
            .count()
    }
}

/// What a committed key resolves to.
#[derive(Debug, Clone, Copy)]
enum Commit {
    Module(u16),
    TaskKw(u8),
    PlayKw(u8),
    TasksKey,
}

/// Key-candidate domains (which list of keys is legal where).
#[derive(Debug, Clone, Copy)]
enum Domain {
    Body0 { task_ok: bool, play_ok: bool },
    Task { module_open: bool, used: u64 },
    Params { module: u16, used: u16 },
    Play { used: u64 },
}

/// The automaton driver: pure transition functions over [`ConstraintState`]
/// against the compiled [`Tables`].
pub(crate) struct Machine<'a> {
    pub t: &'a Tables,
}

impl<'a> Machine<'a> {
    pub(crate) fn new(t: &'a Tables) -> Machine<'a> {
        Machine { t }
    }

    // ---- start states ------------------------------------------------------

    /// Derives the start state from the prompt's byte tail. Total: prompts
    /// that do not end at a `- name:` line boundary fall back to generating
    /// a fresh document (after forcing a newline when the prompt ends
    /// mid-line).
    pub(crate) fn start_state(&self, mode: Mode, prompt: &[u8]) -> ConstraintState {
        let fresh = |line: Line| match mode {
            Mode::Ansible => ConstraintState::new(
                mode,
                &[Frame::Doc {
                    count: 0,
                    kind: DocKind::Unset,
                }],
                line,
            ),
            Mode::Yaml => ConstraintState::new(mode, &[Frame::YMap { col: 0, seen: 0 }], line),
        };
        if prompt.is_empty() {
            return fresh(Line::Start { spaces: 0 });
        }
        if *prompt.last().expect("non-empty") != b'\n' {
            return fresh(Line::ForceNewline);
        }
        let body = &prompt[..prompt.len() - 1];
        let last_line = match body.iter().rposition(|&b| b == b'\n') {
            Some(p) => &body[p + 1..],
            None => body,
        };
        let indent = last_line.iter().take_while(|&&b| b == b' ').count();
        let rest = &last_line[indent..];
        if !rest.starts_with(b"- name:") || indent > 16 {
            return fresh(Line::Start { spaces: 0 });
        }
        let line = Line::Start { spaces: 0 };
        if indent == 0 {
            match mode {
                Mode::Ansible => ConstraintState::new(
                    mode,
                    &[
                        Frame::Doc {
                            count: 1,
                            kind: DocKind::Unset,
                        },
                        Frame::Body0 {
                            task_ok: true,
                            play_ok: true,
                        },
                    ],
                    line,
                ),
                Mode::Yaml => ConstraintState::new(mode, &[Frame::YMap { col: 2, seen: 0 }], line),
            }
        } else {
            let col = indent as u8 + 2;
            match mode {
                Mode::Ansible => ConstraintState::new(
                    mode,
                    &[Frame::Task {
                        col,
                        module: None,
                        used: 0,
                    }],
                    line,
                ),
                Mode::Yaml => ConstraintState::new(mode, &[Frame::YMap { col, seen: 0 }], line),
            }
        }
    }

    // ---- candidates --------------------------------------------------------

    fn domain_of(&self, f: &Frame) -> Option<Domain> {
        match *f {
            Frame::Body0 { task_ok, play_ok } => Some(Domain::Body0 { task_ok, play_ok }),
            Frame::Task { module, used, .. } => Some(Domain::Task {
                module_open: module.is_none(),
                used,
            }),
            Frame::Params { module, used, .. } => Some(Domain::Params { module, used }),
            Frame::Play { used } => Some(Domain::Play { used }),
            _ => None,
        }
    }

    /// Visits every candidate key for `d` with its canonical-ordering
    /// priority (lower sorts first when constructing closes).
    fn for_each_cand(&self, d: Domain, f: &mut dyn FnMut(u8, &'static str, Commit)) {
        match d {
            Domain::Body0 { task_ok, play_ok } => {
                if task_ok {
                    for (i, m) in self.t.modules.iter().enumerate() {
                        f(1, m.key, Commit::Module(i as u16));
                    }
                    for (i, k) in self.t.task_kws.iter().enumerate() {
                        f(2, k.name, Commit::TaskKw(i as u8));
                    }
                }
                if play_ok {
                    f(3, "tasks", Commit::TasksKey);
                    for (i, k) in self.t.play_kws.iter().enumerate() {
                        let prio = if !task_ok && i as u8 == self.t.hosts_bit {
                            0
                        } else {
                            4
                        };
                        f(prio, k.name, Commit::PlayKw(i as u8));
                    }
                }
            }
            Domain::Task { module_open, used } => {
                if module_open {
                    for (i, m) in self.t.modules.iter().enumerate() {
                        f(0, m.key, Commit::Module(i as u16));
                    }
                }
                for (i, k) in self.t.task_kws.iter().enumerate() {
                    if used & (1 << i) == 0 {
                        f(1, k.name, Commit::TaskKw(i as u8));
                    }
                }
            }
            Domain::Params { module, used } => {
                let m = &self.t.modules[module as usize];
                for (i, p) in m.params.iter().enumerate() {
                    if used & (1 << i) == 0 {
                        let missing_required = p.required;
                        f(u8::from(!missing_required), p.name, Commit::TaskKw(i as u8));
                    }
                }
            }
            Domain::Play { used } => {
                for (i, k) in self.t.play_kws.iter().enumerate() {
                    if used & (1 << i) == 0 {
                        let prio = if i as u8 == self.t.hosts_bit && used & (1 << i) == 0 {
                            u8::from(used & (1u64 << self.t.hosts_bit) != 0)
                        } else {
                            1
                        };
                        f(prio, k.name, Commit::PlayKw(i as u8));
                    }
                }
                if used & TASKS_BIT == 0 {
                    f(1, "tasks", Commit::TasksKey);
                }
            }
        }
    }

    fn cand_extends(&self, d: Domain, prefix: &[u8]) -> bool {
        let mut found = false;
        self.for_each_cand(d, &mut |_, key, _| {
            if !found && key.as_bytes().starts_with(prefix) {
                found = true;
            }
        });
        found
    }

    fn cand_exact(&self, d: Domain, key: &[u8]) -> Option<Commit> {
        let mut best: Option<(u8, Commit)> = None;
        self.for_each_cand(d, &mut |prio, k, c| {
            if k.as_bytes() == key && best.map(|(p, _)| prio < p).unwrap_or(true) {
                best = Some((prio, c));
            }
        });
        best.map(|(_, c)| c)
    }

    fn cand_first_ok(&self, d: Domain, b: u8) -> bool {
        self.cand_extends(d, &[b])
    }

    fn cand_any(&self, d: Domain) -> bool {
        self.cand_extends(d, &[])
    }

    /// Canonical candidate with `prefix`: minimal under (priority, length,
    /// bytes). Returns the full key.
    fn cand_canonical(&self, d: Domain, prefix: &[u8]) -> Option<&'static str> {
        let mut best: Option<(u8, &'static str)> = None;
        self.for_each_cand(d, &mut |prio, k, _| {
            if k.as_bytes().starts_with(prefix) {
                let better = match best {
                    None => true,
                    Some((bp, bk)) => (prio, k.len(), k.as_bytes()) < (bp, bk.len(), bk.as_bytes()),
                };
                if better {
                    best = Some((prio, k));
                }
            }
        });
        best.map(|(_, k)| k)
    }

    // ---- frame predicates --------------------------------------------------

    fn entry_col(&self, f: &Frame) -> u8 {
        match *f {
            Frame::Doc { .. } => 0,
            Frame::Body0 { .. } => 2,
            Frame::Task { col, .. } => col,
            Frame::Params { col, .. } => col,
            Frame::Items { col, .. } => col,
            Frame::Pending { col, .. } => col + 2,
            Frame::Play { .. } => 2,
            Frame::Tasks { .. } => 4,
            Frame::YMap { col, .. } => col,
            Frame::YSeq { col, .. } => col,
            Frame::YPending { col } => col + 2,
        }
    }

    fn closable(&self, f: &Frame) -> bool {
        match *f {
            Frame::Doc { count, .. } => count >= 1,
            Frame::Body0 { .. } => false,
            Frame::Task { module, .. } => module.is_some(),
            Frame::Params { module, used, .. } => {
                self.t.modules[module as usize].required_mask & !used == 0
            }
            Frame::Items { count, .. } => count >= 1,
            Frame::Pending { null_ok, .. } => null_ok,
            Frame::Play { used } => used & (1u64 << self.t.hosts_bit) != 0,
            Frame::Tasks { count } => count >= 1,
            Frame::YMap { .. } | Frame::YPending { .. } => true,
            Frame::YSeq { count, .. } => count >= 1,
        }
    }

    /// Whether the frame can accept any content line at all.
    fn offers(&self, f: &Frame) -> bool {
        match f {
            Frame::Doc { .. }
            | Frame::Items { .. }
            | Frame::Pending { .. }
            | Frame::Tasks { .. }
            | Frame::YSeq { .. }
            | Frame::YPending { .. } => true,
            Frame::YMap { seen, .. } => *seen != (1 << 27) - 1,
            _ => match self.domain_of(f) {
                Some(d) => self.cand_any(d),
                None => false,
            },
        }
    }

    fn first_ok(&self, f: &Frame, b: u8) -> bool {
        match f {
            Frame::Doc { .. }
            | Frame::Items { .. }
            | Frame::Pending { .. }
            | Frame::Tasks { .. }
            | Frame::YSeq { .. } => b == b'-',
            Frame::YPending { .. } => b == b'-' || ident_first(b),
            Frame::YMap { seen, .. } => ident_first(b) && seen & first_char_bit(b) == 0,
            _ => match self.domain_of(f) {
                Some(d) => self.cand_first_ok(d, b),
                None => false,
            },
        }
    }

    /// The column where keys of the mapping owned by `f` live (used to
    /// place pending block values).
    fn content_col(&self, f: &Frame) -> u8 {
        match *f {
            Frame::Task { col, .. } => col,
            Frame::Params { col, .. } => col,
            Frame::Play { .. } => 2,
            Frame::YMap { col, .. } => col,
            _ => self.entry_col(f),
        }
    }

    // ---- accepting / EOS ---------------------------------------------------

    /// Whether end-of-sequence is legal: at a fresh line start with every
    /// open construct satisfiable as-is.
    pub(crate) fn accepting(&self, st: &ConstraintState) -> bool {
        matches!(st.line, Line::Start { spaces: 0 })
            && st.frames[..st.depth as usize]
                .iter()
                .all(|f| self.closable(f))
    }

    // ---- transitions -------------------------------------------------------

    /// Advances by one byte; `None` means the byte is illegal here.
    pub(crate) fn advance(&self, st: &ConstraintState, b: u8) -> Option<ConstraintState> {
        match st.line {
            Line::ForceNewline => {
                if b == b'\n' {
                    let mut n = *st;
                    n.line = Line::Start { spaces: 0 };
                    Some(n)
                } else {
                    None
                }
            }
            Line::Start { spaces } => self.advance_line_start(st, spaces, b),
            Line::Key { acc } => self.advance_key(st, &acc, b),
            Line::Colon { after } => self.advance_colon(st, after, b),
            Line::Value { spec, s } => self.advance_value(st, &spec, s, b),
            Line::Dash => {
                if b != b' ' {
                    return None;
                }
                let mut n = *st;
                n.line = match n.top() {
                    Frame::Items { .. } => Line::Value {
                        spec: ITEM_SPEC,
                        s: Scalar::Fresh,
                    },
                    Frame::YSeq { .. } => Line::Value {
                        spec: YAML_SPEC,
                        s: Scalar::Fresh,
                    },
                    Frame::Doc { .. } | Frame::Tasks { .. } => Line::NamePrefix { pos: 0 },
                    _ => return None,
                };
                Some(n)
            }
            Line::NamePrefix { pos } => {
                if b != NAME_LIT[pos as usize] {
                    return None;
                }
                let mut n = *st;
                n.line = if pos as usize + 1 == NAME_LIT.len() {
                    Line::Value {
                        spec: NAME_SPEC,
                        s: Scalar::Fresh,
                    }
                } else {
                    Line::NamePrefix { pos: pos + 1 }
                };
                Some(n)
            }
        }
    }

    fn advance_line_start(
        &self,
        st: &ConstraintState,
        spaces: u8,
        b: u8,
    ) -> Option<ConstraintState> {
        if b == b' ' {
            if spaces >= 30 {
                return None;
            }
            // A deeper space is only legal if some frame still offers
            // content at a column beyond it (otherwise we would strand the
            // line with nothing to write).
            let mut deeper_closable = true;
            for i in (0..st.depth as usize).rev() {
                let f = &st.frames[i];
                if self.entry_col(f) > spaces && deeper_closable && self.offers(f) {
                    let mut n = *st;
                    n.line = Line::Start { spaces: spaces + 1 };
                    return Some(n);
                }
                deeper_closable &= self.closable(f);
            }
            return None;
        }
        if b == b'\n' {
            return None; // no blank lines
        }
        // Dispatch content at exactly this column; frames deeper than the
        // target close (and must be closable).
        let mut deeper_closable = true;
        for i in (0..st.depth as usize).rev() {
            let f = st.frames[i];
            let c = self.entry_col(&f);
            if c > spaces {
                deeper_closable &= self.closable(&f);
                continue;
            }
            if c < spaces {
                return None;
            }
            // c == spaces: the unique dispatch target.
            if !deeper_closable || !self.first_ok(&f, b) {
                return None;
            }
            let mut n = *st;
            n.pop_to(i as u8 + 1);
            match f {
                Frame::Pending { col, .. } => {
                    *n.top_mut() = Frame::Items {
                        col: col + 2,
                        count: 0,
                    };
                    n.line = Line::Dash;
                }
                Frame::YPending { col } => {
                    if b == b'-' {
                        *n.top_mut() = Frame::YSeq {
                            col: col + 2,
                            count: 0,
                        };
                        n.line = Line::Dash;
                    } else {
                        *n.top_mut() = Frame::YMap {
                            col: col + 2,
                            seen: 0,
                        };
                        n.line = Line::Key {
                            acc: KeyAcc::start(b),
                        };
                    }
                }
                Frame::Doc { .. }
                | Frame::Items { .. }
                | Frame::Tasks { .. }
                | Frame::YSeq { .. } => {
                    n.line = Line::Dash;
                }
                Frame::YMap { .. }
                | Frame::Body0 { .. }
                | Frame::Task { .. }
                | Frame::Params { .. }
                | Frame::Play { .. } => {
                    n.line = Line::Key {
                        acc: KeyAcc::start(b),
                    };
                }
            }
            return Some(n);
        }
        None
    }

    fn advance_key(&self, st: &ConstraintState, acc: &KeyAcc, b: u8) -> Option<ConstraintState> {
        if matches!(st.top(), Frame::YMap { .. }) {
            if b == b':' {
                let mut n = *st;
                let first = acc.bytes()[0];
                if let Frame::YMap { seen, .. } = n.top_mut() {
                    *seen |= first_char_bit(first);
                }
                n.line = Line::Colon {
                    after: AfterKey::YamlKey,
                };
                return Some(n);
            }
            if yident_char(b) && acc.len < YKEY_CAP {
                let mut n = *st;
                n.line = Line::Key { acc: acc.push(b)? };
                return Some(n);
            }
            return None;
        }
        let d = self.domain_of(st.top())?;
        if b == b':' {
            let commit = self.cand_exact(d, acc.bytes())?;
            return Some(self.commit_key(st, commit));
        }
        let acc2 = acc.push(b)?;
        if self.cand_extends(d, acc2.bytes()) {
            let mut n = *st;
            n.line = Line::Key { acc: acc2 };
            Some(n)
        } else {
            None
        }
    }

    fn commit_key(&self, st: &ConstraintState, commit: Commit) -> ConstraintState {
        let mut n = *st;
        let is_body0 = matches!(n.top(), Frame::Body0 { .. });
        if is_body0 {
            // Committing the document kind: record it on the Doc frame so
            // later top-level items stay homogeneous.
            let doc = n.depth as usize - 2;
            if let Frame::Doc { kind, .. } = &mut n.frames[doc] {
                *kind = match commit {
                    Commit::Module(_) | Commit::TaskKw(_) => DocKind::TaskFile,
                    Commit::PlayKw(_) | Commit::TasksKey => DocKind::Playbook,
                };
            }
        }
        match commit {
            Commit::Module(m) => {
                if is_body0 {
                    *n.top_mut() = Frame::Task {
                        col: 2,
                        module: Some(m),
                        used: 0,
                    };
                } else if let Frame::Task { module, .. } = n.top_mut() {
                    *module = Some(m);
                }
                n.line = Line::Colon {
                    after: AfterKey::Module { m },
                };
            }
            Commit::TaskKw(k) => {
                // In the Params domain, `TaskKw` carries the param index.
                match n.top_mut() {
                    Frame::Body0 { .. } => {
                        *n.top_mut() = Frame::Task {
                            col: 2,
                            module: None,
                            used: 1 << k,
                        };
                        let spec = self.t.task_kws[k as usize].spec;
                        n.line = Line::Colon {
                            after: AfterKey::Scalar { spec },
                        };
                    }
                    Frame::Task { used, .. } => {
                        *used |= 1 << k;
                        let spec = self.t.task_kws[k as usize].spec;
                        n.line = Line::Colon {
                            after: AfterKey::Scalar { spec },
                        };
                    }
                    Frame::Params { module, used, .. } => {
                        *used |= 1 << k;
                        let spec = self.t.modules[*module as usize].param_specs[k as usize];
                        n.line = Line::Colon {
                            after: AfterKey::Scalar { spec },
                        };
                    }
                    _ => unreachable!("TaskKw commit outside task/params domain"),
                }
            }
            Commit::PlayKw(p) => {
                if is_body0 {
                    *n.top_mut() = Frame::Play { used: 1 << p };
                } else if let Frame::Play { used } = n.top_mut() {
                    *used |= 1 << p;
                }
                let spec = self.t.play_kws[p as usize].spec;
                n.line = Line::Colon {
                    after: AfterKey::Scalar { spec },
                };
            }
            Commit::TasksKey => {
                if is_body0 {
                    *n.top_mut() = Frame::Play { used: TASKS_BIT };
                } else if let Frame::Play { used } = n.top_mut() {
                    *used |= TASKS_BIT;
                }
                n.line = Line::Colon {
                    after: AfterKey::TasksKey,
                };
            }
        }
        n
    }

    fn advance_colon(
        &self,
        st: &ConstraintState,
        after: AfterKey,
        b: u8,
    ) -> Option<ConstraintState> {
        let mut n = *st;
        match after {
            AfterKey::Scalar { spec } => match b {
                b' ' if spec.has_inline() => {
                    n.line = Line::Value {
                        spec,
                        s: Scalar::Fresh,
                    };
                    Some(n)
                }
                b'\n' if spec.list => {
                    let col = self.content_col(n.top());
                    if !n.push(Frame::Pending {
                        col,
                        null_ok: spec.nulls,
                    }) {
                        return None;
                    }
                    n.line = Line::Start { spaces: 0 };
                    Some(n)
                }
                b'\n' if spec.nulls => {
                    n.line = Line::Start { spaces: 0 };
                    Some(n)
                }
                _ => None,
            },
            AfterKey::Module { m } => match b {
                b' ' if self.t.modules[m as usize].free_form => {
                    n.line = Line::Value {
                        spec: FREE_FORM_SPEC,
                        s: Scalar::Fresh,
                    };
                    Some(n)
                }
                b'\n' => {
                    if !self.t.modules[m as usize].params.is_empty() {
                        let col = self.content_col(n.top()) + 2;
                        if !n.push(Frame::Params {
                            col,
                            module: m,
                            used: 0,
                        }) {
                            return None;
                        }
                    }
                    n.line = Line::Start { spaces: 0 };
                    Some(n)
                }
                _ => None,
            },
            AfterKey::TasksKey => {
                if b == b'\n' && n.push(Frame::Tasks { count: 0 }) {
                    n.line = Line::Start { spaces: 0 };
                    Some(n)
                } else {
                    None
                }
            }
            AfterKey::YamlKey => match b {
                b' ' => {
                    n.line = Line::Value {
                        spec: YAML_SPEC,
                        s: Scalar::Fresh,
                    };
                    Some(n)
                }
                b'\n' => {
                    if n.ymap_depth() < 3 {
                        let col = self.content_col(n.top());
                        if !n.push(Frame::YPending { col }) {
                            return None;
                        }
                    }
                    n.line = Line::Start { spaces: 0 };
                    Some(n)
                }
                _ => None,
            },
        }
    }

    fn advance_value(
        &self,
        st: &ConstraintState,
        spec: &ValueSpec,
        s: Scalar,
        b: u8,
    ) -> Option<ConstraintState> {
        if b == b'\n' {
            if !self.scalar_end_ok(spec, &s) {
                return None;
            }
            return Some(self.value_done(st));
        }
        let s2 = self.scalar_step(spec, &s, b)?;
        let mut n = *st;
        n.line = Line::Value { spec: *spec, s: s2 };
        Some(n)
    }

    fn scalar_step(&self, spec: &ValueSpec, s: &Scalar, b: u8) -> Option<Scalar> {
        match *s {
            Scalar::Fresh => {
                if b == b'{' && spec.jinja {
                    return Some(Scalar::Jinja(Jinja::Open2));
                }
                if spec.relaxed {
                    if relaxed_first(b) {
                        return Some(Scalar::Plain {
                            bw: 0,
                            len: 1,
                            sp: false,
                        });
                    }
                    return None;
                }
                if b.is_ascii_digit() && spec.digits {
                    return Some(Scalar::Int {
                        len: 1,
                        zero: b == b'0',
                    });
                }
                if strict_first(b) {
                    if spec.plain {
                        return Some(Scalar::Plain {
                            bw: bw_init(b),
                            len: 1,
                            sp: false,
                        });
                    }
                    // Word-restricted mode: only allowed bad words.
                    let m = bw_init(b) & allowed_word_mask(spec);
                    if m != 0 {
                        return Some(Scalar::Plain {
                            bw: m,
                            len: 1,
                            sp: false,
                        });
                    }
                }
                None
            }
            Scalar::Plain { bw, len, sp: _ } => {
                let word_mode = !spec.plain && !spec.relaxed;
                if word_mode {
                    let m = bw_step(bw, len, b) & allowed_word_mask(spec);
                    if m != 0 {
                        return Some(Scalar::Plain {
                            bw: m,
                            len: len + 1,
                            sp: false,
                        });
                    }
                    return None;
                }
                if !plain_interior(b) {
                    return None;
                }
                if b == b' ' {
                    if len >= PLAIN_CAP - 1 {
                        return None;
                    }
                } else if len >= PLAIN_CAP {
                    return None;
                }
                Some(Scalar::Plain {
                    bw: bw_step(bw, len, b),
                    len: len + 1,
                    sp: b == b' ',
                })
            }
            Scalar::Int { len, zero } => {
                if b.is_ascii_digit() && !zero && len < 9 {
                    Some(Scalar::Int { len: len + 1, zero })
                } else {
                    None
                }
            }
            Scalar::Jinja(j) => match j {
                Jinja::Open2 => (b == b'{').then_some(Scalar::Jinja(Jinja::SpaceOpen)),
                Jinja::SpaceOpen => (b == b' ').then_some(Scalar::Jinja(Jinja::Ident { len: 0 })),
                Jinja::Ident { len } => {
                    if len == 0 {
                        ident_first(b).then_some(Scalar::Jinja(Jinja::Ident { len: 1 }))
                    } else if b == b' ' {
                        Some(Scalar::Jinja(Jinja::Close1))
                    } else if jident_char(b) && len < JIDENT_CAP {
                        Some(Scalar::Jinja(Jinja::Ident { len: len + 1 }))
                    } else {
                        None
                    }
                }
                Jinja::Close1 => (b == b'}').then_some(Scalar::Jinja(Jinja::Close2)),
                Jinja::Close2 => (b == b'}').then_some(Scalar::Closed),
            },
            Scalar::Closed => None,
        }
    }

    fn scalar_end_ok(&self, spec: &ValueSpec, s: &Scalar) -> bool {
        match *s {
            Scalar::Plain { bw, len, sp } => {
                if len == 0 || sp {
                    return false;
                }
                if spec.relaxed {
                    return true;
                }
                let exact = bw_exact(bw, len);
                if !spec.plain {
                    // Word mode: must be exactly an allowed word.
                    exact & allowed_word_mask(spec) != 0
                } else {
                    exact == 0 || exact & allowed_word_mask(spec) != 0
                }
            }
            Scalar::Int { .. } | Scalar::Closed => true,
            Scalar::Fresh | Scalar::Jinja(_) => false,
        }
    }

    /// Completes a value line: bumps item counts and opens bodies for
    /// generated `- name:` lines.
    fn value_done(&self, st: &ConstraintState) -> ConstraintState {
        let mut n = *st;
        n.line = Line::Start { spaces: 0 };
        match n.top_mut() {
            Frame::Items { count, .. } | Frame::YSeq { count, .. } => *count += 1,
            Frame::Tasks { count } => {
                *count += 1;
                let pushed = n.push(Frame::Task {
                    col: 6,
                    module: None,
                    used: 0,
                });
                debug_assert!(pushed, "tasks nesting fits the stack");
            }
            Frame::Doc { count, kind } => {
                *count += 1;
                let (task_ok, play_ok) = match kind {
                    DocKind::Unset => (true, true),
                    DocKind::TaskFile => (true, false),
                    DocKind::Playbook => (false, true),
                };
                let pushed = n.push(Frame::Body0 { task_ok, play_ok });
                debug_assert!(pushed, "doc nesting fits the stack");
            }
            _ => {}
        }
        n
    }

    // ---- canonical close ---------------------------------------------------

    /// The canonical next byte toward the shortest-by-construction close;
    /// `None` iff the state is accepting. Pure in the state, and always a
    /// legal byte (pinned by tests).
    pub(crate) fn canonical_next(&self, st: &ConstraintState) -> Option<u8> {
        match st.line {
            Line::ForceNewline => Some(b'\n'),
            Line::Start { spaces } => self.canonical_at_start(st, spaces),
            Line::Key { acc } => {
                if matches!(st.top(), Frame::YMap { .. }) {
                    return Some(b':');
                }
                let d = self.domain_of(st.top()).expect("key implies domain");
                let k = self
                    .cand_canonical(d, acc.bytes())
                    .expect("key prefix has a candidate");
                if k.len() == acc.bytes().len() {
                    Some(b':')
                } else {
                    Some(k.as_bytes()[acc.bytes().len()])
                }
            }
            Line::Colon { after } => Some(match after {
                AfterKey::Scalar { spec } => {
                    if spec.has_inline() {
                        b' '
                    } else {
                        b'\n'
                    }
                }
                AfterKey::Module { .. } | AfterKey::TasksKey => b'\n',
                AfterKey::YamlKey => b' ',
            }),
            Line::Value { spec, s } => Some(self.canonical_scalar(&spec, &s)),
            Line::Dash => Some(b' '),
            Line::NamePrefix { pos } => Some(NAME_LIT[pos as usize]),
        }
    }

    fn canonical_at_start(&self, st: &ConstraintState, spaces: u8) -> Option<u8> {
        let frames = &st.frames[..st.depth as usize];
        let all_closable = frames.iter().all(|f| self.closable(f));
        if spaces == 0 && all_closable {
            return None; // accepting
        }
        // Deepest frame that still needs content; else the deepest frame at
        // or beyond the current indent that can accept a line.
        let target = frames
            .iter()
            .rposition(|f| !self.closable(f) && self.entry_col(f) >= spaces)
            .or_else(|| {
                frames
                    .iter()
                    .rposition(|f| self.entry_col(f) >= spaces && self.offers(f))
            })
            .expect("a reachable frame offers content");
        let f = &frames[target];
        let col = self.entry_col(f);
        if spaces < col {
            return Some(b' ');
        }
        Some(match f {
            Frame::Doc { .. }
            | Frame::Items { .. }
            | Frame::Pending { .. }
            | Frame::Tasks { .. }
            | Frame::YSeq { .. }
            | Frame::YPending { .. } => b'-',
            Frame::YMap { seen, .. } => (b'a'..=b'z')
                .chain([b'_'])
                .find(|&b| seen & first_char_bit(b) == 0)
                .expect("offers() ensured a free first char"),
            _ => {
                let d = self.domain_of(f).expect("key domain frame");
                self.cand_canonical(d, &[])
                    .expect("offers() ensured a candidate")
                    .as_bytes()[0]
            }
        })
    }

    fn canonical_scalar(&self, spec: &ValueSpec, s: &Scalar) -> u8 {
        match *s {
            Scalar::Fresh => {
                if spec.plain || spec.relaxed {
                    b'x'
                } else if spec.digits {
                    b'0'
                } else if spec.bools || spec.nulls {
                    self.canonical_word(allowed_word_mask(spec), 0)
                } else {
                    debug_assert!(spec.jinja, "value spec has at least one branch");
                    b'{'
                }
            }
            Scalar::Plain { bw, len, sp } => {
                let word_mode = !spec.plain && !spec.relaxed;
                if word_mode {
                    let m = bw & allowed_word_mask(spec);
                    return self.canonical_word(m, len);
                }
                if sp {
                    return b'x';
                }
                let exact = bw_exact(bw, len);
                if !spec.relaxed && exact != 0 && exact & allowed_word_mask(spec) == 0 {
                    b'x' // extend past the bad word
                } else {
                    b'\n'
                }
            }
            Scalar::Int { .. } | Scalar::Closed => b'\n',
            Scalar::Jinja(j) => match j {
                Jinja::Open2 => b'{',
                Jinja::SpaceOpen => b' ',
                Jinja::Ident { len } => {
                    if len == 0 {
                        b'x'
                    } else {
                        b' '
                    }
                }
                Jinja::Close1 | Jinja::Close2 => b'}',
            },
        }
    }

    /// Next byte of the shortest allowed word still matched at `len`
    /// (newline when a word is already complete).
    fn canonical_word(&self, mask: u32, len: u8) -> u8 {
        let mut best: Option<&'static str> = None;
        for (i, w) in BAD_WORDS.iter().enumerate() {
            if mask & (1 << i) != 0 {
                let better = match best {
                    None => true,
                    Some(bw) => (w.len(), w.as_bytes()) < (bw.len(), bw.as_bytes()),
                };
                if better {
                    best = Some(w);
                }
            }
        }
        let w = best.expect("word mode has at least one allowed word");
        if w.len() == len as usize {
            b'\n'
        } else {
            w.as_bytes()[len as usize]
        }
    }

    /// Length in bytes of the canonical close from `st` (0 when accepting);
    /// optionally collects the bytes. `None` signals an internal
    /// inconsistency (pinned against by tests).
    pub(crate) fn close_len(
        &self,
        st: &ConstraintState,
        mut out: Option<&mut Vec<u8>>,
    ) -> Option<u32> {
        let mut cur = *st;
        for n in 0..CLOSE_CAP {
            match self.canonical_next(&cur) {
                None => return Some(n as u32),
                Some(b) => {
                    cur = self.advance(&cur, b)?;
                    if let Some(v) = out.as_deref_mut() {
                        v.push(b);
                    }
                }
            }
        }
        debug_assert!(false, "canonical close exceeded {CLOSE_CAP} bytes");
        None
    }
}
