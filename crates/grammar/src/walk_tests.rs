//! Crate-internal correctness suites: canonical closes lint clean, every
//! registered module round-trips through the automaton, and random legal
//! walks (byte- and token-level) never strand the decoder.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use wisdom_ansible::{lint_str, LintTarget};
use wisdom_tokenizer::BpeTokenizer;
use wisdom_yaml::parse;

use crate::state::{ConstraintState, Machine, Mode};
use crate::tables::Tables;
use crate::{Constraint, GrammarCursor, GrammarIndex};

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(Tables::build)
}

/// Feeds `bytes` through the machine, panicking on the first illegal byte.
fn feed(m: &Machine<'_>, st: ConstraintState, bytes: &[u8]) -> ConstraintState {
    let mut cur = st;
    for (i, &b) in bytes.iter().enumerate() {
        cur = m.advance(&cur, b).unwrap_or_else(|| {
            panic!(
                "byte {i} ({:?}) of {:?} illegal",
                b as char,
                String::from_utf8_lossy(bytes)
            )
        });
    }
    cur
}

fn close(m: &Machine<'_>, st: &ConstraintState) -> String {
    let mut out = Vec::new();
    m.close_len(st, Some(&mut out)).expect("state must close");
    String::from_utf8(out).expect("close is ASCII")
}

/// A tiny deterministic generator for walk choices.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn canonical_close_of_fresh_document_lints_clean() {
    let m = Machine::new(tables());
    let st = m.start_state(Mode::Ansible, b"");
    let text = close(&m, &st);
    assert!(parse(&text).is_ok(), "close must parse:\n{text}");
    assert!(
        lint_str(&text, LintTarget::Auto).is_empty(),
        "close must lint clean:\n{text}"
    );
}

#[test]
fn canonical_close_after_name_line_lints_clean() {
    let m = Machine::new(tables());
    for prompt in [
        "- name: Install nginx\n",
        "- name: Install nginx\n    - name: Deploy the configuration\n",
    ] {
        let st = m.start_state(Mode::Ansible, prompt.as_bytes());
        let completion = close(&m, &st);
        // The automaton anchors on the *last* line; reconstruct the textual
        // context the same way the eval harness does (name line + body,
        // de-indented to column zero).
        let last = prompt.trim_end_matches('\n').rsplit('\n').next().unwrap();
        let indent = last.len() - last.trim_start().len();
        let text = format!("{last}\n{completion}");
        let dedented: String = text
            .lines()
            .map(|l| l.get(indent..).unwrap_or(l))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert!(
            lint_str(&dedented, LintTarget::Auto).is_empty(),
            "close must lint clean for prompt {prompt:?}:\n{dedented}"
        );
    }
}

/// Satellite: every registered module spelling round-trips — committing the
/// module key from a task body and closing canonically yields a document
/// that parses and lints clean (required params present, kinds correct).
#[test]
fn every_module_roundtrips_through_the_automaton() {
    let t = tables();
    let m = Machine::new(t);
    let base = m.start_state(Mode::Ansible, b"- name: Exercise the module\n");
    for (i, entry) in t.modules.iter().enumerate() {
        let mut st = feed(&m, base, b"  ");
        st = feed(&m, st, entry.key.as_bytes());
        st = m
            .advance(&st, b':')
            .unwrap_or_else(|| panic!("module key {:?} did not commit", entry.key));
        let completion = close(&m, &st);
        let text = format!("- name: Exercise the module\n  {}:{completion}", entry.key);
        assert!(
            parse(&text).is_ok(),
            "module {} ({i}) must parse:\n{text}",
            entry.key
        );
        let violations = lint_str(&text, LintTarget::Auto);
        assert!(
            violations.is_empty(),
            "module {} must lint clean, got {:?}:\n{text}",
            entry.key,
            violations
        );
    }
}

#[test]
fn required_params_gate_the_close() {
    let t = tables();
    let m = Machine::new(t);
    let st = m.start_state(Mode::Ansible, b"- name: T\n");
    let st = feed(&m, st, b"  apt:\n");
    let completion = close(&m, &st);
    assert!(
        completion.contains("name:"),
        "apt close must supply the required `name` param, got:\n{completion}"
    );
}

#[test]
fn play_documents_close_with_hosts_and_tasks() {
    let t = tables();
    let m = Machine::new(t);
    let st = m.start_state(Mode::Ansible, b"- name: Site play\n");
    let st = feed(&m, st, b"  hosts: all\n  gather_facts: false\n  tasks:\n");
    let completion = close(&m, &st);
    let text =
        format!("- name: Site play\n  hosts: all\n  gather_facts: false\n  tasks:\n{completion}");
    assert!(
        lint_str(&text, LintTarget::Auto).is_empty(),
        "play close must lint clean:\n{text}"
    );
    // And the automaton rejects ending the play without hosts (`serial` is
    // play-only, so it commits the body to a play without supplying hosts).
    let st2 = m.start_state(Mode::Ansible, b"- name: Site play\n");
    let st2 = feed(&m, st2, b"  serial: 1\n");
    assert!(!m.accepting(&st2), "play without hosts must not accept EOS");
}

#[test]
fn yaml_mode_closes_parse() {
    let m = Machine::new(tables());
    let st = m.start_state(Mode::Yaml, b"- name: freeform\n");
    let st = feed(
        &m,
        st,
        b"  some_key: value with spaces\n  nested:\n    - a\n    - b\n",
    );
    let completion = close(&m, &st);
    let text = format!(
        "- name: freeform\n  some_key: value with spaces\n  nested:\n    - a\n    - b\n{completion}"
    );
    assert!(parse(&text).is_ok(), "yaml close must parse:\n{text}");
}

/// Byte-level liveness: from any state reached by legal bytes, the
/// canonical close always exists and every canonical byte is itself legal.
fn random_byte_walk(mode: Mode, seed: u64) -> Result<(), TestCaseError> {
    let m = Machine::new(tables());
    let mut rng = Lcg(seed);
    let mut st = m.start_state(mode, b"- name: Walk\n");
    for _ in 0..400 {
        prop_assert!(
            m.close_len(&st, None).is_some(),
            "reachable state failed to close"
        );
        let legal: Vec<u8> = (0u8..=127)
            .filter(|&b| m.advance(&st, b).is_some())
            .collect();
        prop_assert!(
            !legal.is_empty() || m.accepting(&st),
            "dead non-accepting state"
        );
        if legal.is_empty() || (m.accepting(&st) && rng.pick(4) == 0) {
            break;
        }
        let b = legal[rng.pick(legal.len())];
        st = m.advance(&st, b).expect("picked legal byte");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ansible_byte_walks_never_strand(seed in any::<u64>()) {
        random_byte_walk(Mode::Ansible, seed)?;
    }

    #[test]
    fn yaml_byte_walks_never_strand(seed in any::<u64>()) {
        random_byte_walk(Mode::Yaml, seed)?;
    }
}

// ---- token-level suites ----------------------------------------------------

fn fixture() -> &'static (BpeTokenizer, Arc<GrammarIndex>, Arc<GrammarIndex>) {
    static F: OnceLock<(BpeTokenizer, Arc<GrammarIndex>, Arc<GrammarIndex>)> = OnceLock::new();
    F.get_or_init(|| {
        let corpus = [
            "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n  become: true\n",
            "- name: Site play\n  hosts: all\n  gather_facts: false\n  tasks:\n    - name: Ping\n      ping:\n",
            "- name: Copy config\n  copy:\n    src: files/app.conf\n    dest: /etc/app.conf\n  notify:\n    - restart app\n",
            "- name: Run command\n  command: systemctl restart nginx\n  when: restart_needed\n",
        ];
        let tok = BpeTokenizer::train(corpus, 460);
        let ansible = GrammarIndex::build(&tok, Constraint::Ansible).expect("ansible index");
        let yaml = GrammarIndex::build(&tok, Constraint::Yaml).expect("yaml index");
        (tok, ansible, yaml)
    })
}

#[test]
fn constraint_none_builds_no_index() {
    let (tok, _, _) = fixture();
    assert!(GrammarIndex::build(tok, Constraint::None).is_none());
}

#[test]
fn cursor_bypasses_on_impossible_budget() {
    let (tok, ansible, _) = fixture();
    let prompt = tok.encode("- name: T\n");
    let c = GrammarCursor::new(Arc::clone(ansible), &prompt, 1);
    assert!(!c.is_active(), "one token cannot fit any ansible close");
    let mut logits = vec![0.0f32; tok.vocab_size()];
    let out = c.apply(&mut logits);
    assert!(!out.active);
    assert!(logits.iter().all(|&l| l == 0.0), "bypass must not mask");
}

#[test]
fn cursor_bypasses_on_illegal_external_token() {
    let (tok, ansible, _) = fixture();
    let prompt = tok.encode("- name: T\n");
    let mut c = GrammarCursor::new(Arc::clone(ansible), &prompt, 128);
    assert!(c.is_active());
    // `<|pad|>` is never legal inside a constrained body.
    assert!(!c.advance(tok.pad()));
    assert!(!c.is_active());
    assert!(c.advance(tok.pad()), "bypassed cursor accepts anything");
}

/// Token-level liveness + end-to-end lint: a walk that picks uniformly at
/// random among mask-allowed tokens always reaches EOS within budget, and
/// the decoded completion parses (yaml) / lints clean (ansible).
fn random_token_walk(
    index: &Arc<GrammarIndex>,
    seed: u64,
    max_new: usize,
) -> Result<String, TestCaseError> {
    let (tok, _, _) = fixture();
    let prompt = "- name: Grammar walk\n";
    let prompt_ids = tok.encode(prompt);
    let mut cursor = GrammarCursor::new(Arc::clone(index), &prompt_ids, max_new);
    prop_assert!(cursor.is_active(), "budget {max_new} must admit a close");
    let mut rng = Lcg(seed);
    let mut picked: Vec<u32> = Vec::new();
    for _ in 0..max_new + 1 {
        let mut logits = vec![0.0f32; tok.vocab_size()];
        let out = cursor.apply(&mut logits);
        prop_assert!(out.active);
        let allowed: Vec<u32> = (0..tok.vocab_size() as u32)
            .filter(|&i| logits[i as usize].is_finite())
            .collect();
        prop_assert!(!allowed.is_empty(), "mask must never be empty while active");
        if let Some(f) = cursor.next_forced() {
            prop_assert_eq!(
                &allowed,
                &vec![f],
                "forced token must be the unique allowed token"
            );
        }
        let t = allowed[rng.pick(allowed.len())];
        prop_assert!(cursor.advance(t), "mask-allowed token must advance");
        if t == tok.eot() {
            let text = format!("{prompt}{}", tok.decode(&picked));
            return Ok(text);
        }
        picked.push(t);
    }
    Err(TestCaseError::fail("walk did not reach EOS within budget"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ansible_token_walks_lint_clean(seed in any::<u64>()) {
        let (_, ansible, _) = fixture();
        let text = random_token_walk(ansible, seed, 72)?;
        prop_assert!(parse(&text).is_ok(), "must parse:\n{}", text);
        let violations = lint_str(&text, LintTarget::Auto);
        prop_assert!(violations.is_empty(), "must lint clean, got {:?}:\n{}", violations, text);
    }

    #[test]
    fn yaml_token_walks_parse(seed in any::<u64>()) {
        let (_, _, yaml) = fixture();
        let text = random_token_walk(yaml, seed, 72)?;
        prop_assert!(parse(&text).is_ok(), "must parse:\n{}", text);
    }
}

#[test]
fn stats_and_cache_account_for_work() {
    let (tok, ansible, _) = fixture();
    // Other tests share the fixture index; drop their cached masks so this
    // apply provably builds one.
    ansible.clear_cache();
    let before = ansible.stats();
    let prompt = tok.encode("- name: Stats probe\n");
    let cursor = GrammarCursor::new(Arc::clone(ansible), &prompt, 64);
    let mut logits = vec![0.0f32; tok.vocab_size()];
    let first = cursor.apply(&mut logits);
    assert!(first.active && first.masked > 0);
    let mut logits2 = vec![0.0f32; tok.vocab_size()];
    let second = cursor.apply(&mut logits2);
    assert!(second.cache_hit, "same state must hit the mask cache");
    let after = ansible.stats();
    assert!(after.mask_builds > before.mask_builds);
    assert!(after.cache_hits > before.cache_hits);
    assert!(after.states_cached > 0);
    assert!(after.masked_total > before.masked_total);
}
