//! Compiled grammar tables: the module, keyword, and parameter candidate
//! lists the automaton consults, with per-key value-shape specs.
//!
//! The tables are derived at startup from the same sources the linter uses —
//! [`wisdom_ansible::MODULES`], [`wisdom_ansible::TASK_KEYWORDS`] and
//! [`wisdom_ansible::PLAY_KEYWORDS`] — so the grammar can never drift from
//! the schema it is supposed to satisfy. Keyword value shapes are probed
//! through the public [`KindSet::accepts`] predicate with representative
//! values rather than re-encoding the kind bits.

use wisdom_ansible::{KindSet, ParamKind, ParamSpec, MODULES, PLAY_KEYWORDS, TASK_KEYWORDS};
use wisdom_yaml::Value;

/// Which scalar/block shapes a value position accepts.
///
/// This is the grammar-side projection of the linter's `KindSet` /
/// `ParamKind` checks onto the small family of value machines the automaton
/// can actually drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ValueSpec {
    /// Letter-start plain scalar (guaranteed to resolve to `Str`).
    pub plain: bool,
    /// Digit-start integer scalar (`0`, or `[1-9][0-9]*`).
    pub digits: bool,
    /// A YAML boolean word (`true`/`yes`/…) may terminate the scalar.
    pub bools: bool,
    /// A null is acceptable: either the bare `key:` form or a `null` word.
    pub nulls: bool,
    /// A block sequence value (`key:` + indented `- item` lines).
    pub list: bool,
    /// A `{{ var }}` Jinja template scalar.
    pub jinja: bool,
    /// Relaxed (YAML-only) mode: any resolution is fine, digit-start free
    /// text allowed, no bad-word tracking.
    pub relaxed: bool,
}

impl ValueSpec {
    pub(crate) const fn none() -> Self {
        ValueSpec {
            plain: false,
            digits: false,
            bools: false,
            nulls: false,
            list: false,
            jinja: false,
            relaxed: false,
        }
    }

    /// Whether any inline (same-line) scalar form exists.
    pub(crate) fn has_inline(&self) -> bool {
        self.plain || self.digits || self.bools || self.jinja || self.relaxed
    }
}

/// Free-form module argument strings (`command: ls -la`): must resolve `Str`.
pub(crate) const FREE_FORM_SPEC: ValueSpec = ValueSpec {
    plain: true,
    jinja: true,
    ..ValueSpec::none()
};

/// Generic block-sequence items: strict plain scalars so every item is a
/// `Str` (this keeps `roles:` entries valid too).
pub(crate) const ITEM_SPEC: ValueSpec = ValueSpec {
    plain: true,
    jinja: true,
    ..ValueSpec::none()
};

/// `- name:` values for generated sibling tasks/plays. `name` is a string
/// keyword: ints are accepted (`KindSet` folds numbers into strings), nulls
/// are skipped by the linter, booleans are not accepted.
pub(crate) const NAME_SPEC: ValueSpec = ValueSpec {
    plain: true,
    digits: true,
    nulls: true,
    jinja: true,
    ..ValueSpec::none()
};

/// Relaxed scalars for the YAML-only constraint mode.
pub(crate) const YAML_SPEC: ValueSpec = ValueSpec {
    nulls: true,
    jinja: true,
    relaxed: true,
    ..ValueSpec::none()
};

fn spec_from_kinds(kinds: &KindSet) -> ValueSpec {
    ValueSpec {
        plain: kinds.accepts(&Value::Str("plainvalue".into())),
        digits: kinds.accepts(&Value::Int(1)),
        bools: kinds.accepts(&Value::Bool(true)),
        // The linter skips type checks on null keyword values.
        nulls: true,
        list: kinds.accepts(&Value::Seq(Vec::new())),
        // Jinja template strings are accepted for every keyword kind.
        jinja: true,
        relaxed: false,
    }
}

fn spec_from_param_kind(kind: ParamKind) -> ValueSpec {
    match kind {
        // `Str` params also accept ints/floats.
        ParamKind::Str => ValueSpec {
            plain: true,
            digits: true,
            jinja: true,
            ..ValueSpec::none()
        },
        ParamKind::Bool => ValueSpec {
            bools: true,
            jinja: true,
            ..ValueSpec::none()
        },
        ParamKind::Int => ValueSpec {
            digits: true,
            jinja: true,
            ..ValueSpec::none()
        },
        ParamKind::List => ValueSpec {
            list: true,
            jinja: true,
            ..ValueSpec::none()
        },
        ParamKind::Map => ValueSpec {
            jinja: true,
            ..ValueSpec::none()
        },
        ParamKind::Any => ValueSpec {
            plain: true,
            digits: true,
            bools: true,
            nulls: true,
            list: true,
            jinja: true,
            relaxed: false,
        },
    }
}

/// One module key spelling (both the FQCN and the short alias are separate
/// entries pointing at the same parameter schema).
#[derive(Debug)]
pub(crate) struct ModuleEntry {
    /// The key as written in YAML (`apt` or `ansible.builtin.apt`).
    pub key: &'static str,
    pub free_form: bool,
    pub params: &'static [ParamSpec],
    /// Bitmask over `params` of the required ones.
    pub required_mask: u16,
    /// Derived value spec per parameter (same order as `params`).
    pub param_specs: Vec<ValueSpec>,
}

#[derive(Debug)]
pub(crate) struct KwEntry {
    pub name: &'static str,
    pub spec: ValueSpec,
}

/// Reserved bit in `Frame::Play::used` for the structural `tasks:` key,
/// which is offered as a candidate but handled outside the keyword table.
pub(crate) const TASKS_BIT: u64 = 1 << 63;

/// Everything the automaton needs, compiled once.
#[derive(Debug)]
pub(crate) struct Tables {
    /// Module key spellings (FQCN + short alias entries).
    pub modules: Vec<ModuleEntry>,
    /// Task keywords minus `name` (the prompt supplies the name line).
    pub task_kws: Vec<KwEntry>,
    /// Play keywords minus `name` and the structural task-list keys
    /// (`tasks` is offered separately; `pre_tasks`/`post_tasks`/`handlers`
    /// are omitted because their items would need full task grammars).
    pub play_kws: Vec<KwEntry>,
    /// Index into `play_kws` of the required `hosts` keyword.
    pub hosts_bit: u8,
}

impl Tables {
    pub(crate) fn build() -> Tables {
        let mut modules = Vec::new();
        for spec in MODULES {
            assert!(
                spec.params.len() <= 16,
                "module {} has more than 16 params; widen the used mask",
                spec.fqcn
            );
            let mut required_mask = 0u16;
            for (i, p) in spec.params.iter().enumerate() {
                if p.required {
                    required_mask |= 1 << i;
                }
            }
            let param_specs: Vec<ValueSpec> = spec
                .params
                .iter()
                .map(|p| spec_from_param_kind(p.kind))
                .collect();
            for key in [spec.fqcn, spec.short] {
                if key.is_empty() {
                    continue;
                }
                modules.push(ModuleEntry {
                    key,
                    free_form: spec.free_form,
                    params: spec.params,
                    required_mask,
                    param_specs: param_specs.clone(),
                });
            }
        }

        let task_kws: Vec<KwEntry> = TASK_KEYWORDS
            .iter()
            .filter(|k| k.name != "name")
            .map(|k| KwEntry {
                name: k.name,
                spec: spec_from_kinds(&k.kinds),
            })
            .collect();
        assert!(task_kws.len() <= 63, "task keyword bitmask overflow");

        let mut play_kws: Vec<KwEntry> = Vec::new();
        for k in PLAY_KEYWORDS {
            match k.name {
                "name" | "tasks" | "pre_tasks" | "post_tasks" | "handlers" => continue,
                // `roles` items must be strings or role mappings, and a null
                // or jinja value is rejected, so it is list-only here.
                "roles" => play_kws.push(KwEntry {
                    name: "roles",
                    spec: ValueSpec {
                        list: true,
                        ..ValueSpec::none()
                    },
                }),
                _ => play_kws.push(KwEntry {
                    name: k.name,
                    spec: spec_from_kinds(&k.kinds),
                }),
            }
        }
        assert!(play_kws.len() <= 62, "play keyword bitmask overflow");
        let hosts_bit = play_kws
            .iter()
            .position(|k| k.name == "hosts")
            .expect("hosts keyword present") as u8;

        Tables {
            modules,
            task_kws,
            play_kws,
            hosts_bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_build_and_look_sane() {
        let t = Tables::build();
        assert!(t.modules.iter().any(|m| m.key == "apt"));
        assert!(t.modules.iter().any(|m| m.key == "ansible.builtin.apt"));
        assert!(t.task_kws.iter().all(|k| k.name != "name"));
        assert!(t.play_kws.iter().all(|k| k.name != "tasks"));
        assert_eq!(t.play_kws[t.hosts_bit as usize].name, "hosts");
    }

    #[test]
    fn keyword_specs_match_lint_probes() {
        let t = Tables::build();
        let when = t.task_kws.iter().find(|k| k.name == "when").unwrap();
        assert!(when.spec.plain && when.spec.bools && when.spec.list);
        let become_kw = t.task_kws.iter().find(|k| k.name == "become").unwrap();
        assert!(!become_kw.spec.plain && become_kw.spec.bools);
        let vars = t.task_kws.iter().find(|k| k.name == "vars").unwrap();
        assert!(!vars.spec.plain && !vars.spec.list && vars.spec.jinja);
        let retries = t.task_kws.iter().find(|k| k.name == "retries").unwrap();
        assert!(retries.spec.digits && retries.spec.plain);
    }

    #[test]
    fn module_required_masks() {
        let t = Tables::build();
        let apt = t.modules.iter().find(|m| m.key == "apt").unwrap();
        assert_eq!(apt.required_mask.count_ones(), 1);
        assert!(apt.params[apt.required_mask.trailing_zeros() as usize].name == "name");
        let command = t.modules.iter().find(|m| m.key == "command").unwrap();
        assert!(command.free_form);
    }
}
