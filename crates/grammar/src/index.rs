//! Token-level projection of the byte automaton onto a live BPE vocabulary:
//! per-state allowed-token masks with caching, a forced-token fast path,
//! and the per-sequence [`GrammarCursor`] decode paths drive.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wisdom_tokenizer::BpeTokenizer;

use crate::constraint::Constraint;
use crate::state::{ConstraintState, Machine, Mode};
use crate::tables::Tables;

/// Mask-cache capacity: cleared wholesale when full (states are tiny and
/// rebuilds are cheap relative to an unbounded map).
const CACHE_CAP: usize = 4096;

/// One cached allowed-token mask.
struct CacheEntry {
    /// Bitmask over the vocabulary (bit set = token allowed).
    allowed: Arc<Vec<u64>>,
    allowed_count: u32,
    /// The unique allowed token when `allowed_count == 1`.
    forced: Option<u32>,
    /// Max canonical-close length after any allowed token; the cached mask
    /// is budget-safe whenever `remaining >= worst_close + 2`.
    worst_close: u32,
}

/// Counter snapshot for `/v1/stats` and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrammarStats {
    /// Fresh masks computed.
    pub mask_builds: u64,
    /// Mask requests served from the state cache.
    pub cache_hits: u64,
    /// States currently cached.
    pub states_cached: u64,
    /// Single-legal-token fast-path hits.
    pub forced_hits: u64,
    /// Total vocabulary entries masked out across all applies.
    pub masked_total: u64,
}

/// The compiled grammar bound to a tokenizer vocabulary.
///
/// Owns the byte table of every token, the schema tables, and the
/// state → mask cache. Shared (`Arc`) across all sequences of a model.
pub struct GrammarIndex {
    constraint: Constraint,
    mode: Mode,
    tables: Tables,
    /// Byte content per token id (empty for the specials).
    token_bytes: Vec<Box<[u8]>>,
    vocab_size: usize,
    eot: u32,
    /// Token ids grouped by first byte; tokens containing bytes the grammar
    /// can never emit are excluded up front.
    by_first: Vec<Vec<u32>>,
    cache: Mutex<HashMap<ConstraintState, CacheEntry>>,
    mask_builds: AtomicU64,
    cache_hits: AtomicU64,
    forced_hits: AtomicU64,
    masked_total: AtomicU64,
}

impl std::fmt::Debug for GrammarIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrammarIndex")
            .field("constraint", &self.constraint)
            .field("vocab_size", &self.vocab_size)
            .finish()
    }
}

/// Bytes the grammar can ever emit: printable ASCII plus newline.
fn plausible(b: u8) -> bool {
    b == b'\n' || (0x20..=0x7e).contains(&b)
}

impl GrammarIndex {
    /// Builds the index for `constraint`, classifying the whole vocabulary.
    /// Returns `None` for [`Constraint::None`].
    pub fn build(tokenizer: &BpeTokenizer, constraint: Constraint) -> Option<Arc<GrammarIndex>> {
        let mode = match constraint {
            Constraint::None => return None,
            Constraint::Yaml => Mode::Yaml,
            Constraint::Ansible => Mode::Ansible,
        };
        let vocab_size = tokenizer.vocab_size();
        let mut token_bytes = Vec::with_capacity(vocab_size);
        let mut by_first: Vec<Vec<u32>> = (0..256).map(|_| Vec::new()).collect();
        for id in 0..vocab_size as u32 {
            let bytes = tokenizer.token_bytes(id).unwrap_or(&[]);
            if !bytes.is_empty() && bytes.iter().all(|&b| plausible(b)) {
                by_first[bytes[0] as usize].push(id);
            }
            token_bytes.push(bytes.to_vec().into_boxed_slice());
        }
        Some(Arc::new(GrammarIndex {
            constraint,
            mode,
            tables: Tables::build(),
            token_bytes,
            vocab_size,
            eot: tokenizer.eot(),
            by_first,
            cache: Mutex::new(HashMap::new()),
            mask_builds: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            forced_hits: AtomicU64::new(0),
            masked_total: AtomicU64::new(0),
        }))
    }

    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    pub fn stats(&self) -> GrammarStats {
        GrammarStats {
            mask_builds: self.mask_builds.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            states_cached: self.cache.lock().expect("grammar cache lock").len() as u64,
            forced_hits: self.forced_hits.load(Ordering::Relaxed),
            masked_total: self.masked_total.load(Ordering::Relaxed),
        }
    }

    /// Drops all cached masks (benchmarks use this to measure cold builds).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("grammar cache lock").clear();
    }

    fn machine(&self) -> Machine<'_> {
        Machine::new(&self.tables)
    }

    /// Derives the grammar start state from a prompt's token ids: only the
    /// bytes after the last special token anchor the automaton.
    fn start_state(&self, prompt_ids: &[u32]) -> ConstraintState {
        let mut tail: Vec<u8> = Vec::new();
        for &id in prompt_ids {
            let bytes = self
                .token_bytes
                .get(id as usize)
                .map(|b| &b[..])
                .unwrap_or(&[]);
            if id < 3 {
                tail.clear(); // special token: restart the document
            } else {
                tail.extend_from_slice(bytes);
            }
        }
        self.machine().start_state(self.mode, &tail)
    }

    /// Simulates one token's bytes from `state`; `None` if any byte is
    /// illegal or the resulting state cannot close canonically.
    fn advance_token(
        &self,
        m: &Machine<'_>,
        state: &ConstraintState,
        bytes: &[u8],
    ) -> Option<(ConstraintState, u32)> {
        let mut cur = *state;
        for &b in bytes {
            cur = m.advance(&cur, b)?;
        }
        let est = m.close_len(&cur, None)?;
        Some((cur, est))
    }

    /// Computes the allowed mask for `state`, keeping only tokens whose
    /// post-state can still close within `budget` further tokens... bytes.
    /// `budget == u32::MAX` means unfiltered.
    fn compute_mask(&self, state: &ConstraintState, budget: u32) -> CacheEntry {
        let m = self.machine();
        let words = self.vocab_size.div_ceil(64);
        let mut allowed = vec![0u64; words];
        let mut count = 0u32;
        let mut forced = None;
        let mut worst = 0u32;
        let mut note = |id: u32, allowed: &mut Vec<u64>| {
            allowed[id as usize / 64] |= 1 << (id % 64);
            count += 1;
            forced = if count == 1 { Some(id) } else { None };
        };
        if m.accepting(state) {
            note(self.eot, &mut allowed);
        }
        for b in 0..=255u8 {
            if self.by_first[b as usize].is_empty() || m.advance(state, b).is_none() {
                continue;
            }
            for &id in &self.by_first[b as usize] {
                let bytes = &self.token_bytes[id as usize];
                if let Some((_, est)) = self.advance_token(&m, state, bytes) {
                    // The post-state must close with one byte-token per
                    // remaining slot plus the EOS slot.
                    if budget == u32::MAX || est + 2 <= budget {
                        note(id, &mut allowed);
                        worst = worst.max(est);
                    }
                }
            }
        }
        self.mask_builds.fetch_add(1, Ordering::Relaxed);
        CacheEntry {
            allowed: Arc::new(allowed),
            allowed_count: count,
            forced,
            worst_close: worst,
        }
    }

    /// Allowed mask for `(state, remaining)`: cached when the budget is
    /// comfortable, recomputed filtered when the close must be forced soon.
    fn mask_for(
        &self,
        state: &ConstraintState,
        remaining: u32,
    ) -> (Arc<Vec<u64>>, u32, Option<u32>, bool) {
        {
            let cache = self.cache.lock().expect("grammar cache lock");
            if let Some(e) = cache.get(state) {
                if remaining >= e.worst_close + 2 {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(&e.allowed), e.allowed_count, e.forced, true);
                }
            }
        }
        let tight = {
            // Peek the cached worst_close (if any) to decide whether a
            // budget-filtered, uncacheable mask is needed.
            let cache = self.cache.lock().expect("grammar cache lock");
            cache.get(state).map(|e| e.worst_close + 2 > remaining)
        };
        if tight != Some(true) {
            let entry = self.compute_mask(state, u32::MAX);
            if remaining >= entry.worst_close + 2 {
                let out = (
                    Arc::clone(&entry.allowed),
                    entry.allowed_count,
                    entry.forced,
                    false,
                );
                let mut cache = self.cache.lock().expect("grammar cache lock");
                if cache.len() >= CACHE_CAP {
                    cache.clear();
                }
                cache.insert(*state, entry);
                return out;
            }
            // Cache the unfiltered mask for future generous budgets, then
            // fall through to the filtered computation.
            let mut cache = self.cache.lock().expect("grammar cache lock");
            if cache.len() >= CACHE_CAP {
                cache.clear();
            }
            cache.insert(*state, entry);
        }
        let entry = self.compute_mask(state, remaining);
        (entry.allowed, entry.allowed_count, entry.forced, false)
    }
}

/// Result of applying the mask to one logit row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskOutcome {
    /// The single legal token, when only one continuation exists.
    pub forced: Option<u32>,
    /// Vocabulary entries masked to `-inf`.
    pub masked: u32,
    /// Whether the mask came from the state cache.
    pub cache_hit: bool,
    /// Whether the cursor actually constrained this row (false in bypass).
    pub active: bool,
}

impl MaskOutcome {
    fn inactive() -> MaskOutcome {
        MaskOutcome {
            forced: None,
            masked: 0,
            cache_hit: false,
            active: false,
        }
    }
}

/// Per-sequence grammar position: advances token-by-token alongside the
/// decode loop and masks each logit row before the argmax/sample pick.
///
/// Robustness contract: a cursor never breaks a decode. If the prompt tail
/// is unparseable, the token budget cannot fit a legal close, or an
/// externally chosen token is illegal, the cursor flips to *bypass* and all
/// further calls are no-ops.
#[derive(Clone)]
pub struct GrammarCursor {
    index: Arc<GrammarIndex>,
    state: ConstraintState,
    remaining: u32,
    bypass: bool,
    done: bool,
}

impl std::fmt::Debug for GrammarCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrammarCursor")
            .field("remaining", &self.remaining)
            .field("bypass", &self.bypass)
            .field("done", &self.done)
            .finish()
    }
}

impl GrammarCursor {
    /// Anchors a cursor at the end of `prompt_ids` with `max_new` tokens of
    /// budget. When even the canonical close cannot fit, the cursor starts
    /// in bypass mode rather than producing an empty mask later.
    pub fn new(index: Arc<GrammarIndex>, prompt_ids: &[u32], max_new: usize) -> GrammarCursor {
        let state = index.start_state(prompt_ids);
        let est = index.machine().close_len(&state, None);
        let bypass = match est {
            Some(est) => (est as usize) + 1 > max_new,
            None => true,
        };
        GrammarCursor {
            index,
            state,
            remaining: max_new.min(u32::MAX as usize) as u32,
            bypass,
            done: false,
        }
    }

    /// Whether the cursor is still constraining picks.
    pub fn is_active(&self) -> bool {
        !self.bypass && !self.done
    }

    /// Whether end-of-sequence is legal right now.
    pub fn accepting(&self) -> bool {
        !self.bypass && self.index.machine().accepting(&self.state)
    }

    pub fn index(&self) -> &Arc<GrammarIndex> {
        &self.index
    }

    /// The single legal next token, if exactly one exists (fast path: the
    /// caller may skip the logit mask and sampling entirely, which also
    /// keeps greedy/sampled runs byte-identical on forced stretches).
    pub fn next_forced(&self) -> Option<u32> {
        if !self.is_active() {
            return None;
        }
        let (_, _, forced, _) = self.index.mask_for(&self.state, self.remaining);
        if forced.is_some() {
            self.index.forced_hits.fetch_add(1, Ordering::Relaxed);
        }
        forced
    }

    /// Masks illegal entries of `logits` to `-inf`. The existing argmax and
    /// top-k samplers then never pick them (`exp(-inf) == 0`), and whenever
    /// the unconstrained argmax is legal the pick is bit-identical to the
    /// unconstrained decode.
    pub fn apply(&self, logits: &mut [f32]) -> MaskOutcome {
        if !self.is_active() {
            return MaskOutcome::inactive();
        }
        let (allowed, count, forced, cache_hit) = self.index.mask_for(&self.state, self.remaining);
        debug_assert!(count > 0, "grammar mask must never be empty while active");
        let n = logits.len().min(self.index.vocab_size);
        let mut masked = 0u32;
        for (i, l) in logits.iter_mut().enumerate().take(n) {
            if allowed[i / 64] & (1 << (i % 64)) == 0 {
                *l = f32::NEG_INFINITY;
                masked += 1;
            }
        }
        for l in logits.iter_mut().skip(n) {
            *l = f32::NEG_INFINITY;
            masked += 1;
        }
        self.index
            .masked_total
            .fetch_add(masked as u64, Ordering::Relaxed);
        MaskOutcome {
            forced,
            masked,
            cache_hit,
            active: true,
        }
    }

    /// Advances past a chosen token. Returns `false` (and flips to bypass)
    /// when the token is illegal — callers treat that as "constraint off",
    /// never as an error.
    pub fn advance(&mut self, token: u32) -> bool {
        if self.bypass || self.done {
            return true;
        }
        if token == self.index.eot {
            if self.index.machine().accepting(&self.state) {
                self.done = true;
                return true;
            }
            self.bypass = true;
            return false;
        }
        let m = self.index.machine();
        let bytes = match self.index.token_bytes.get(token as usize) {
            Some(b) if !b.is_empty() => b.clone(),
            _ => {
                self.bypass = true;
                return false;
            }
        };
        // Mirror the mask's budget filter: a token that is grammar-legal but
        // leaves no room to close (possible for externally proposed tokens,
        // e.g. n-gram speculative drafts) is rejected the same way the mask
        // would have rejected it.
        match self.index.advance_token(&m, &self.state, &bytes) {
            Some((next, est)) if est + 2 <= self.remaining => {
                self.state = next;
                self.remaining -= 1;
                true
            }
            _ => {
                self.bypass = true;
                false
            }
        }
    }

    /// How many leading tokens of `tokens` this cursor could legally accept
    /// in sequence from its current state (grammar- *and* budget-legal).
    ///
    /// Speculative drafters call this to pre-truncate a proposal before the
    /// verify pass, so a constrained verifier never spends forward-pass rows
    /// on tokens the mask would reject anyway. The cursor itself is not
    /// moved. Inactive cursors accept everything.
    pub fn legal_prefix_len(&self, tokens: &[u32]) -> usize {
        if !self.is_active() {
            return tokens.len();
        }
        let mut probe = self.clone();
        let mut n = 0;
        for &t in tokens {
            if !probe.advance(t) {
                break;
            }
            n += 1;
            if !probe.is_active() {
                break; // reached a legal end-of-sequence
            }
        }
        n
    }

    /// Test/bench hook: the canonical close bytes from the current state.
    pub fn canonical_close(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.index
            .machine()
            .close_len(&self.state, Some(&mut out))
            .map(|_| out)
    }
}
