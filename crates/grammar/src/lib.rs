//! `wisdom-grammar`: grammar-constrained decoding for Ansible YAML.
//!
//! The paper's Schema Correct and Ansible Aware metrics measure how often a
//! sampled playbook actually satisfies the Ansible schema. This crate closes
//! the loop: instead of scoring violations after the fact, it compiles the
//! play/task grammar plus the per-module parameter schemas (from
//! `wisdom-ansible`'s `module_registry` and `keywords`) into an incremental
//! constraint automaton over BPE tokens, so every *sampled* playbook is
//! lint-clean by construction.
//!
//! Layers:
//!
//! * [`tables`](crate::Constraint) — the schema compiled into candidate
//!   tries and value-shape specs, derived from the same tables the linter
//!   checks against.
//! * `state` — a byte-level automaton whose states are tiny `Copy` values:
//!   a structure stack (document → play → tasks → task → params) plus an
//!   intra-line position, with a *canonical close* function that proves
//!   every reachable state can finish within the token budget.
//! * [`GrammarIndex`] — the automaton projected onto a live tokenizer
//!   vocabulary: per-state allowed-token bitmasks, cached by state, with a
//!   forced-token fast path when only one continuation is legal.
//! * [`GrammarCursor`] — the per-sequence handle decode loops drive:
//!   `apply` masks a logit row (illegal entries to `-inf`, so the existing
//!   argmax/top-k pickers never choose them and constrained greedy decode
//!   is bit-identical to unconstrained whenever the unconstrained argmax is
//!   already legal), `advance` steps past the chosen token.

mod constraint;
mod index;
mod state;
mod tables;

pub use constraint::Constraint;
pub use index::{GrammarCursor, GrammarIndex, GrammarStats, MaskOutcome};
pub use state::ConstraintState;

#[cfg(test)]
mod walk_tests;
