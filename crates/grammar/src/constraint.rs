//! The user-facing constraint selector.

use std::fmt;
use std::str::FromStr;

/// Which grammar, if any, constrains a decode.
///
/// * `None` — unconstrained sampling (the default).
/// * `Yaml` — structural YAML only: indentation-consistent mappings,
///   sequences and scalars, so every completion parses with `crates/yaml`.
/// * `Ansible` — the full play/task schema: completions additionally lint
///   clean under `crates/ansible` (known keys, value kinds, required
///   module parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Constraint {
    #[default]
    None,
    Yaml,
    Ansible,
}

impl Constraint {
    pub const ALL: [Constraint; 3] = [Constraint::None, Constraint::Yaml, Constraint::Ansible];

    pub fn as_str(&self) -> &'static str {
        match self {
            Constraint::None => "none",
            Constraint::Yaml => "yaml",
            Constraint::Ansible => "ansible",
        }
    }

    /// Whether decoding is actually constrained.
    pub fn is_active(&self) -> bool {
        !matches!(self, Constraint::None)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Constraint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" | "off" => Ok(Constraint::None),
            "yaml" => Ok(Constraint::Yaml),
            "ansible" => Ok(Constraint::Ansible),
            other => Err(format!(
                "unknown constraint {other:?} (expected none, yaml or ansible)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_strings() {
        for c in Constraint::ALL {
            assert_eq!(c.as_str().parse::<Constraint>().unwrap(), c);
        }
        assert_eq!("off".parse::<Constraint>().unwrap(), Constraint::None);
        assert!("json".parse::<Constraint>().is_err());
    }
}
