//! Deterministic pseudo-random number generation for reproducible experiments.
//!
//! Every stochastic component of the Ansible Wisdom reproduction (corpus
//! synthesis, weight initialization, data shuffling, sampling decoders) draws
//! from [`Prng`], a xoshiro256++ generator. Using our own ~100-line generator
//! instead of an external crate guarantees bit-identical experiment streams
//! across platforms and dependency upgrades, which is what makes the paper's
//! tables regenerable.
//!
//! # Examples
//!
//! ```
//! use wisdom_prng::Prng;
//!
//! let mut rng = Prng::seed_from_u64(42);
//! let roll = rng.range_usize(0, 6);
//! assert!(roll < 6);
//! // Identical seeds yield identical streams.
//! let mut rng2 = Prng::seed_from_u64(42);
//! assert_eq!(rng2.range_usize(0, 6), roll);
//! ```

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// The generator is intentionally *not* cryptographically secure; it exists to
/// make every experiment in this repository bit-reproducible from a single
/// `u64` seed.
///
/// # Examples
///
/// ```
/// use wisdom_prng::Prng;
///
/// let mut rng = Prng::seed_from_u64(7);
/// let x: f64 = rng.f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Default for Prng {
    fn default() -> Self {
        Self::seed_from_u64(0)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator whose entire stream is determined by `seed`.
    ///
    /// The four 64-bit lanes of internal state are derived from the seed via
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Streams for different `label`s are decorrelated, so e.g. the corpus
    /// generator and the model initializer can each fork their own stream
    /// from one experiment seed without interfering.
    pub fn fork(&mut self, label: &str) -> Prng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Prng::seed_from_u64(self.u64() ^ h)
    }

    /// Returns the next raw 64-bit output of the generator.
    pub fn u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        (self.u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.bounded_u64(span) as usize)
    }

    /// Returns a uniform `u64` in `[0, bound)` using widening-multiply with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Returns a standard-normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > f64::EPSILON {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation as `f32`.
    pub fn normal_f32(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal() as f32
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choice on empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Picks a uniformly random element of `items`, by value.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        *self.choice(items)
    }

    /// Picks an index according to non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (order randomized).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(123);
        let mut b = Prng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_usize_respects_bounds() {
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.range_usize(3, 17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_usize_empty_panics() {
        let mut rng = Prng::seed_from_u64(0);
        rng.range_usize(4, 4);
    }

    #[test]
    fn bounded_u64_covers_small_range() {
        let mut rng = Prng::seed_from_u64(77);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.bounded_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = Prng::seed_from_u64(31);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn weighted_index_biases_toward_heavy_weight() {
        let mut rng = Prng::seed_from_u64(8);
        let weights = [0.05, 0.9, 0.05];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert!(counts[1] > counts[0] * 5);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Prng::seed_from_u64(12);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn fork_streams_decorrelated() {
        let mut root = Prng::seed_from_u64(99);
        let mut a = root.fork("corpus");
        let mut root2 = Prng::seed_from_u64(99);
        let mut b = root2.fork("model");
        let va: Vec<u64> = (0..8).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }
}
