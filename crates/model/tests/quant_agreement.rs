//! The int8 agreement suite: an [`Precision::Int8`] model (packed weights,
//! quantized GEBP/matvec kernels) must be bit-identical to the
//! [`Precision::Int8Dequant`] oracle (the same weights quantized then
//! dequantized back to f32, run through the unmodified f32 kernels) on
//! every inference entry point — prefill, prefill_continue (any split),
//! prefill_continue_all, step, step_batch, next_token_logits, and full
//! greedy/top-k generation. This is the model-level face of the kernel
//! guarantee pinned in `wisdom-tensor`: both paths accumulate each output
//! element over k in index order against bitwise-equal weight values.

use std::sync::OnceLock;

use proptest::prelude::*;
use wisdom_model::{GenerationOptions, KvCache, ModelConfig, Precision, Strategy, TransformerLm};
use wisdom_prng::Prng;

const VOCAB: usize = 20;
const CTX: usize = 12;

fn base_model() -> &'static TransformerLm {
    static MODEL: OnceLock<TransformerLm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = ModelConfig {
            vocab_size: VOCAB,
            // d_model 16 exercises the MR×NR remainder tiles; 2 layers, so
            // quantization error compounds across blocks like it would in a
            // real checkpoint.
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: CTX,
        };
        let mut rng = Prng::seed_from_u64(42);
        TransformerLm::new(cfg, &mut rng)
    })
}

fn int8_model() -> &'static TransformerLm {
    static MODEL: OnceLock<TransformerLm> = OnceLock::new();
    MODEL.get_or_init(|| base_model().clone().with_precision(Precision::Int8))
}

fn oracle_model() -> &'static TransformerLm {
    static MODEL: OnceLock<TransformerLm> = OnceLock::new();
    MODEL.get_or_init(|| base_model().clone().with_precision(Precision::Int8Dequant))
}

fn assert_bit_identical(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: logit {i} diverged ({x} vs {y})"
        );
    }
}

fn assert_caches_match(a: &KvCache, b: &KvCache, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: cache length");
}

#[test]
fn prefill_matches_oracle_at_every_length() {
    for len in 0..=CTX {
        let prompt: Vec<u32> = (0..len).map(|i| (i * 7 % VOCAB) as u32).collect();
        let (cache_q, logits_q) = int8_model().prefill(&prompt);
        let (cache_o, logits_o) = oracle_model().prefill(&prompt);
        assert_bit_identical(&logits_q, &logits_o, &format!("prefill len={len}"));
        assert_caches_match(&cache_q, &cache_o, &format!("prefill len={len}"));
    }
}

#[test]
fn prefill_continue_matches_oracle_at_every_split() {
    let window: Vec<u32> = (0..CTX).map(|i| (i * 5 % VOCAB) as u32).collect();
    for split in 0..window.len() {
        let (prefix, suffix) = window.split_at(split);
        let (mut cache_q, _) = int8_model().prefill(prefix);
        let logits_q = int8_model().prefill_continue(suffix, &mut cache_q);
        let (mut cache_o, _) = oracle_model().prefill(prefix);
        let logits_o = oracle_model().prefill_continue(suffix, &mut cache_o);
        assert_bit_identical(&logits_q, &logits_o, &format!("split={split}"));
    }
}

#[test]
fn prefill_continue_all_rows_match_oracle() {
    let prompt = [3u32, 7, 1];
    let suffix = [11u32, 5, 2, 9];
    let (mut cache_q, _) = int8_model().prefill(&prompt);
    let rows_q = int8_model().prefill_continue_all(&suffix, &mut cache_q);
    let (mut cache_o, _) = oracle_model().prefill(&prompt);
    let rows_o = oracle_model().prefill_continue_all(&suffix, &mut cache_o);
    assert_eq!(rows_q.len(), rows_o.len());
    for (r, (a, b)) in rows_q.iter().zip(rows_o.iter()).enumerate() {
        assert_bit_identical(a, b, &format!("verify row {r}"));
    }
}

#[test]
fn sequential_steps_match_oracle() {
    let tokens = [3u32, 7, 1, 11, 5, 2, 9, 4];
    let mut cache_q = KvCache::new(int8_model());
    let mut cache_o = KvCache::new(oracle_model());
    for (pos, &t) in tokens.iter().enumerate() {
        let a = int8_model().step(t, pos, &mut cache_q);
        let b = oracle_model().step(t, pos, &mut cache_o);
        assert_bit_identical(&a, &b, &format!("step pos={pos}"));
    }
}

#[test]
fn step_batch_rows_match_oracle() {
    let prompts: [&[u32]; 3] = [&[1, 2, 3], &[9, 8], &[4, 4, 4, 4]];
    let mut caches_q: Vec<KvCache> = prompts.iter().map(|p| int8_model().prefill(p).0).collect();
    let mut caches_o: Vec<KvCache> = prompts
        .iter()
        .map(|p| oracle_model().prefill(p).0)
        .collect();
    let tokens = [5u32, 6, 7];
    let positions: Vec<usize> = prompts.iter().map(|p| p.len()).collect();
    let mut refs_q: Vec<&mut KvCache> = caches_q.iter_mut().collect();
    let rows_q = int8_model().step_batch(&tokens, &positions, &mut refs_q);
    let mut refs_o: Vec<&mut KvCache> = caches_o.iter_mut().collect();
    let rows_o = oracle_model().step_batch(&tokens, &positions, &mut refs_o);
    for (r, (a, b)) in rows_q.iter().zip(rows_o.iter()).enumerate() {
        assert_bit_identical(a, b, &format!("batch row {r}"));
    }
}

#[test]
fn generation_matches_oracle_for_greedy_and_top_k() {
    for strategy in [
        Strategy::Greedy,
        Strategy::TopK {
            k: 5,
            temperature: 1.0,
        },
    ] {
        let opts = GenerationOptions {
            max_new_tokens: 8,
            strategy,
            seed: 11,
        };
        let a = int8_model().generate(&[1, 2, 3], &[0], &opts);
        let b = oracle_model().generate(&[1, 2, 3], &[0], &opts);
        assert_eq!(a, b, "{strategy:?}: generated tokens diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random prompts through `next_token_logits`: the packed fast path and
    /// the dequant oracle never differ by a single bit.
    #[test]
    fn next_token_logits_matches_oracle_on_random_prompts(
        prompt in prop::collection::vec(0u32..VOCAB as u32, 1..2 * CTX),
    ) {
        let a = int8_model().next_token_logits(&prompt);
        let b = oracle_model().next_token_logits(&prompt);
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "logit {} diverged", i);
        }
    }

    /// Random prefix/suffix splits of random windows through the
    /// prefix-cache fast path.
    #[test]
    fn random_splits_of_prefill_continue_match_oracle(
        window in prop::collection::vec(0u32..VOCAB as u32, 1..CTX + 1),
        split_seed in any::<usize>(),
    ) {
        let split = split_seed % window.len();
        let (prefix, suffix) = window.split_at(split);
        let (mut cache_q, _) = int8_model().prefill(prefix);
        let a = int8_model().prefill_continue(suffix, &mut cache_q);
        let (mut cache_o, _) = oracle_model().prefill(prefix);
        let b = oracle_model().prefill_continue(suffix, &mut cache_o);
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "logit {} diverged", i);
        }
    }
}
