//! The batched prefill, the sequential step loop, and the training graph
//! are three implementations of the same function; this suite pins them
//! together.

use std::sync::OnceLock;

use proptest::prelude::*;
use wisdom_model::{ModelConfig, TransformerLm};
use wisdom_prng::Prng;

const VOCAB: usize = 20;
const CTX: usize = 12;

fn tiny_model() -> &'static TransformerLm {
    static MODEL: OnceLock<TransformerLm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = ModelConfig {
            vocab_size: VOCAB,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: CTX,
        };
        let mut rng = Prng::seed_from_u64(42);
        TransformerLm::new(cfg, &mut rng)
    })
}

fn assert_bit_identical(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: logit {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn prefill_matches_sequential_bit_for_bit() {
    let model = tiny_model();
    for len in 0..=CTX {
        let prompt: Vec<u32> = (0..len).map(|i| (i * 7 % VOCAB) as u32).collect();
        let (cache_b, logits_b) = model.prefill(&prompt);
        let (cache_s, logits_s) = model.prefill_sequential(&prompt);
        assert_bit_identical(&logits_b, &logits_s, &format!("len={len}"));
        assert_eq!(cache_b.len(), len);
        assert_eq!(cache_b.len(), cache_s.len());
    }
}

#[test]
fn prefill_matches_batch_logits_final_row() {
    let model = tiny_model();
    for len in 1..=CTX {
        let prompt: Vec<u32> = (0..len).map(|i| (i * 5 % VOCAB) as u32).collect();
        let fast = model.next_token_logits(&prompt);
        let all = model.batch_logits(&prompt, 1, len);
        let last = &all[(len - 1) * VOCAB..];
        for (i, (a, b)) in fast.iter().zip(last.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-5,
                "len={len} logit {i}: prefill {a} vs tape {b}"
            );
        }
    }
}

#[test]
fn prefill_cache_supports_decode_continuation() {
    // Prefilling N-1 tokens and stepping the Nth must land exactly where
    // the sequential loop over all N does.
    let model = tiny_model();
    let prompt: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    let (mut cache, _) = model.prefill(&prompt[..prompt.len() - 1]);
    let stepped = model.step(prompt[prompt.len() - 1], prompt.len() - 1, &mut cache);
    let (cache_s, sequential) = model.prefill_sequential(&prompt);
    assert_bit_identical(&stepped, &sequential, "decode continuation");
    assert_eq!(cache.len(), cache_s.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any prompt length from empty through past the context window (where
    /// left-truncation kicks in) agrees bit-for-bit between the batched and
    /// sequential paths, and within 1e-5 of the training graph.
    #[test]
    fn prefill_agrees_for_any_prompt(
        prompt in prop::collection::vec(0u32..VOCAB as u32, 0..(2 * CTX + 1)),
    ) {
        let model = tiny_model();
        let fast = model.next_token_logits(&prompt);
        let slow = model.next_token_logits_sequential(&prompt);
        for (i, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "logit {} diverged: {} vs {}",
                i,
                a,
                b
            );
        }
        if !prompt.is_empty() {
            let start = prompt.len().saturating_sub(CTX);
            let window = &prompt[start..];
            let all = model.batch_logits(window, 1, window.len());
            let last = &all[(window.len() - 1) * VOCAB..];
            for (a, b) in fast.iter().zip(last.iter()) {
                prop_assert!((a - b).abs() < 1e-5, "prefill {} vs tape {}", a, b);
            }
        }
    }
}
