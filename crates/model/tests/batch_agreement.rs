//! Continuous-batching decode must be invisible: every sequence decoded
//! through [`DecodeBatch`]/[`generate_batch`]/[`BatchScheduler`] produces
//! bit-for-bit the tokens solo [`TransformerLm::generate`] would — at any
//! batch size, prompt mix, and admission order.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use wisdom_model::{
    generate_batch, BatchConfig, BatchScheduler, DecodeBatch, DecodeRequest, GenerationOptions,
    ModelConfig, Strategy, TransformerLm,
};
use wisdom_prng::Prng;

const VOCAB: usize = 20;
const CTX: usize = 12;

fn tiny_model() -> &'static TransformerLm {
    static MODEL: OnceLock<TransformerLm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = ModelConfig {
            vocab_size: VOCAB,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: CTX,
        };
        let mut rng = Prng::seed_from_u64(42);
        TransformerLm::new(cfg, &mut rng)
    })
}

fn shared_model() -> Arc<TransformerLm> {
    static MODEL: OnceLock<Arc<TransformerLm>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| Arc::new(tiny_model().clone())))
}

const STOPS: [u32; 1] = [0];

fn greedy(max_new: usize) -> GenerationOptions {
    GenerationOptions {
        max_new_tokens: max_new,
        ..Default::default()
    }
}

fn request(prompt: &[u32], opts: GenerationOptions) -> DecodeRequest {
    DecodeRequest {
        prompt: prompt.to_vec(),
        stops: STOPS.to_vec(),
        opts,
        grammar: None,
    }
}

#[test]
fn batch_of_one_matches_generate() {
    let model = tiny_model();
    for len in 0..CTX {
        let prompt: Vec<u32> = (0..len).map(|i| (i * 7 % VOCAB) as u32).collect();
        let solo = model.generate(&prompt, &STOPS, &greedy(5));
        let batched = generate_batch(model, vec![request(&prompt, greedy(5))], 1);
        assert_eq!(batched, vec![solo], "len={len}");
    }
}

#[test]
fn mixed_length_batch_retires_sequences_independently() {
    let model = tiny_model();
    // Different prompt lengths AND different budgets, so sequences retire
    // at different rounds while the batch keeps stepping.
    let cases: Vec<(Vec<u32>, usize)> = vec![
        (vec![1, 2, 3], 8),
        (vec![4], 1),
        (vec![5, 6, 7, 8, 9, 10, 11], 3),
        (vec![], 6),
        (vec![2, 2], 0),
        (vec![9, 8, 7, 6], 12),
    ];
    let requests: Vec<DecodeRequest> = cases
        .iter()
        .map(|(p, max_new)| request(p, greedy(*max_new)))
        .collect();
    for max_batch in [1, 2, 3, 6, 8] {
        let batched = generate_batch(model, requests.clone(), max_batch);
        for ((prompt, max_new), got) in cases.iter().zip(&batched) {
            let solo = model.generate(prompt, &STOPS, &greedy(*max_new));
            assert_eq!(got, &solo, "max_batch={max_batch} prompt={prompt:?}");
        }
    }
}

#[test]
fn top_k_sampling_is_deterministic_per_request() {
    let model = tiny_model();
    let opts = |seed: u64| GenerationOptions {
        max_new_tokens: 6,
        strategy: Strategy::TopK {
            k: 4,
            temperature: 0.8,
        },
        seed,
    };
    let prompts: Vec<Vec<u32>> = vec![vec![1, 2], vec![3, 4, 5], vec![6]];
    let requests: Vec<DecodeRequest> = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| request(p, opts(i as u64 + 1)))
        .collect();
    let batched = generate_batch(model, requests, 3);
    for (i, (p, got)) in prompts.iter().zip(&batched).enumerate() {
        let solo = model.generate(p, &STOPS, &opts(i as u64 + 1));
        assert_eq!(got, &solo, "seeded top-k, prompt {p:?}");
    }
}

#[test]
fn continuous_admission_mid_decode_is_invisible() {
    // Admit a second sequence after the first has already decoded a few
    // tokens — the late joiner and the incumbent must both be unaffected.
    let model = tiny_model();
    let mut engine = DecodeBatch::new(model);
    engine.admit(0, request(&[1, 2, 3], greedy(8)));
    let mut finished = Vec::new();
    for round in 0..8 {
        if round == 2 {
            engine.admit(1, request(&[4, 5], greedy(8)));
        }
        if round == 4 {
            engine.admit(2, request(&[6], greedy(2)));
        }
        finished.extend(engine.step());
    }
    while !engine.is_empty() {
        finished.extend(engine.step());
    }
    finished.sort_by_key(|(tag, _)| *tag);
    let expected: Vec<(usize, Vec<u32>)> = vec![
        (0, model.generate(&[1, 2, 3], &STOPS, &greedy(8))),
        (1, model.generate(&[4, 5], &STOPS, &greedy(8))),
        (2, model.generate(&[6], &STOPS, &greedy(2))),
    ];
    assert_eq!(finished, expected);
}

#[test]
fn scheduler_under_concurrent_submissions_matches_solo() {
    let model = shared_model();
    let sched = BatchScheduler::spawn(
        Arc::clone(&model),
        BatchConfig {
            max_batch_size: 4,
            queue_depth: 32,
            ..BatchConfig::default()
        },
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12u32)
            .map(|i| {
                let sched = &sched;
                let model = &model;
                scope.spawn(move || {
                    let prompt: Vec<u32> = (0..(i % 7)).map(|j| (i + j) % VOCAB as u32).collect();
                    let out = sched.generate(&prompt, &STOPS, &greedy(6));
                    let solo = model.generate(&prompt, &STOPS, &greedy(6));
                    assert_eq!(out, solo, "request {i}");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random prompt mixes at batch sizes 1–8: every sequence decoded via
    /// the batched engine equals solo `generate` bit-for-bit, including
    /// mixed-length batches that retire at different steps.
    #[test]
    fn batched_decode_agrees_for_any_mix(
        prompts in prop::collection::vec(
            prop::collection::vec(0u32..VOCAB as u32, 0..(CTX + 3)),
            1..9,
        ),
        budgets in prop::collection::vec(0usize..10, 1..9),
        max_batch in 1usize..9,
    ) {
        let model = tiny_model();
        let requests: Vec<DecodeRequest> = prompts
            .iter()
            .zip(budgets.iter().cycle())
            .map(|(p, &b)| request(p, greedy(b)))
            .collect();
        let batched = generate_batch(model, requests, max_batch);
        for ((prompt, got), &max_new) in prompts.iter().zip(&batched).zip(budgets.iter().cycle()) {
            let solo = model.generate(prompt, &STOPS, &greedy(max_new));
            prop_assert_eq!(got, &solo, "prompt {:?} max_new {}", prompt, max_new);
        }
    }
}
