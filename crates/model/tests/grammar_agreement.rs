//! Grammar-constrained decoding must be invisible where the constraint is
//! inactive and airtight where it is active:
//!
//! * constrained greedy decode is bit-identical to unconstrained decode at
//!   every step where the unconstrained argmax is grammar-legal — the two
//!   outputs may only diverge at a position where the unconstrained pick
//!   would have been rejected by the automaton;
//! * the solo, batched, and speculative decode paths all produce
//!   bit-for-bit identical constrained outputs (placement never changes
//!   bytes, constrained or not);
//! * every constrained completion parses with `wisdom-yaml`, and under
//!   [`Constraint::Ansible`] additionally lints clean with
//!   `wisdom-ansible` — by construction, regardless of model weights.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use wisdom_ansible::{lint_str, LintTarget};
use wisdom_model::{
    generate_batch, pretrain, BatchConfig, BatchScheduler, Constraint, DecodeRequest,
    GenerationOptions, GrammarCursor, GrammarIndex, ModelConfig, PretrainConfig, SpeculativeConfig,
    SpeculativeDecoder, Strategy, TransformerLm,
};
use wisdom_prng::Prng;
use wisdom_tokenizer::BpeTokenizer;
use wisdom_yaml::parse;

/// Playbook-shaped corpus: enough structure that a briefly pretrained
/// model's greedy continuations are mostly (but not always) grammar-legal,
/// which is exactly the regime the divergence test needs.
const CORPUS: [&str; 4] = [
    "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n  become: true\n",
    "- name: Site play\n  hosts: all\n  gather_facts: false\n  tasks:\n    - name: Ping\n      ping:\n",
    "- name: Copy config\n  copy:\n    src: files/app.conf\n    dest: /etc/app.conf\n  notify:\n    - restart app\n",
    "- name: Run command\n  command: systemctl restart nginx\n  when: restart_needed\n",
];

const PROMPTS: [&str; 3] = [
    "- name: Install nginx\n",
    "- name: Copy config\n  copy:\n",
    "- name: Site play\n  hosts: all\n",
];

/// Prompts the parse/lint suites decode from. Each ends on a `- name:`
/// line, where the automaton's contract is exactly the eval harness's:
/// the de-indented last line plus the completion is a lint-clean document.
const DOC_PROMPTS: [&str; 3] = [
    "- name: Install nginx\n",
    "- name: Copy config\n",
    "- name: Site play\n  hosts: all\n  gather_facts: false\n  tasks:\n    - name: Ping\n",
];

struct Fixture {
    tokenizer: BpeTokenizer,
    model: Arc<TransformerLm>,
    ansible: Arc<GrammarIndex>,
    yaml: Arc<GrammarIndex>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let tokenizer = BpeTokenizer::train(CORPUS, 460);
        let cfg = ModelConfig {
            vocab_size: tokenizer.vocab_size(),
            d_model: 32,
            n_layers: 2,
            n_heads: 2,
            context_window: 64,
        };
        let mut rng = Prng::seed_from_u64(11);
        let mut model = TransformerLm::new(cfg, &mut rng);
        let mut stream = Vec::new();
        for _ in 0..4 {
            for doc in CORPUS {
                stream.extend(tokenizer.encode(doc));
                stream.push(tokenizer.eot());
            }
        }
        pretrain(
            &mut model,
            &stream,
            &PretrainConfig {
                epochs: 3,
                batch_size: 4,
                ..Default::default()
            },
            None,
        );
        let ansible = GrammarIndex::build(&tokenizer, Constraint::Ansible).expect("ansible index");
        let yaml = GrammarIndex::build(&tokenizer, Constraint::Yaml).expect("yaml index");
        Fixture {
            model: Arc::new(model),
            tokenizer,
            ansible,
            yaml,
        }
    })
}

fn greedy(max_new: usize) -> GenerationOptions {
    GenerationOptions {
        max_new_tokens: max_new,
        ..Default::default()
    }
}

fn stops(tok: &BpeTokenizer) -> Vec<u32> {
    vec![tok.eot(), tok.sep()]
}

/// The document a constrained decode produced. The automaton anchors on
/// the prompt's *last* line, so the verifiable document is that line plus
/// the completion, de-indented to column zero — the same reconstruction
/// the eval harness scores.
fn document(f: &Fixture, prompt: &str, out: &[u32]) -> String {
    let last = prompt.trim_end_matches('\n').rsplit('\n').next().unwrap();
    let indent = last.len() - last.trim_start().len();
    let text = format!("{last}\n{}", f.tokenizer.decode(out));
    text.lines()
        .map(|l| l.get(indent..).unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn constrained_completions_parse_and_lint_clean() {
    let f = fixture();
    let stops = stops(&f.tokenizer);
    for prompt in DOC_PROMPTS {
        let ids = f.tokenizer.encode(prompt);
        for (index, constraint) in [
            (&f.yaml, Constraint::Yaml),
            (&f.ansible, Constraint::Ansible),
        ] {
            let out = f
                .model
                .generate_constrained(&ids, &stops, &greedy(40), Some(index), None);
            let text = document(f, prompt, &out);
            assert!(
                parse(&text).is_ok(),
                "{constraint} completion must parse:\n{text}"
            );
            if constraint == Constraint::Ansible {
                let violations = lint_str(&text, LintTarget::Auto);
                assert!(
                    violations.is_empty(),
                    "ansible completion must lint clean, got {violations:?}:\n{text}"
                );
            }
        }
    }
}

#[test]
fn constrained_sampled_completions_parse() {
    let f = fixture();
    let stops = stops(&f.tokenizer);
    for seed in 0..4u64 {
        let opts = GenerationOptions {
            max_new_tokens: 40,
            strategy: Strategy::TopK {
                k: 8,
                temperature: 0.9,
            },
            seed,
        };
        let prompt = DOC_PROMPTS[seed as usize % DOC_PROMPTS.len()];
        let ids = f.tokenizer.encode(prompt);
        let out = f
            .model
            .generate_constrained(&ids, &stops, &opts, Some(&f.ansible), None);
        let text = document(f, prompt, &out);
        assert!(
            parse(&text).is_ok(),
            "sampled (seed {seed}) must parse:\n{text}"
        );
        let violations = lint_str(&text, LintTarget::Auto);
        assert!(
            violations.is_empty(),
            "sampled (seed {seed}) must lint clean, got {violations:?}:\n{text}"
        );
    }
}

/// Constrained and unconstrained greedy decode agree token for token until
/// (at most) one position — and at a divergence, the unconstrained pick is
/// provably illegal under the grammar. Masking never rewrites a legal
/// argmax.
#[test]
fn divergence_only_where_unconstrained_argmax_is_illegal() {
    let f = fixture();
    let stops = stops(&f.tokenizer);
    let mut diverged = 0usize;
    for prompt in PROMPTS {
        let ids = f.tokenizer.encode(prompt);
        let opts = greedy(40);
        let plain = f.model.generate(&ids, &stops, &opts);
        let constrained = f
            .model
            .generate_constrained(&ids, &stops, &opts, Some(&f.ansible), None);
        let mut cursor = GrammarCursor::new(Arc::clone(&f.ansible), &ids, opts.max_new_tokens);
        assert!(
            cursor.is_active(),
            "prompt {prompt:?} must activate the cursor"
        );
        for (i, (&c, &p)) in constrained.iter().zip(plain.iter()).enumerate() {
            if c == p {
                assert!(cursor.advance(c), "shared token {i} must be grammar-legal");
                continue;
            }
            let mut probe = cursor.clone();
            assert!(
                !probe.advance(p),
                "constrained decode diverged at {i} although the unconstrained \
                 pick {p} is legal ({:?} vs {:?})",
                f.tokenizer.decode(&[p]),
                f.tokenizer.decode(&[c]),
            );
            diverged += 1;
            break;
        }
    }
    // Not an invariant, but with random-ish weights at least one prompt
    // diverging keeps the suite honest about exercising the mask.
    let _ = diverged;
}

#[test]
fn solo_batched_and_speculative_constrained_decodes_agree() {
    let f = fixture();
    let stops = stops(&f.tokenizer);
    let opts = greedy(32);
    let solo: Vec<Vec<u32>> = PROMPTS
        .iter()
        .map(|p| {
            f.model.generate_constrained(
                &f.tokenizer.encode(p),
                &stops,
                &opts,
                Some(&f.ansible),
                None,
            )
        })
        .collect();

    // Batched: all three prompts decoded together, grammar attached per
    // request.
    let requests: Vec<DecodeRequest> = PROMPTS
        .iter()
        .map(|p| DecodeRequest {
            prompt: f.tokenizer.encode(p),
            stops: stops.clone(),
            opts,
            grammar: Some(Arc::clone(&f.ansible)),
        })
        .collect();
    let batched = generate_batch(&f.model, requests.clone(), PROMPTS.len());
    assert_eq!(batched, solo, "batched constrained decode must match solo");

    // Speculative: both drafter kinds, both verified against the same
    // sequential-constrained oracle.
    for cfg in [
        SpeculativeConfig::ngram(4),
        SpeculativeConfig::self_draft(3),
    ] {
        let dec = SpeculativeDecoder::new(&f.model, cfg);
        for (p, want) in PROMPTS.iter().zip(&solo) {
            let (got, _) = dec.generate_constrained(
                &f.tokenizer.encode(p),
                &stops,
                &opts,
                Some(&f.ansible),
                None,
            );
            assert_eq!(&got, want, "speculative ({cfg:?}) must match solo on {p:?}");
        }
    }

    // Through a speculative scheduler: constrained requests multiplexed on
    // the decode worker still match.
    let sched = BatchScheduler::spawn(
        Arc::clone(&f.model),
        BatchConfig {
            speculative: SpeculativeConfig::self_draft(3),
            ..BatchConfig::default()
        },
    );
    for (req, want) in requests.iter().zip(&solo) {
        let pending = sched.submit(req.clone()).expect("submit");
        assert_eq!(&pending.wait(), want, "scheduler constrained decode");
    }
    sched.shutdown();
}

#[test]
fn mixed_constrained_and_unconstrained_batch_agrees_with_solo() {
    let f = fixture();
    let stops = stops(&f.tokenizer);
    let opts = greedy(24);
    let mk = |p: &str, grammar: Option<Arc<GrammarIndex>>| DecodeRequest {
        prompt: f.tokenizer.encode(p),
        stops: stops.clone(),
        opts,
        grammar,
    };
    let requests = vec![
        mk(PROMPTS[0], Some(Arc::clone(&f.ansible))),
        mk(PROMPTS[1], None),
        mk(PROMPTS[2], Some(Arc::clone(&f.yaml))),
        mk(PROMPTS[0], None),
    ];
    let batched = generate_batch(&f.model, requests.clone(), 4);
    for (req, got) in requests.iter().zip(&batched) {
        let want = f.model.generate_constrained(
            &req.prompt,
            &req.stops,
            &req.opts,
            req.grammar.as_ref(),
            None,
        );
        assert_eq!(got, &want, "mixed batch row must match its solo oracle");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random prompt/budget/seed: batched constrained decode matches solo,
    /// and the produced document parses.
    #[test]
    fn constrained_batch_agrees_and_parses(
        which in 0usize..DOC_PROMPTS.len(),
        max_new in 8usize..48,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let stops = stops(&f.tokenizer);
        let opts = GenerationOptions {
            max_new_tokens: max_new,
            strategy: if seed.is_multiple_of(2) {
                Strategy::Greedy
            } else {
                Strategy::TopK { k: 6, temperature: 0.8 }
            },
            seed,
        };
        let prompt = DOC_PROMPTS[which];
        let ids = f.tokenizer.encode(prompt);
        let solo = f
            .model
            .generate_constrained(&ids, &stops, &opts, Some(&f.ansible), None);
        let batched = generate_batch(
            &f.model,
            vec![DecodeRequest {
                prompt: ids,
                stops: stops.clone(),
                opts,
                grammar: Some(Arc::clone(&f.ansible)),
            }],
            1,
        );
        prop_assert_eq!(&batched[0], &solo);
        // A budget too small to fit any grammatical close bypasses the
        // constraint (documented cursor semantics), so the parse guarantee
        // only holds when the cursor actually activates.
        let ctx = f.model.config().context_window;
        let budget = max_new.min(ctx.saturating_sub(f.tokenizer.encode(prompt).len()));
        let probe = GrammarCursor::new(Arc::clone(&f.ansible), &f.tokenizer.encode(prompt), budget);
        if probe.is_active() {
            let text = document(f, prompt, &solo);
            prop_assert!(parse(&text).is_ok(), "must parse:\n{}", text);
        }
    }
}
