//! Speculation must be invisible in the tokens: any draft proposer, draft
//! length schedule, batch mix, and prefix-cache interleaving produces
//! output bit-identical to plain greedy `generate`/`generate_batch` — a
//! bad draft costs forward passes, never correctness.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use wisdom_model::{
    generate_batch, generate_batch_speculative, DecodeRequest, DraftKind, GenerationOptions,
    ModelConfig, NgramSpeculator, PrefixKvCache, SpeculativeConfig, SpeculativeDecoder, Strategy,
    TransformerLm,
};
use wisdom_prng::Prng;

const VOCAB: usize = 20;
const CTX: usize = 16;

fn tiny_model() -> &'static TransformerLm {
    static MODEL: OnceLock<TransformerLm> = OnceLock::new();
    MODEL.get_or_init(|| model_with_seed(42))
}

fn model_with_seed(seed: u64) -> TransformerLm {
    let cfg = ModelConfig {
        vocab_size: VOCAB,
        d_model: 16,
        n_layers: 2,
        n_heads: 2,
        context_window: CTX,
    };
    let mut rng = Prng::seed_from_u64(seed);
    TransformerLm::new(cfg, &mut rng)
}

fn greedy(max_new: usize) -> GenerationOptions {
    GenerationOptions {
        max_new_tokens: max_new,
        ..Default::default()
    }
}

fn request(prompt: &[u32], max_new: usize) -> DecodeRequest {
    DecodeRequest {
        prompt: prompt.to_vec(),
        stops: vec![0],
        opts: greedy(max_new),
        grammar: None,
    }
}

/// The draft-kind / draft-length grid the deterministic tests sweep.
fn config_grid() -> Vec<SpeculativeConfig> {
    let mut grid = Vec::new();
    for max_draft in [1, 2, 4, 8] {
        grid.push(SpeculativeConfig::ngram(max_draft));
        grid.push(SpeculativeConfig::self_draft(max_draft));
        grid.push(SpeculativeConfig {
            max_draft,
            draft: DraftKind::Ngram {
                order: 2,
                online: false,
            },
            max_draft_batch: 2,
        });
    }
    grid
}

#[test]
fn solo_speculative_matches_plain_generate_across_grid() {
    let model = tiny_model();
    let prompts: Vec<Vec<u32>> = vec![
        vec![],
        vec![7],
        vec![1, 2, 3, 1, 2, 3, 1, 2],
        (0..2 * CTX).map(|i| (i % 9 + 1) as u32).collect(), // left-truncated
    ];
    for cfg in config_grid() {
        let dec = SpeculativeDecoder::new(model, cfg);
        for p in &prompts {
            for max_new in [0, 1, 3, CTX] {
                let plain = model.generate(p, &[0], &greedy(max_new));
                let spec = dec.generate(p, &[0], &greedy(max_new));
                assert_eq!(spec, plain, "cfg {cfg:?} prompt {p:?} max_new {max_new}");
            }
        }
    }
}

#[test]
fn corpus_warmed_drafter_keeps_agreement() {
    // A drafter warmed on arbitrary unrelated "corpus" text proposes
    // confidently wrong drafts; every one must be rejected, not emitted.
    let model = tiny_model();
    let dec = SpeculativeDecoder::new(model, SpeculativeConfig::ngram(4));
    let corpus: Vec<u32> = (0..200).map(|i| (i * 3 % VOCAB) as u32).collect();
    for prompt in [vec![1u32, 2, 3], vec![5, 5, 5, 5], vec![]] {
        let mut drafter = NgramSpeculator::new(4, VOCAB, true);
        drafter.warm(&corpus);
        let (out, report) = dec.generate_with(&prompt, &[0], &greedy(8), &mut drafter);
        assert_eq!(out, model.generate(&prompt, &[0], &greedy(8)));
        assert_eq!(report.accepted + report.rejected, report.proposed);
    }
}

#[test]
fn batched_speculation_matches_plain_across_grid() {
    let model = tiny_model();
    // More requests than any batch cap: mid-decode admission happens as
    // sequences retire, speculating and fresh sequences mixing freely.
    let prompts: Vec<Vec<u32>> = vec![
        vec![1, 2, 3, 1, 2, 3],
        vec![4],
        vec![],
        vec![5, 6, 5, 6, 5, 6],
        (0..CTX as u32).map(|i| i % VOCAB as u32).collect(),
        vec![9, 8, 7],
    ];
    let requests: Vec<DecodeRequest> = prompts.iter().map(|p| request(p, 6)).collect();
    let plain = generate_batch(model, requests.clone(), 2);
    for cfg in config_grid() {
        for cap in [1, 2, 4] {
            let spec = generate_batch_speculative(model, requests.clone(), cap, None, cfg);
            assert_eq!(spec, plain, "cfg {cfg:?} cap {cap}");
        }
    }
}

#[test]
fn mixed_strategies_only_speculate_the_greedy_lanes() {
    // Top-k lanes never get a drafter; their seeded sampling must be
    // untouched by greedy neighbours speculating in the same batch.
    let model = tiny_model();
    let topk = GenerationOptions {
        max_new_tokens: 6,
        strategy: Strategy::TopK {
            k: 4,
            temperature: 0.9,
        },
        seed: 17,
    };
    let requests = vec![
        request(&[1, 2, 3, 1, 2, 3], 6),
        DecodeRequest {
            prompt: vec![4, 5, 6],
            stops: vec![0],
            opts: topk,
            grammar: None,
        },
        request(&[7, 8, 7, 8], 6),
    ];
    let plain = generate_batch(model, requests.clone(), 3);
    let spec =
        generate_batch_speculative(model, requests, 3, None, SpeculativeConfig::self_draft(4));
    assert_eq!(spec, plain);
}

#[test]
fn speculation_composes_with_prefix_cache_warm_and_cold() {
    let model = tiny_model();
    let cache = Arc::new(PrefixKvCache::default());
    let base: Vec<u32> = vec![1, 2, 3, 4];
    let prompts: Vec<Vec<u32>> = (0..4u32)
        .map(|s| {
            let mut p = base.clone();
            p.extend([(s + 5) % VOCAB as u32, (s + 6) % VOCAB as u32]);
            p
        })
        .collect();
    let requests: Vec<DecodeRequest> = prompts.iter().map(|p| request(p, 5)).collect();
    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| model.generate(p, &[0], &greedy(5)))
        .collect();
    // Round 0 runs cold (populating the cache), round 1 warm: speculation
    // rolls draft rows back out of caches spliced from the shared tree,
    // which must never corrupt it.
    for round in 0..2 {
        let got = generate_batch_speculative(
            model,
            requests.clone(),
            2,
            Some(Arc::clone(&cache)),
            SpeculativeConfig::ngram(4),
        );
        assert_eq!(got, solo, "round {round}");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "shared prefixes must still hit: {stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random model weights, random prompts, random draft kind/length
    /// schedules: solo speculative decoding is bit-identical to plain
    /// greedy `generate`.
    #[test]
    fn random_models_and_k_schedules_agree_solo(
        model_seed in 0u64..1000,
        prompt in prop::collection::vec(0u32..VOCAB as u32, 0..2 * CTX),
        max_draft in 1usize..9,
        self_draft in any::<bool>(),
        order in 1usize..5,
        online in any::<bool>(),
        max_new in 0usize..10,
    ) {
        let model = model_with_seed(model_seed);
        let cfg = SpeculativeConfig {
            max_draft,
            draft: if self_draft {
                DraftKind::SelfDraft { min_match: 1, max_match: 4 }
            } else {
                DraftKind::Ngram { order, online }
            },
            max_draft_batch: 4,
        };
        let dec = SpeculativeDecoder::new(&model, cfg);
        let plain = model.generate(&prompt, &[0], &greedy(max_new));
        let (spec, report) = dec.generate_with_report(&prompt, &[0], &greedy(max_new));
        prop_assert_eq!(spec, plain);
        prop_assert_eq!(report.accepted + report.rejected, report.proposed);
    }

    /// Random batch mixes over a shared prefix cache, warm/cold
    /// interleavings, random draft schedules and batch caps: batched
    /// speculative decoding matches plain `generate_batch` exactly.
    #[test]
    fn random_batches_agree_through_prefix_cache(
        base in prop::collection::vec(0u32..VOCAB as u32, 0..CTX),
        suffixes in prop::collection::vec(
            prop::collection::vec(0u32..VOCAB as u32, 0..6),
            1..6,
        ),
        max_draft in 1usize..7,
        max_draft_batch in 1usize..6,
        self_draft in any::<bool>(),
        cap in 1usize..5,
        max_new in 1usize..7,
        use_cache in any::<bool>(),
    ) {
        let model = tiny_model();
        let cfg = SpeculativeConfig {
            max_draft,
            draft: if self_draft {
                DraftKind::SelfDraft { min_match: 1, max_match: 3 }
            } else {
                DraftKind::Ngram { order: 3, online: true }
            },
            max_draft_batch,
        };
        let prompts: Vec<Vec<u32>> = suffixes
            .iter()
            .map(|s| {
                let mut p = base.clone();
                p.extend(s);
                p
            })
            .collect();
        let requests: Vec<DecodeRequest> =
            prompts.iter().map(|p| request(p, max_new)).collect();
        let plain = generate_batch(model, requests.clone(), cap);
        let cache = use_cache.then(|| Arc::new(PrefixKvCache::default()));
        // Two rounds: the second decodes warm where a cache is in play.
        for round in 0..2 {
            let spec = generate_batch_speculative(
                model,
                requests.clone(),
                cap,
                cache.clone(),
                cfg,
            );
            prop_assert_eq!(&spec, &plain, "round {}", round);
        }
    }
}
