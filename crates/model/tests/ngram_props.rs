//! Property tests for [`NgramLm`]: prediction must be a pure function of
//! the observed stream — deterministic across identically-trained models
//! (no dependence on hash-map iteration order), backed off all the way to
//! unigrams, and indifferent to how the stream was chunked into
//! `observe`/`observe_continuation` calls. The speculative decoder's
//! bit-for-bit guarantee leans on exactly these properties.

use proptest::prelude::*;
use wisdom_model::NgramLm;

const VOCAB: usize = 12;

/// Every context the tests probe: all tails of the stream up to `order`
/// tokens, plus the empty context (pure unigram backoff).
fn probe_contexts(stream: &[u32], order: usize) -> Vec<Vec<u32>> {
    let mut ctxs = vec![Vec::new()];
    for end in 0..=stream.len() {
        for len in 1..=order.min(end) {
            ctxs.push(stream[end - len..end].to_vec());
        }
    }
    ctxs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two models shown the same stream predict identically on every
    /// context — ties between equal counts break by token id, never by
    /// hash-map iteration order.
    #[test]
    fn identically_observed_models_predict_identically(
        stream in prop::collection::vec(0u32..VOCAB as u32, 0..40),
        order in 1usize..5,
    ) {
        let mut a = NgramLm::new(order, VOCAB);
        let mut b = NgramLm::new(order, VOCAB);
        a.observe(&stream);
        b.observe(&stream);
        for ctx in probe_contexts(&stream, order) {
            prop_assert_eq!(a.predict(&ctx), b.predict(&ctx), "context {:?}", ctx);
        }
    }

    /// Backoff reaches unigrams: after any non-empty observation, every
    /// context — even one never seen — yields *some* prediction, and that
    /// prediction is a token that occurred in the observed stream.
    #[test]
    fn backoff_always_predicts_an_observed_token(
        stream in prop::collection::vec(0u32..VOCAB as u32, 1..40),
        context in prop::collection::vec(0u32..VOCAB as u32, 0..6),
        order in 1usize..5,
    ) {
        let mut lm = NgramLm::new(order, VOCAB);
        lm.observe(&stream);
        let t = lm.predict(&context);
        prop_assert!(t.is_some(), "non-empty observation must back off to a unigram");
        prop_assert!(
            stream.contains(&t.unwrap()),
            "predicted {:?} never observed in {:?}",
            t,
            stream
        );
    }

    /// An untrained model predicts nothing, whatever the context.
    #[test]
    fn untrained_model_predicts_nothing(
        context in prop::collection::vec(0u32..VOCAB as u32, 0..6),
        order in 1usize..5,
    ) {
        let lm = NgramLm::new(order, VOCAB);
        prop_assert_eq!(lm.predict(&context), None);
    }

    /// Chunked observation is equivalent to observing the concatenation:
    /// `observe(a ++ b)` and `observe(a)` + `observe_continuation(a, b)`
    /// agree on every context. This is what lets the online drafter report
    /// accepted tokens round by round without double-counting.
    #[test]
    fn observe_continuation_matches_whole_stream(
        a in prop::collection::vec(0u32..VOCAB as u32, 0..25),
        b in prop::collection::vec(0u32..VOCAB as u32, 0..25),
        split2 in 0usize..26,
        order in 1usize..5,
    ) {
        let whole: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        let mut reference = NgramLm::new(order, VOCAB);
        reference.observe(&whole);

        let mut chunked = NgramLm::new(order, VOCAB);
        chunked.observe(&a);
        chunked.observe_continuation(&a, &b);

        // A second, differently-placed split of the same stream.
        let cut = split2.min(whole.len());
        let mut chunked2 = NgramLm::new(order, VOCAB);
        chunked2.observe(&whole[..cut]);
        chunked2.observe_continuation(&whole[..cut], &whole[cut..]);

        for ctx in probe_contexts(&whole, order) {
            let want = reference.predict(&ctx);
            prop_assert_eq!(chunked.predict(&ctx), want, "context {:?}", ctx);
            prop_assert_eq!(chunked2.predict(&ctx), want, "context {:?}", ctx);
        }
    }
}
