//! Warm-cache decode must be invisible: any prompt mix, split point, and
//! eviction interleaving through the radix-tree prefix KV cache produces
//! output bit-identical to cold-cache `generate`/`generate_batch`.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use wisdom_model::{
    generate_batch, generate_batch_with, DecodeRequest, GenerationOptions, ModelConfig,
    PrefixKvCache, TransformerLm,
};
use wisdom_prng::Prng;

const VOCAB: usize = 20;
const CTX: usize = 12;

fn tiny_model() -> &'static TransformerLm {
    static MODEL: OnceLock<TransformerLm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = ModelConfig {
            vocab_size: VOCAB,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: CTX,
        };
        let mut rng = Prng::seed_from_u64(42);
        TransformerLm::new(cfg, &mut rng)
    })
}

fn greedy(max_new: usize) -> GenerationOptions {
    GenerationOptions {
        max_new_tokens: max_new,
        ..Default::default()
    }
}

fn request(prompt: &[u32], max_new: usize) -> DecodeRequest {
    DecodeRequest {
        prompt: prompt.to_vec(),
        stops: vec![0],
        opts: greedy(max_new),
        grammar: None,
    }
}

fn assert_bit_identical(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: logit {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn suffix_prefill_matches_full_prefill_at_every_split() {
    // prefill_continue over the suffix of a partially filled cache is the
    // primitive the prefix cache relies on: pin it against the one-pass
    // prefill for every split point.
    let model = tiny_model();
    let window: Vec<u32> = (0..CTX).map(|i| (i * 7 % VOCAB) as u32).collect();
    let (cache_full, logits_full) = model.prefill(&window);
    for split in 0..window.len() {
        let (mut cache, _) = model.prefill(&window[..split]);
        let logits = model.prefill_continue(&window[split..], &mut cache);
        assert_bit_identical(&logits, &logits_full, &format!("split={split}"));
        assert_eq!(cache.len(), cache_full.len(), "split={split}");
        // Continue decoding one token from both caches: identical logits
        // prove the cached K/V rows (not just the final logits) agree.
        let mut warm = cache;
        let mut cold = cache_full.clone();
        // Decode would overflow the window at full length; skip that edge.
        if window.len() < CTX {
            let a = model.step(3, window.len(), &mut warm);
            let b = model.step(3, window.len(), &mut cold);
            assert_bit_identical(&a, &b, &format!("step after split={split}"));
        }
    }
}

#[test]
fn warm_cache_generate_batch_matches_solo() {
    let model = tiny_model();
    let cache = Arc::new(PrefixKvCache::default());
    // A prompt family with heavy prefix sharing, plus outliers (empty
    // prompt, single token, full-window prompt).
    let base: Vec<u32> = vec![1, 2, 3, 4, 5];
    let mut prompts: Vec<Vec<u32>> = vec![Vec::new(), vec![9]];
    for suffix_len in 0..5 {
        let mut p = base.clone();
        p.extend((0..suffix_len).map(|j| ((j + 6) % VOCAB) as u32));
        prompts.push(p);
    }
    prompts.push((0..CTX as u32).map(|i| i % VOCAB as u32).collect());

    let requests: Vec<DecodeRequest> = prompts.iter().map(|p| request(p, 5)).collect();
    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| model.generate(p, &[0], &greedy(5)))
        .collect();
    // Round 1 populates the cache, round 2 runs almost fully warm; both
    // must match the cold path exactly.
    for round in 0..2 {
        let got = generate_batch_with(model, requests.clone(), 3, Some(Arc::clone(&cache)));
        assert_eq!(got, solo, "round {round}");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "shared prefixes must hit: {stats:?}");
    assert!(stats.hit_tokens > 0);
}

#[test]
fn forced_eviction_interleavings_preserve_agreement() {
    let model = tiny_model();
    // A budget of ~2 short windows: nearly every admission evicts, so
    // lookups constantly see partially-evicted trees mid-stream.
    let tiny_budget = 2 * CTX * 16 * 2 * 2 * 4;
    let cache = Arc::new(PrefixKvCache::with_budget(tiny_budget));
    let families: Vec<Vec<u32>> = (0..6u32)
        .flat_map(|f| {
            (0..3u32).map(move |s| {
                let mut p: Vec<u32> = vec![f % VOCAB as u32, (f + 1) % VOCAB as u32, 2, 3];
                p.extend([(s + 4) % VOCAB as u32, (s + 5) % VOCAB as u32]);
                p
            })
        })
        .collect();
    for p in &families {
        let warm = generate_batch_with(model, vec![request(p, 4)], 2, Some(Arc::clone(&cache)));
        let solo = model.generate(p, &[0], &greedy(4));
        assert_eq!(warm[0], solo, "prompt {p:?}");
    }
    // Replay the whole family set batched, against a tree already churned
    // by eviction.
    let requests: Vec<DecodeRequest> = families.iter().map(|p| request(p, 4)).collect();
    let solo = generate_batch(model, requests.clone(), 4);
    let warm = generate_batch_with(model, requests, 4, Some(Arc::clone(&cache)));
    assert_eq!(warm, solo);
    let stats = cache.stats();
    assert!(
        stats.evicted_segments > 0,
        "budget must force eviction: {stats:?}"
    );
    // All pins are dropped (every sequence retired): the budget holds.
    assert!(stats.bytes <= tiny_budget, "over budget: {stats:?}");
}

#[test]
fn truncated_prompts_rekey_by_window_not_by_prefix() {
    let model = tiny_model();
    let cache = Arc::new(PrefixKvCache::default());
    // max_new 4 → reserve 4 → the generation window is the last 8 tokens.
    let tail: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8];
    let mut long_a: Vec<u32> = vec![9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9];
    long_a.extend(&tail);
    let mut long_b: Vec<u32> = vec![7, 7, 7];
    long_b.extend(&tail);
    // A short prompt equal to long_a's *untruncated* head: its window is
    // itself, which must not alias long_a's cached (truncated) window.
    let head: Vec<u32> = long_a[..8].to_vec();

    for p in [&long_a, &long_b, &head, &long_a] {
        let warm = generate_batch_with(model, vec![request(p, 4)], 2, Some(Arc::clone(&cache)));
        assert_eq!(warm[0], model.generate(p, &[0], &greedy(4)), "prompt {p:?}");
    }
    // long_a and long_b share the same truncated window, so the second of
    // them (and the long_a replay) must have hit the cache.
    let stats = cache.stats();
    assert!(
        stats.hits >= 2,
        "shared truncated windows must hit: {stats:?}"
    );
}

#[test]
fn oversized_window_bypasses_stale_entries() {
    // The cache key is the truncated window itself, so a prompt that grows
    // past the context window naturally re-keys: its new window no longer
    // matches the old entry except where token runs truly coincide.
    let model = tiny_model();
    let cache = Arc::new(PrefixKvCache::default());
    let mut prompt: Vec<u32> = (0..6u32).collect();
    for extra in 0..10u32 {
        prompt.push((extra + 6) % VOCAB as u32);
        let warm = generate_batch_with(
            model,
            vec![request(&prompt, 4)],
            1,
            Some(Arc::clone(&cache)),
        );
        assert_eq!(
            warm[0],
            model.generate(&prompt, &[0], &greedy(4)),
            "len {}",
            prompt.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random prompt families with shared prefixes, random byte budgets
    /// (forcing random eviction interleavings), random batch caps: two
    /// warm rounds through one shared cache both match solo `generate`
    /// bit-for-bit, and the budget holds once every pin is dropped.
    #[test]
    fn prefix_families_agree_under_eviction(
        base in prop::collection::vec(0u32..VOCAB as u32, 0..CTX),
        suffixes in prop::collection::vec(
            prop::collection::vec(0u32..VOCAB as u32, 0..8),
            1..6,
        ),
        budget_kb in 1usize..48,
        max_batch in 1usize..5,
        max_new in 1usize..7,
    ) {
        let model = tiny_model();
        let budget = budget_kb * 1024;
        let cache = Arc::new(PrefixKvCache::with_budget(budget));
        let prompts: Vec<Vec<u32>> = suffixes
            .iter()
            .map(|s| {
                let mut p = base.clone();
                p.extend(s);
                p
            })
            .collect();
        let solo: Vec<Vec<u32>> = prompts
            .iter()
            .map(|p| model.generate(p, &[0], &greedy(max_new)))
            .collect();
        for round in 0..2 {
            let requests: Vec<DecodeRequest> =
                prompts.iter().map(|p| request(p, max_new)).collect();
            let got = generate_batch_with(
                model,
                requests,
                max_batch,
                Some(Arc::clone(&cache)),
            );
            prop_assert_eq!(&got, &solo, "round {}", round);
        }
        let stats = cache.stats();
        prop_assert!(
            stats.bytes <= budget,
            "tree over budget with no pins live: {:?}",
            stats
        );
    }
}
