//! Speculative decoding: a cheap draft proposer guesses several tokens
//! ahead, and the transformer verifies the whole guess in **one** batched
//! prefill pass instead of one sequential [`TransformerLm::step`] per token.
//!
//! The paper's deployment argument is latency — Ansible YAML is formulaic
//! enough (indentation, `name:` scaffolding, FQCN prefixes) that a trivial
//! n-gram model predicts long runs of the transformer's own output. Each
//! round works like this:
//!
//! 1. sample the next token from the current logits exactly as the plain
//!    greedy loop would;
//! 2. ask a [`Speculator`] for up to `k` draft tokens continuing the
//!    sequence;
//! 3. score `sampled ‖ draft` in one [`TransformerLm::prefill_continue_all`]
//!    call against the existing [`KvCache`] — `k + 1` positions for the
//!    price of one blocked matmul chain;
//! 4. accept the longest prefix of the draft on which the verifier's argmax
//!    agrees, take the logits at the last verified position for free (the
//!    "bonus" distribution the next round samples from without another
//!    forward pass), and roll the cache back past the rejected tokens with
//!    [`KvCache::truncate`].
//!
//! Because only tokens the verifier itself would have produced are ever
//! emitted, greedy speculative output is **bit-for-bit identical** to plain
//! greedy [`TransformerLm::generate`] at any draft quality — a bad
//! speculator costs speed, never correctness
//! (`tests/speculative_agreement.rs` pins this, including through the
//! continuous-batching engine and the prefix cache).
//!
//! Draft length adapts per sequence: `k` grows back toward
//! [`SpeculativeConfig::max_draft`] while drafts are fully accepted and
//! halves when a whole draft is rejected, and the batched engine skips
//! speculation entirely once the live batch outgrows
//! [`SpeculativeConfig::max_draft_batch`] — dense batches already amortize
//! their forward passes across sequences, so they degrade gracefully to
//! plain batched decoding.

use std::sync::Arc;
use std::time::Instant;

use wisdom_grammar::{GrammarCursor, GrammarIndex};

use crate::decode::{GenerationOptions, Strategy};
use crate::ngram::NgramLm;
use crate::telemetry::GrammarTelemetry;
use crate::transformer::{argmax, mask_logits, KvCache, TransformerLm};

/// Which draft proposer speculative decoding uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DraftKind {
    /// [`NgramSpeculator`]: a stupid-backoff [`NgramLm`] of the given order,
    /// warmed on the prompt window at admission and — when `online` —
    /// updated from every accepted token, so the draft distribution tracks
    /// what the verifier actually emits.
    Ngram {
        /// N-gram order (3 = trigram).
        order: usize,
        /// Keep learning from accepted output during decoding.
        online: bool,
    },
    /// [`SelfDraftSpeculator`]: suffix lookup over the prompt plus the
    /// generated tokens themselves — zero training, exploits the heavy
    /// self-repetition of structured output.
    SelfDraft {
        /// Shortest trailing match worth proposing from.
        min_match: usize,
        /// Longest trailing match attempted first.
        max_match: usize,
    },
}

/// Speculation sizing. `Copy` so it rides inside
/// [`BatchConfig`](crate::BatchConfig) and the server's config verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculativeConfig {
    /// Maximum draft tokens proposed per verify pass; `0` disables
    /// speculation entirely (the batched engine then never builds a
    /// drafter, leaving the plain decode path untouched).
    pub max_draft: usize,
    /// The draft proposer to build per sequence.
    pub draft: DraftKind,
    /// Largest live batch that still speculates. Above this, every sequence
    /// takes the plain batched step: per-sequence verify passes stop paying
    /// off once the batched matmul is already amortizing weights across
    /// many rows.
    pub max_draft_batch: usize,
}

impl SpeculativeConfig {
    /// Speculation off: [`Default`] for batch and server configs.
    pub fn disabled() -> Self {
        Self {
            max_draft: 0,
            draft: DraftKind::SelfDraft {
                min_match: 2,
                max_match: 4,
            },
            max_draft_batch: 4,
        }
    }

    /// N-gram drafting (order 4, online adaptation) with up to `max_draft`
    /// tokens per verify pass.
    pub fn ngram(max_draft: usize) -> Self {
        Self {
            max_draft,
            draft: DraftKind::Ngram {
                order: 4,
                online: true,
            },
            max_draft_batch: 4,
        }
    }

    /// Self-drafting (match lengths 2..=4) with up to `max_draft` tokens
    /// per verify pass.
    pub fn self_draft(max_draft: usize) -> Self {
        Self {
            max_draft,
            draft: DraftKind::SelfDraft {
                min_match: 2,
                max_match: 4,
            },
            max_draft_batch: 4,
        }
    }

    /// Whether speculation is on at all.
    pub fn enabled(&self) -> bool {
        self.max_draft > 0
    }

    /// Stable label for stats/metrics: `"ngram"`, `"self-draft"`, or
    /// `"off"` when disabled.
    pub fn draft_label(&self) -> &'static str {
        if !self.enabled() {
            return "off";
        }
        match self.draft {
            DraftKind::Ngram { .. } => "ngram",
            DraftKind::SelfDraft { .. } => "self-draft",
        }
    }

    /// Builds the per-sequence draft proposer this config describes,
    /// warming an n-gram drafter on `warm` (the sequence's prompt window).
    pub fn build_speculator(&self, vocab_size: usize, warm: &[u32]) -> Box<dyn Speculator> {
        match self.draft {
            DraftKind::Ngram { order, online } => {
                let mut s = NgramSpeculator::new(order.max(1), vocab_size, online);
                s.warm(warm);
                Box::new(s)
            }
            DraftKind::SelfDraft {
                min_match,
                max_match,
            } => Box::new(SelfDraftSpeculator::new(min_match, max_match)),
        }
    }
}

impl Default for SpeculativeConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A draft proposer. Implementations are cheap next-token guessers — their
/// proposals are only ever *verified*, never trusted, so a wrong draft
/// costs a shorter accepted prefix, not a wrong output.
pub trait Speculator: Send {
    /// Stable name for metrics/stats.
    fn name(&self) -> &'static str;

    /// Proposes up to `k` tokens continuing `context` (prompt window plus
    /// everything generated so far). Fewer than `k` — or none — is fine.
    fn draft(&self, context: &[u32], k: usize) -> Vec<u32>;

    /// Online-adaptation hook: `new` tokens were emitted as a continuation
    /// of `context` (each emitted token is reported exactly once). The
    /// default implementation ignores it.
    fn observe(&mut self, _context: &[u32], _new: &[u32]) {}
}

/// Draft proposer backed by a stupid-backoff [`NgramLm`].
///
/// Warm it on a corpus ([`Self::warm`], or wrap an already-trained model
/// with [`Self::from_lm`]); with `online` set it also keeps counting every
/// token the verifier accepts, so formulaic continuations become
/// predictable after a single sighting.
#[derive(Debug, Clone)]
pub struct NgramSpeculator {
    lm: NgramLm,
    online: bool,
}

impl NgramSpeculator {
    /// An empty n-gram drafter of the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` (see [`NgramLm::new`]).
    pub fn new(order: usize, vocab_size: usize, online: bool) -> Self {
        Self {
            lm: NgramLm::new(order, vocab_size),
            online,
        }
    }

    /// Wraps an already-trained n-gram model (e.g. corpus-warmed).
    pub fn from_lm(lm: NgramLm, online: bool) -> Self {
        Self { lm, online }
    }

    /// Accumulates counts from `tokens` (corpus or prompt warm-up).
    pub fn warm(&mut self, tokens: &[u32]) {
        self.lm.observe(tokens);
    }

    /// The wrapped n-gram model.
    pub fn lm(&self) -> &NgramLm {
        &self.lm
    }
}

impl Speculator for NgramSpeculator {
    fn name(&self) -> &'static str {
        "ngram"
    }

    fn draft(&self, context: &[u32], k: usize) -> Vec<u32> {
        // Only the trailing `order - 1` tokens matter for prediction; carry
        // a short tail instead of cloning the whole context.
        let tail = context.len().saturating_sub(self.lm.order());
        let mut ctx = context[tail..].to_vec();
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let Some(t) = self.lm.predict(&ctx) else {
                break;
            };
            out.push(t);
            ctx.push(t);
        }
        out
    }

    fn observe(&mut self, context: &[u32], new: &[u32]) {
        if self.online {
            self.lm.observe_continuation(context, new);
        }
    }
}

/// Zero-training draft proposer: looks the sequence's own trailing tokens
/// up *in the sequence itself* (prompt plus generated suffix) and proposes
/// whatever followed the most recent earlier occurrence.
///
/// Longest match first: the trailing `max_match`-gram is searched, then
/// progressively shorter tails down to `min_match`. Structured output
/// (YAML keys, repeated scaffolding) makes this surprisingly effective for
/// something that holds no state at all.
#[derive(Debug, Clone, Copy)]
pub struct SelfDraftSpeculator {
    min_match: usize,
    max_match: usize,
}

impl SelfDraftSpeculator {
    /// Matching tail lengths to attempt, longest first. Both bounds are
    /// clamped to at least 1 and ordered.
    pub fn new(min_match: usize, max_match: usize) -> Self {
        let min_match = min_match.max(1);
        Self {
            min_match,
            max_match: max_match.max(min_match),
        }
    }
}

impl Speculator for SelfDraftSpeculator {
    fn name(&self) -> &'static str {
        "self-draft"
    }

    fn draft(&self, context: &[u32], k: usize) -> Vec<u32> {
        let len = context.len();
        for m in (self.min_match..=self.max_match).rev() {
            if len < m + 1 {
                continue;
            }
            let pattern = &context[len - m..];
            // Most recent earlier occurrence wins; the trailing occurrence
            // itself (start `len - m`) is excluded.
            for i in (0..len - m).rev() {
                if &context[i..i + m] == pattern {
                    let follow = &context[i + m..(i + m + k).min(len)];
                    if !follow.is_empty() {
                        return follow.to_vec();
                    }
                }
            }
        }
        Vec::new()
    }
}

/// Counters from one speculative generation (the solo-path mirror of
/// [`SpeculativeTelemetry`](crate::SpeculativeTelemetry)).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpeculativeReport {
    /// Draft tokens proposed across all verify passes.
    pub proposed: u64,
    /// Draft tokens accepted (the verifier agreed).
    pub accepted: u64,
    /// Draft tokens rejected (or dropped at a stop token).
    pub rejected: u64,
    /// Batched verify passes run.
    pub verify_passes: u64,
    /// Plain single-token steps taken when no draft was available.
    pub fallback_steps: u64,
    /// Wall-clock seconds spent inside [`Speculator::draft`].
    pub draft_seconds: f64,
}

impl SpeculativeReport {
    /// Mean accepted draft tokens per verify pass — the headline
    /// speculation metric (each pass also yields one normally-sampled
    /// token, so end-to-end tokens per forward pass is this plus one).
    pub fn accepted_per_verify(&self) -> f64 {
        if self.verify_passes == 0 {
            return 0.0;
        }
        self.accepted as f64 / self.verify_passes as f64
    }
}

/// Outcome of one draft verification against the model.
pub(crate) struct Verified {
    /// The accepted draft prefix (tokens the verifier's argmax agreed on).
    pub accepted: Vec<u32>,
    /// Logits following the last accepted token — the distribution the
    /// next round samples from, obtained without another forward pass.
    pub logits: Vec<f32>,
    /// The greedy continuation agreed with a draft token that is a stop
    /// token: the sequence is finished (the stop is not emitted).
    pub stopped: bool,
}

/// Scores `first ‖ draft` in one batched pass on top of `cache` (which must
/// hold exactly `pos` positions), accepts the longest greedy-agreeing draft
/// prefix, and truncates the cache back past the rejected tokens.
///
/// On return the cache holds `pos + 1 + accepted.len()` positions — exactly
/// the state sequential greedy decoding would have reached after emitting
/// `first` and the accepted tokens — and `logits` is bit-identical to the
/// logits that sequential path would be holding.
///
/// When `grammar` is supplied (a cursor already advanced past `first`), each
/// verify row is masked before its argmax — the same mask the sequential
/// constrained loop would apply at that position — and the cursor is
/// advanced past every accepted token, so constrained speculative output
/// stays bit-identical to constrained sequential greedy. The bonus row is
/// returned unmasked; the caller's next pick masks it with the cursor in
/// exactly this post-verify state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_draft(
    model: &TransformerLm,
    cache: &mut KvCache,
    pos: usize,
    first: u32,
    draft: &[u32],
    stops: &[u32],
    mut grammar: Option<&mut GrammarCursor>,
    grammar_telemetry: Option<&GrammarTelemetry>,
) -> Verified {
    debug_assert_eq!(cache.len(), pos);
    let mut suffix = Vec::with_capacity(draft.len() + 1);
    suffix.push(first);
    suffix.extend_from_slice(draft);
    let mut rows = model.prefill_continue_all(&suffix, cache);
    let mut accepted = Vec::new();
    let mut stopped = false;
    for (i, &d) in draft.iter().enumerate() {
        // Row `i` holds the logits after suffix token `i` — the plain loop
        // in the same state would sample exactly this (masked) argmax next.
        let forced = mask_logits(grammar.as_deref(), &mut rows[i], grammar_telemetry);
        let t = forced.unwrap_or_else(|| argmax(&rows[i]));
        if t != d {
            break;
        }
        if stops.contains(&t) {
            stopped = true;
            break;
        }
        accepted.push(t);
        if let Some(g) = grammar.as_deref_mut() {
            g.advance(t);
        }
    }
    cache.truncate(pos + 1 + accepted.len());
    let logits = std::mem::take(&mut rows[accepted.len()]);
    Verified {
        accepted,
        logits,
        stopped,
    }
}

/// Grows/backs off the per-sequence draft length: a fully accepted draft
/// earns one more token (up to `max_draft`), a fully rejected one halves
/// it (never below 1 — the 2-row verify pass costs about the same as the
/// single step it replaces).
pub(crate) fn adapt_draft_len(
    k_now: usize,
    proposed: usize,
    accepted: usize,
    max_draft: usize,
) -> usize {
    if proposed == 0 {
        return k_now;
    }
    if accepted == proposed {
        (k_now + 1).min(max_draft)
    } else if accepted == 0 {
        (k_now / 2).max(1)
    } else {
        k_now
    }
}

/// Greedy speculative generation over a single sequence.
///
/// Output is bit-for-bit identical to [`TransformerLm::generate`] with the
/// same arguments; non-greedy strategies (and a disabled config) delegate
/// to it outright.
///
/// # Examples
///
/// ```
/// use wisdom_model::{
///     GenerationOptions, ModelConfig, SpeculativeConfig, SpeculativeDecoder, TransformerLm,
/// };
/// use wisdom_prng::Prng;
///
/// let cfg = ModelConfig { vocab_size: 32, d_model: 16, n_layers: 1, n_heads: 2, context_window: 24 };
/// let model = TransformerLm::new(cfg, &mut Prng::seed_from_u64(7));
/// let opts = GenerationOptions { max_new_tokens: 8, ..Default::default() };
///
/// let decoder = SpeculativeDecoder::new(&model, SpeculativeConfig::self_draft(4));
/// let (out, report) = decoder.generate_with_report(&[1, 2, 3, 1, 2, 3], &[0], &opts);
/// // Speculation never changes tokens — only how many forward passes they cost.
/// assert_eq!(out, model.generate(&[1, 2, 3, 1, 2, 3], &[0], &opts));
/// assert_eq!(report.accepted + report.rejected, report.proposed);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpeculativeDecoder<'m> {
    model: &'m TransformerLm,
    cfg: SpeculativeConfig,
}

impl<'m> SpeculativeDecoder<'m> {
    /// A decoder over `model` with the given speculation sizing.
    pub fn new(model: &'m TransformerLm, cfg: SpeculativeConfig) -> Self {
        Self { model, cfg }
    }

    /// The speculation sizing.
    pub fn config(&self) -> SpeculativeConfig {
        self.cfg
    }

    /// Generates like [`TransformerLm::generate`], speculating on greedy
    /// requests. See [`Self::generate_with_report`] for the counters.
    pub fn generate(&self, prompt: &[u32], stops: &[u32], opts: &GenerationOptions) -> Vec<u32> {
        self.generate_with_report(prompt, stops, opts).0
    }

    /// [`Self::generate`] returning the speculation counters alongside the
    /// tokens. The drafter is built from the config and warmed on the
    /// prompt window; use [`Self::generate_with`] to supply a
    /// corpus-warmed one instead.
    pub fn generate_with_report(
        &self,
        prompt: &[u32],
        stops: &[u32],
        opts: &GenerationOptions,
    ) -> (Vec<u32>, SpeculativeReport) {
        self.generate_constrained(prompt, stops, opts, None, None)
    }

    /// [`Self::generate_with_report`] under an optional grammar constraint:
    /// the same masks the sequential constrained loop applies gate both the
    /// emitted token and every verify-row argmax, drafts are pre-truncated
    /// to their grammar-legal prefix, and the output is bit-identical to
    /// [`TransformerLm::generate_constrained`] with the same arguments.
    pub fn generate_constrained(
        &self,
        prompt: &[u32],
        stops: &[u32],
        opts: &GenerationOptions,
        grammar: Option<&Arc<GrammarIndex>>,
        grammar_telemetry: Option<&GrammarTelemetry>,
    ) -> (Vec<u32>, SpeculativeReport) {
        if !self.speculates(opts) {
            return (
                self.model
                    .generate_constrained(prompt, stops, opts, grammar, grammar_telemetry),
                SpeculativeReport::default(),
            );
        }
        let window = self.model.generation_window(prompt, opts.max_new_tokens);
        let mut speculator = self
            .cfg
            .build_speculator(self.model.config().vocab_size, window);
        self.generate_constrained_with(
            prompt,
            stops,
            opts,
            speculator.as_mut(),
            grammar,
            grammar_telemetry,
        )
    }

    /// [`Self::generate_with_report`] with a caller-supplied (typically
    /// corpus-warmed) drafter.
    pub fn generate_with(
        &self,
        prompt: &[u32],
        stops: &[u32],
        opts: &GenerationOptions,
        speculator: &mut dyn Speculator,
    ) -> (Vec<u32>, SpeculativeReport) {
        self.generate_constrained_with(prompt, stops, opts, speculator, None, None)
    }

    /// [`Self::generate_constrained`] with a caller-supplied drafter.
    pub fn generate_constrained_with(
        &self,
        prompt: &[u32],
        stops: &[u32],
        opts: &GenerationOptions,
        speculator: &mut dyn Speculator,
        grammar: Option<&Arc<GrammarIndex>>,
        grammar_telemetry: Option<&GrammarTelemetry>,
    ) -> (Vec<u32>, SpeculativeReport) {
        if !self.speculates(opts) {
            return (
                self.model
                    .generate_constrained(prompt, stops, opts, grammar, grammar_telemetry),
                SpeculativeReport::default(),
            );
        }
        let model = self.model;
        let ctx = model.config().context_window;
        let window = model.generation_window(prompt, opts.max_new_tokens);
        let (mut cache, mut logits) = model.prefill(window);
        let mut pos = window.len();
        let mut cursor = grammar.map(|g| {
            GrammarCursor::new(
                Arc::clone(g),
                window,
                opts.max_new_tokens.min(ctx.saturating_sub(pos)),
            )
        });
        let mut history = window.to_vec();
        // Tokens up to this index were already reported to the drafter.
        let mut seen = history.len();
        let mut out = Vec::new();
        let mut k_now = self.cfg.max_draft;
        let mut report = SpeculativeReport::default();

        while out.len() < opts.max_new_tokens && pos < ctx {
            // Identical to the constrained greedy loop: mask, pick,
            // stop-check, emit.
            let forced = mask_logits(cursor.as_ref(), &mut logits, grammar_telemetry);
            let next = forced.unwrap_or_else(|| argmax(&logits));
            if stops.contains(&next) {
                break;
            }
            if let Some(c) = cursor.as_mut() {
                c.advance(next);
            }
            out.push(next);
            history.push(next);
            if out.len() >= opts.max_new_tokens || pos + 1 >= ctx {
                // The plain loop would run one final step whose logits are
                // never consumed; skipping it keeps the output identical.
                break;
            }
            // Draft length is clamped to what the budget and the context
            // window can still absorb.
            let k = k_now
                .min(opts.max_new_tokens - out.len())
                .min(ctx - (pos + 1));
            let draft_start = Instant::now();
            let mut draft = speculator.draft(&history, k);
            draft.truncate(k);
            // Constrained drafting: drop everything past the first token the
            // grammar mask would reject, so verify rows are never wasted on
            // tokens the constrained pick could not choose anyway.
            if let Some(c) = &cursor {
                if c.is_active() {
                    draft.truncate(c.legal_prefix_len(&draft));
                }
            }
            report.draft_seconds += draft_start.elapsed().as_secs_f64();
            if draft.is_empty() {
                report.fallback_steps += 1;
                logits = model.step(next, pos, &mut cache);
                pos += 1;
            } else {
                report.verify_passes += 1;
                report.proposed += draft.len() as u64;
                let v = verify_draft(
                    model,
                    &mut cache,
                    pos,
                    next,
                    &draft,
                    stops,
                    cursor.as_mut(),
                    grammar_telemetry,
                );
                report.accepted += v.accepted.len() as u64;
                report.rejected += (draft.len() - v.accepted.len()) as u64;
                k_now = adapt_draft_len(k_now, draft.len(), v.accepted.len(), self.cfg.max_draft);
                out.extend_from_slice(&v.accepted);
                history.extend_from_slice(&v.accepted);
                pos += 1 + v.accepted.len();
                logits = v.logits;
                if v.stopped {
                    break;
                }
            }
            // Report this round's emitted tokens to the drafter exactly once.
            let (ctx_part, new_part) = history.split_at(seen);
            speculator.observe(ctx_part, new_part);
            seen = history.len();
        }
        (out, report)
    }

    fn speculates(&self, opts: &GenerationOptions) -> bool {
        self.cfg.enabled() && matches!(opts.strategy, Strategy::Greedy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use wisdom_prng::Prng;
    use wisdom_tensor::{Adam, AdamConfig};

    fn tiny_model(seed: u64) -> TransformerLm {
        let cfg = ModelConfig {
            vocab_size: 20,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: 24,
        };
        TransformerLm::new(cfg, &mut Prng::seed_from_u64(seed))
    }

    fn greedy(max_new: usize) -> GenerationOptions {
        GenerationOptions {
            max_new_tokens: max_new,
            ..Default::default()
        }
    }

    #[test]
    fn self_draft_finds_recent_repetition() {
        let s = SelfDraftSpeculator::new(2, 4);
        // ... 1 2 3 4 ... 1 2 -> proposes 3 4 (after the earlier "1 2").
        assert_eq!(s.draft(&[9, 1, 2, 3, 4, 7, 1, 2], 2), vec![3, 4]);
        // No repetition: nothing proposed.
        assert!(s.draft(&[1, 2, 3, 4, 5], 3).is_empty());
        // Proposal is capped at the end of the context (and may run into
        // the trailing occurrence itself — the cycle continues through it).
        assert_eq!(s.draft(&[5, 6, 7, 5, 6], 8), vec![7, 5, 6]);
    }

    #[test]
    fn ngram_speculator_chains_predictions_and_learns_online() {
        let mut s = NgramSpeculator::new(3, 20, true);
        s.warm(&[1, 2, 3, 4, 1, 2, 3, 4]);
        assert_eq!(s.draft(&[1, 2], 3), vec![3, 4, 1]);
        // Online observation extends what it can draft.
        s.observe(&[1, 2, 3, 4], &[15, 16, 17]);
        assert_eq!(s.draft(&[4, 15], 2), vec![16, 17]);
        // Offline drafter ignores the hook.
        let mut frozen = NgramSpeculator::new(3, 20, false);
        frozen.observe(&[1, 2, 3], &[7, 7, 7]);
        assert_eq!(frozen.lm().predict(&[3]), None);
        assert!(frozen.draft(&[1, 2, 3], 4).is_empty());
    }

    #[test]
    fn dynamic_draft_len_grows_and_backs_off() {
        // Full acceptance grows toward the cap.
        assert_eq!(adapt_draft_len(3, 3, 3, 8), 4);
        assert_eq!(adapt_draft_len(8, 8, 8, 8), 8);
        // Total rejection halves, bottoming out at 1.
        assert_eq!(adapt_draft_len(8, 8, 0, 8), 4);
        assert_eq!(adapt_draft_len(1, 1, 0, 8), 1);
        // Partial acceptance holds steady; empty proposals change nothing.
        assert_eq!(adapt_draft_len(5, 5, 2, 8), 5);
        assert_eq!(adapt_draft_len(5, 0, 0, 8), 5);
    }

    #[test]
    fn speculative_greedy_is_bit_identical_to_plain_generate() {
        let model = tiny_model(42);
        let prompts: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 1, 2, 3, 1, 2],
            vec![5],
            vec![],
            (0..40).map(|i| (i % 13) as u32).collect(),
        ];
        for cfg in [
            SpeculativeConfig::ngram(4),
            SpeculativeConfig::self_draft(3),
            SpeculativeConfig::disabled(),
        ] {
            let dec = SpeculativeDecoder::new(&model, cfg);
            for p in &prompts {
                for max_new in [0, 1, 5, 16] {
                    let plain = model.generate(p, &[0], &greedy(max_new));
                    let (spec, _) = dec.generate_with_report(p, &[0], &greedy(max_new));
                    assert_eq!(spec, plain, "cfg {cfg:?} prompt {p:?} max_new {max_new}");
                }
            }
        }
    }

    #[test]
    fn memorized_model_accepts_more_than_one_token_per_verify() {
        // Train until the model reproduces the cycle, then warm the drafter
        // on the same pattern: every draft should verify in full.
        let mut model = tiny_model(3);
        let mut adam = Adam::new(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        });
        let tokens: Vec<u32> = vec![5, 6, 7, 8, 5, 6, 7, 8];
        let targets: Vec<usize> = vec![6, 7, 8, 5, 6, 7, 8, 5];
        for _ in 0..150 {
            model.train_step(&tokens, &targets, 1, 8, &mut adam, 1.0);
        }
        let dec = SpeculativeDecoder::new(&model, SpeculativeConfig::ngram(4));
        let (out, report) = dec.generate_with_report(&[5, 6, 7, 8], &[0], &greedy(12));
        assert_eq!(out, model.generate(&[5, 6, 7, 8], &[0], &greedy(12)));
        assert!(
            report.accepted_per_verify() > 1.0,
            "memorized cycle should speculate well: {report:?}"
        );
        assert_eq!(report.accepted + report.rejected, report.proposed);
    }

    #[test]
    fn non_greedy_strategies_delegate_to_plain_generate() {
        let model = tiny_model(9);
        let opts = GenerationOptions {
            max_new_tokens: 6,
            strategy: Strategy::TopK {
                k: 5,
                temperature: 1.0,
            },
            seed: 11,
        };
        let dec = SpeculativeDecoder::new(&model, SpeculativeConfig::ngram(4));
        let (out, report) = dec.generate_with_report(&[1, 2, 3], &[0], &opts);
        assert_eq!(out, model.generate(&[1, 2, 3], &[0], &opts));
        assert_eq!(report, SpeculativeReport::default());
    }
}
