//! Metric handle bundles for the decode path.
//!
//! The serving stack owns one [`wisdom_telemetry::Registry`]; these bundles
//! are the pre-resolved `Arc` handles the hot path records into, so a decode
//! step never touches the registry lock. Both bundles are optional
//! everywhere they are accepted — the uninstrumented path stays exactly as
//! fast as before (`wisdom-eval`'s `-- telemetry` experiment measures the
//! instrumented/plain gap and pins it under 1%).

use std::sync::Arc;

use wisdom_telemetry::{Counter, Gauge, Histogram, Registry};

/// Handles for the continuous-batching scheduler and decode engine.
/// Cloning shares the underlying metrics.
#[derive(Debug, Clone)]
pub struct BatchTelemetry {
    /// `wisdom_queue_wait_seconds` — submission to admission into the batch.
    pub queue_wait: Arc<Histogram>,
    /// `wisdom_ttft_seconds` — submission to first generated token.
    pub ttft: Arc<Histogram>,
    /// `wisdom_decode_token_seconds` — one batched decode round (the
    /// inter-token latency every live request experiences that round).
    pub token_latency: Arc<Histogram>,
    /// `wisdom_batch_occupancy` — sequences currently decoding together.
    pub batch_occupancy: Arc<Gauge>,
    /// `wisdom_queue_depth` — requests waiting in the submission queue.
    pub queue_depth: Arc<Gauge>,
    /// `wisdom_requests_admitted_total` — requests admitted into the batch.
    pub admitted: Arc<Counter>,
    /// `wisdom_requests_completed_total` — sequences decoded to completion.
    pub completed: Arc<Counter>,
    /// `wisdom_requests_shed_total` — submissions rejected with a full queue.
    pub shed: Arc<Counter>,
    /// `wisdom_scheduler_wakeups_total` — decode-worker condvar wakeups.
    pub wakeups: Arc<Counter>,
}

impl BatchTelemetry {
    /// Registers (or re-resolves) the scheduler metric family in `registry`.
    pub fn register(registry: &Registry) -> BatchTelemetry {
        Self::register_labeled(registry, &[])
    }

    /// [`Self::register`] with a label set on every series — the
    /// multi-replica pool registers one bundle per replica with
    /// `[("replica", "<i>")]`, so the same family names carry per-replica
    /// series side by side.
    pub fn register_labeled(registry: &Registry, labels: &[(&str, &str)]) -> BatchTelemetry {
        let buckets = Histogram::latency_buckets();
        BatchTelemetry {
            queue_wait: registry.histogram_with(
                "wisdom_queue_wait_seconds",
                "Time from request submission to admission into the decode batch.",
                labels,
                &buckets,
            ),
            ttft: registry.histogram_with(
                "wisdom_ttft_seconds",
                "Time from request submission to the first generated token.",
                labels,
                &buckets,
            ),
            token_latency: registry.histogram_with(
                "wisdom_decode_token_seconds",
                "Duration of one batched decode round (per-token latency).",
                labels,
                &buckets,
            ),
            batch_occupancy: registry.gauge_with(
                "wisdom_batch_occupancy",
                "Sequences currently being decoded together.",
                labels,
            ),
            queue_depth: registry.gauge_with(
                "wisdom_queue_depth",
                "Requests waiting in the bounded submission queue.",
                labels,
            ),
            admitted: registry.counter_with(
                "wisdom_requests_admitted_total",
                "Requests admitted into the decode batch.",
                labels,
            ),
            completed: registry.counter_with(
                "wisdom_requests_completed_total",
                "Requests decoded to completion.",
                labels,
            ),
            shed: registry.counter_with(
                "wisdom_requests_shed_total",
                "Submissions rejected because the queue was full.",
                labels,
            ),
            wakeups: registry.counter_with(
                "wisdom_scheduler_wakeups_total",
                "Decode-worker condvar wakeups.",
                labels,
            ),
        }
    }
}

/// Handles for the shared prefix KV cache. Counters mirror the cache's
/// internal [`crate::PrefixCacheStats`]; gauges are republished after every
/// insert/eviction pass under the cache lock.
#[derive(Debug, Clone)]
pub struct PrefixCacheTelemetry {
    /// `wisdom_prefix_cache_hits_total`.
    pub hits: Arc<Counter>,
    /// `wisdom_prefix_cache_misses_total`.
    pub misses: Arc<Counter>,
    /// `wisdom_prefix_cache_hit_tokens_total`.
    pub hit_tokens: Arc<Counter>,
    /// `wisdom_prefix_cache_evicted_segments_total`.
    pub evicted_segments: Arc<Counter>,
    /// `wisdom_prefix_cache_bytes` — bytes currently owned by the tree.
    pub bytes: Arc<Gauge>,
    /// `wisdom_prefix_cache_segments` — segments currently in the tree.
    pub segments: Arc<Gauge>,
    /// `wisdom_prefix_cache_pinned_bytes` — bytes pinned by in-flight
    /// sequences (eviction-exempt).
    pub pinned_bytes: Arc<Gauge>,
    /// `wisdom_prefix_cache_budget_bytes` — the configured byte budget.
    pub budget_bytes: Arc<Gauge>,
}

impl PrefixCacheTelemetry {
    /// Registers (or re-resolves) the prefix-cache metric family in
    /// `registry`.
    pub fn register(registry: &Registry) -> PrefixCacheTelemetry {
        Self::register_labeled(registry, &[])
    }

    /// [`Self::register`] with a label set on every series (per-replica
    /// caches label with `[("replica", "<i>")]`).
    pub fn register_labeled(registry: &Registry, labels: &[(&str, &str)]) -> PrefixCacheTelemetry {
        PrefixCacheTelemetry {
            hits: registry.counter_with(
                "wisdom_prefix_cache_hits_total",
                "Prefix-cache lookups that matched at least one token.",
                labels,
            ),
            misses: registry.counter_with(
                "wisdom_prefix_cache_misses_total",
                "Prefix-cache lookups that matched nothing.",
                labels,
            ),
            hit_tokens: registry.counter_with(
                "wisdom_prefix_cache_hit_tokens_total",
                "Prompt tokens served from the prefix cache instead of recomputed.",
                labels,
            ),
            evicted_segments: registry.counter_with(
                "wisdom_prefix_cache_evicted_segments_total",
                "Prefix-cache segments discarded by LRU eviction.",
                labels,
            ),
            bytes: registry.gauge_with(
                "wisdom_prefix_cache_bytes",
                "Bytes currently owned by the prefix-cache tree.",
                labels,
            ),
            segments: registry.gauge_with(
                "wisdom_prefix_cache_segments",
                "Segments currently in the prefix-cache tree.",
                labels,
            ),
            pinned_bytes: registry.gauge_with(
                "wisdom_prefix_cache_pinned_bytes",
                "Prefix-cache bytes pinned by in-flight sequences.",
                labels,
            ),
            budget_bytes: registry.gauge_with(
                "wisdom_prefix_cache_budget_bytes",
                "Configured prefix-cache byte budget.",
                labels,
            ),
        }
    }
}

/// Handles for the speculative-decoding path
/// ([`crate::SpeculativeDecoder`] / the batched engine's verify rounds).
/// Counters mirror the solo path's [`crate::SpeculativeReport`].
#[derive(Debug, Clone)]
pub struct SpeculativeTelemetry {
    /// `wisdom_speculative_proposed_tokens_total` — draft tokens proposed.
    pub proposed: Arc<Counter>,
    /// `wisdom_speculative_accepted_tokens_total` — draft tokens the
    /// verifier agreed with (each saved one sequential decode step).
    pub accepted: Arc<Counter>,
    /// `wisdom_speculative_rejected_tokens_total` — draft tokens rolled
    /// back out of the KV cache.
    pub rejected: Arc<Counter>,
    /// `wisdom_speculative_verify_passes_total` — batched verify passes.
    pub verify_passes: Arc<Counter>,
    /// `wisdom_speculative_acceptance_length` — accepted draft tokens per
    /// verify pass (0 = the whole draft was rejected).
    pub acceptance_length: Arc<Histogram>,
    /// `wisdom_speculative_draft_seconds` — time spent inside the draft
    /// proposer, per round (the overhead speculation adds even when
    /// nothing is accepted).
    pub draft_overhead: Arc<Histogram>,
}

impl SpeculativeTelemetry {
    /// Registers (or re-resolves) the speculative-decoding metric family
    /// in `registry`.
    pub fn register(registry: &Registry) -> SpeculativeTelemetry {
        Self::register_labeled(registry, &[])
    }

    /// [`Self::register`] with a label set on every series (per-replica
    /// speculation labels with `[("replica", "<i>")]`).
    pub fn register_labeled(registry: &Registry, labels: &[(&str, &str)]) -> SpeculativeTelemetry {
        let length_buckets = [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0];
        SpeculativeTelemetry {
            proposed: registry.counter_with(
                "wisdom_speculative_proposed_tokens_total",
                "Draft tokens proposed to the verifier.",
                labels,
            ),
            accepted: registry.counter_with(
                "wisdom_speculative_accepted_tokens_total",
                "Draft tokens accepted by the verifier.",
                labels,
            ),
            rejected: registry.counter_with(
                "wisdom_speculative_rejected_tokens_total",
                "Draft tokens rejected and rolled back.",
                labels,
            ),
            verify_passes: registry.counter_with(
                "wisdom_speculative_verify_passes_total",
                "Batched draft-verification passes run.",
                labels,
            ),
            acceptance_length: registry.histogram_with(
                "wisdom_speculative_acceptance_length",
                "Accepted draft tokens per verify pass.",
                labels,
                &length_buckets,
            ),
            draft_overhead: registry.histogram_with(
                "wisdom_speculative_draft_seconds",
                "Time spent proposing drafts, per decode round.",
                labels,
                &Histogram::latency_buckets(),
            ),
        }
    }
}

/// Handles for the weight-quantization path ([`crate::Precision`]).
///
/// The gauges are published once when a scheduler converts its model; the
/// counters tick on every projection matmul, splitting decode work between
/// the quantized and f32 kernels (the quantized-matmul share).
#[derive(Debug, Clone)]
pub struct QuantTelemetry {
    /// `wisdom_quant_weight_bytes` — packed int8 weight bytes resident
    /// (values + per-block scales/offsets).
    pub weight_bytes: Arc<Gauge>,
    /// `wisdom_quant_weight_bytes_saved` — f32 weight bytes the packing
    /// replaced, minus the packed bytes.
    pub weight_bytes_saved: Arc<Gauge>,
    /// `wisdom_quant_matmuls_int8_total` — projections run through the
    /// quantized GEBP kernels.
    pub matmuls_int8: Arc<Counter>,
    /// `wisdom_quant_matmuls_f32_total` — projections run through the f32
    /// blocked kernels.
    pub matmuls_f32: Arc<Counter>,
}

impl QuantTelemetry {
    /// Registers (or re-resolves) the quantization metric family in
    /// `registry`.
    pub fn register(registry: &Registry) -> QuantTelemetry {
        Self::register_labeled(registry, &[])
    }

    /// [`Self::register`] with a label set on every series (per-replica
    /// quantization labels with `[("replica", "<i>")]`).
    pub fn register_labeled(registry: &Registry, labels: &[(&str, &str)]) -> QuantTelemetry {
        QuantTelemetry {
            weight_bytes: registry.gauge_with(
                "wisdom_quant_weight_bytes",
                "Packed int8 weight bytes resident (values plus per-block scales).",
                labels,
            ),
            weight_bytes_saved: registry.gauge_with(
                "wisdom_quant_weight_bytes_saved",
                "f32 weight bytes replaced by int8 packing, minus the packed bytes.",
                labels,
            ),
            matmuls_int8: registry.counter_with(
                "wisdom_quant_matmuls_int8_total",
                "Weight projections run through the quantized int8 kernels.",
                labels,
            ),
            matmuls_f32: registry.counter_with(
                "wisdom_quant_matmuls_f32_total",
                "Weight projections run through the f32 blocked kernels.",
                labels,
            ),
        }
    }
}

/// Handles for grammar-constrained decoding
/// ([`wisdom_grammar::GrammarCursor`] masking inside the decode loops).
///
/// Mask application is on the per-token hot path, so the bundle mirrors the
/// others: pre-resolved `Arc` handles, recorded only when a cursor is
/// actually active — unconstrained decoding records nothing.
#[derive(Debug, Clone)]
pub struct GrammarTelemetry {
    /// `wisdom_grammar_masked_tokens_total` — vocabulary entries set to
    /// `-inf` across all constrained logit rows.
    pub masked_tokens: Arc<Counter>,
    /// `wisdom_grammar_mask_build_seconds` — latency of computing a fresh
    /// allowed-token mask (cache hits are not observed).
    pub mask_build: Arc<Histogram>,
    /// `wisdom_grammar_states_cached` — automaton states currently in the
    /// shared mask cache.
    pub states_cached: Arc<Gauge>,
    /// `wisdom_grammar_forced_fast_path_total` — picks resolved by the
    /// single-legal-token fast path (no argmax / no sampling).
    pub forced_fast_path: Arc<Counter>,
}

impl GrammarTelemetry {
    /// Registers (or re-resolves) the grammar metric family in `registry`.
    pub fn register(registry: &Registry) -> GrammarTelemetry {
        Self::register_labeled(registry, &[])
    }

    /// [`Self::register`] with a label set on every series (per-replica
    /// grammar metrics label with `[("replica", "<i>")]`).
    pub fn register_labeled(registry: &Registry, labels: &[(&str, &str)]) -> GrammarTelemetry {
        GrammarTelemetry {
            masked_tokens: registry.counter_with(
                "wisdom_grammar_masked_tokens_total",
                "Vocabulary entries masked to -inf across constrained logit rows.",
                labels,
            ),
            mask_build: registry.histogram_with(
                "wisdom_grammar_mask_build_seconds",
                "Latency of building a fresh allowed-token mask (cache misses only).",
                labels,
                &Histogram::latency_buckets(),
            ),
            states_cached: registry.gauge_with(
                "wisdom_grammar_states_cached",
                "Automaton states currently held in the shared mask cache.",
                labels,
            ),
            forced_fast_path: registry.counter_with(
                "wisdom_grammar_forced_fast_path_total",
                "Token picks resolved by the single-legal-token fast path.",
                labels,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_twice_shares_handles() {
        let registry = Registry::new();
        let a = BatchTelemetry::register(&registry);
        let b = BatchTelemetry::register(&registry);
        a.admitted.inc();
        assert_eq!(b.admitted.get(), 1);
        let pa = PrefixCacheTelemetry::register(&registry);
        let pb = PrefixCacheTelemetry::register(&registry);
        pa.hits.inc();
        assert_eq!(pb.hits.get(), 1);
        let sa = SpeculativeTelemetry::register(&registry);
        let sb = SpeculativeTelemetry::register(&registry);
        sa.accepted.inc();
        assert_eq!(sb.accepted.get(), 1);
        let qa = QuantTelemetry::register(&registry);
        let qb = QuantTelemetry::register(&registry);
        qa.matmuls_int8.inc();
        qa.weight_bytes.set(128.0);
        assert_eq!(qb.matmuls_int8.get(), 1);
        assert_eq!(qb.weight_bytes.get(), 128.0);
        let ga = GrammarTelemetry::register(&registry);
        let gb = GrammarTelemetry::register(&registry);
        ga.masked_tokens.add(5);
        ga.forced_fast_path.inc();
        assert_eq!(gb.masked_tokens.get(), 5);
        assert_eq!(gb.forced_fast_path.get(), 1);
    }

    #[test]
    fn labeled_bundles_keep_per_replica_series_distinct() {
        let registry = Registry::new();
        let r0 = BatchTelemetry::register_labeled(&registry, &[("replica", "0")]);
        let r1 = BatchTelemetry::register_labeled(&registry, &[("replica", "1")]);
        r0.admitted.inc();
        r0.admitted.inc();
        r1.admitted.inc();
        assert_eq!(r0.admitted.get(), 2);
        assert_eq!(r1.admitted.get(), 1);
        let text = registry.render();
        assert!(text.contains("wisdom_requests_admitted_total{replica=\"0\"} 2"));
        assert!(text.contains("wisdom_requests_admitted_total{replica=\"1\"} 1"));
        // Re-registering the same label set re-resolves the same handles.
        let again = BatchTelemetry::register_labeled(&registry, &[("replica", "0")]);
        again.admitted.inc();
        assert_eq!(r0.admitted.get(), 3);
    }

    #[test]
    fn registered_names_render() {
        let registry = Registry::new();
        let _ = BatchTelemetry::register(&registry);
        let _ = PrefixCacheTelemetry::register(&registry);
        let _ = SpeculativeTelemetry::register(&registry);
        let _ = QuantTelemetry::register(&registry);
        let _ = GrammarTelemetry::register(&registry);
        let text = registry.render();
        for name in [
            "wisdom_grammar_masked_tokens_total",
            "wisdom_grammar_mask_build_seconds",
            "wisdom_grammar_states_cached",
            "wisdom_grammar_forced_fast_path_total",
            "wisdom_quant_weight_bytes",
            "wisdom_quant_weight_bytes_saved",
            "wisdom_quant_matmuls_int8_total",
            "wisdom_quant_matmuls_f32_total",
            "wisdom_speculative_proposed_tokens_total",
            "wisdom_speculative_accepted_tokens_total",
            "wisdom_speculative_rejected_tokens_total",
            "wisdom_speculative_verify_passes_total",
            "wisdom_speculative_acceptance_length",
            "wisdom_speculative_draft_seconds",
            "wisdom_queue_wait_seconds",
            "wisdom_ttft_seconds",
            "wisdom_decode_token_seconds",
            "wisdom_batch_occupancy",
            "wisdom_queue_depth",
            "wisdom_requests_admitted_total",
            "wisdom_requests_completed_total",
            "wisdom_requests_shed_total",
            "wisdom_scheduler_wakeups_total",
            "wisdom_prefix_cache_hits_total",
            "wisdom_prefix_cache_bytes",
            "wisdom_prefix_cache_pinned_bytes",
        ] {
            assert!(text.contains(&format!("# TYPE {name} ")), "{name} missing");
        }
    }
}
