//! Multi-replica serving: N independent [`BatchScheduler`]s over one model.
//!
//! Each replica owns its own decode worker, bounded queue, prefix KV cache,
//! speculative config, and precision — replicas share nothing but the
//! (immutable) model weights, so there is no cross-replica locking on the
//! decode path. What N replicas buy on top of N decode workers is N× the
//! aggregate prefix-cache capacity: a router that keeps each session's
//! resends on the replica already holding its prefix turns a working set
//! that thrashes one cache into N partitions that each fit
//! (`crates/server/src/router.rs` is that router).
//!
//! Determinism: a request decoded by any replica produces exactly the
//! tokens [`crate::TransformerLm::generate`] would produce for it alone —
//! each replica is a plain [`BatchScheduler`], whose agreement suites pin
//! that property — so *placement never changes bytes*, only latency. That
//! is what makes affinity routing safe to layer on top.

use std::sync::Arc;

use crate::batch::{BatchConfig, BatchScheduler, SchedulerStats};
use crate::prefix_cache::PrefixCacheStats;
use crate::telemetry::{
    BatchTelemetry, GrammarTelemetry, PrefixCacheTelemetry, QuantTelemetry, SpeculativeTelemetry,
};
use crate::transformer::TransformerLm;

/// Per-replica metric handles, typically registered with a
/// `replica="<i>"` label so one registry exposes every replica's series
/// side by side. All handles are optional; a default bundle leaves the
/// replica uninstrumented.
#[derive(Debug, Clone, Default)]
pub struct ReplicaTelemetry {
    /// Scheduler metrics (queue wait, TTFT, per-round decode latency, …).
    pub batch: Option<BatchTelemetry>,
    /// Prefix-cache metrics, attached to the replica's own cache.
    pub prefix_cache: Option<PrefixCacheTelemetry>,
    /// Speculative-decoding metrics.
    pub speculative: Option<SpeculativeTelemetry>,
    /// Quantization metrics.
    pub quant: Option<QuantTelemetry>,
    /// Grammar-constrained-decoding metrics.
    pub grammar: Option<GrammarTelemetry>,
}

/// Aggregated load across a pool, plus the per-replica snapshots it was
/// summed from. Served by `GET /v1/stats` on multi-replica servers.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Sum of per-replica queue depths.
    pub queue_depth: usize,
    /// Sum of per-replica in-flight batch sizes.
    pub in_flight: usize,
    /// Sum of per-replica worker wakeups.
    pub wakeups: u64,
    /// Component-wise sum of per-replica prefix-cache counters (`None`
    /// when no replica has a cache). `budget_bytes` sums too: it reports
    /// the pool's total cache capacity.
    pub prefix_cache: Option<PrefixCacheStats>,
    /// The snapshots the sums came from, in replica order.
    pub replicas: Vec<SchedulerStats>,
}

/// N independent continuous-batching schedulers over one shared model.
///
/// Spawning converts the model per replica only when
/// [`BatchConfig::precision`] requires it (the schedulers share one `Arc`
/// otherwise), so an f32 pool costs one copy of the weights total.
pub struct ReplicaPool {
    replicas: Vec<BatchScheduler>,
}

impl ReplicaPool {
    /// Spawns `n` (at least 1) uninstrumented replicas, each configured
    /// with `cfg` — so each gets its *own* prefix cache of
    /// `cfg.prefix_cache_bytes` bytes, its own queue of `cfg.queue_depth`
    /// slots, and its own decode worker.
    pub fn spawn(model: Arc<TransformerLm>, cfg: BatchConfig, n: usize) -> Self {
        Self::spawn_with(model, cfg, n, &[])
    }

    /// [`Self::spawn`] attaching `telemetry[i]` to replica `i` (missing
    /// entries leave that replica uninstrumented).
    pub fn spawn_with(
        model: Arc<TransformerLm>,
        cfg: BatchConfig,
        n: usize,
        telemetry: &[ReplicaTelemetry],
    ) -> Self {
        let n = n.max(1);
        let mut replicas = Vec::with_capacity(n);
        for i in 0..n {
            let t = telemetry.get(i).cloned().unwrap_or_default();
            let scheduler = BatchScheduler::spawn_full(
                Arc::clone(&model),
                cfg,
                t.batch,
                t.speculative,
                t.quant,
                t.grammar,
            );
            if let (Some(pc), Some(cache)) = (t.prefix_cache, scheduler.prefix_cache()) {
                cache.set_telemetry(pc);
            }
            replicas.push(scheduler);
        }
        Self { replicas }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the pool has no replicas (never true — `spawn` clamps to 1;
    /// provided for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Replica `i`'s scheduler.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn replica(&self, i: usize) -> &BatchScheduler {
        &self.replicas[i]
    }

    /// All replicas, in index order.
    pub fn replicas(&self) -> &[BatchScheduler] {
        &self.replicas
    }

    /// Per-replica load snapshots, in replica order.
    pub fn stats(&self) -> Vec<SchedulerStats> {
        self.replicas.iter().map(BatchScheduler::stats).collect()
    }

    /// Pool-wide load: per-replica snapshots plus their sums.
    pub fn aggregate(&self) -> PoolStats {
        let replicas = self.stats();
        let mut agg = PoolStats::default();
        for s in &replicas {
            agg.queue_depth += s.queue_depth;
            agg.in_flight += s.in_flight;
            agg.wakeups += s.wakeups;
            if let Some(pc) = &s.prefix_cache {
                let total = agg
                    .prefix_cache
                    .get_or_insert_with(PrefixCacheStats::default);
                total.hits += pc.hits;
                total.misses += pc.misses;
                total.hit_tokens += pc.hit_tokens;
                total.evicted_segments += pc.evicted_segments;
                total.bytes += pc.bytes;
                total.segments += pc.segments;
                total.budget_bytes += pc.budget_bytes;
            }
        }
        agg.replicas = replicas;
        agg
    }

    /// Whether every replica's decode worker is up and serving (readiness).
    pub fn worker_ready(&self) -> bool {
        self.replicas.iter().all(BatchScheduler::worker_ready)
    }

    /// Test hook: pauses/resumes admission on every replica at once.
    #[doc(hidden)]
    pub fn set_admission_paused(&self, paused: bool) {
        for r in &self.replicas {
            r.set_admission_paused(paused);
        }
    }

    /// Shuts every replica down; queued and in-flight requests resolve to
    /// empty outputs.
    pub fn shutdown(&self) {
        for r in &self.replicas {
            r.shutdown();
        }
    }
}

impl std::fmt::Debug for ReplicaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaPool")
            .field("replicas", &self.replicas.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::DecodeRequest;
    use crate::config::ModelConfig;
    use crate::decode::GenerationOptions;
    use wisdom_prng::Prng;

    fn tiny_model() -> TransformerLm {
        let cfg = ModelConfig {
            vocab_size: 20,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: 16,
        };
        let mut rng = Prng::seed_from_u64(7);
        TransformerLm::new(cfg, &mut rng)
    }

    fn greedy(max_new: usize) -> GenerationOptions {
        GenerationOptions {
            max_new_tokens: max_new,
            ..Default::default()
        }
    }

    #[test]
    fn every_replica_matches_solo_generate() {
        let model = Arc::new(tiny_model());
        let pool = ReplicaPool::spawn(Arc::clone(&model), BatchConfig::default(), 3);
        assert_eq!(pool.len(), 3);
        let solo = model.generate(&[1, 2, 3, 4], &[0], &greedy(5));
        for i in 0..pool.len() {
            assert_eq!(
                pool.replica(i).generate(&[1, 2, 3, 4], &[0], &greedy(5)),
                solo,
                "replica {i}"
            );
        }
    }

    #[test]
    fn replicas_have_independent_caches_and_queues() {
        let model = Arc::new(tiny_model());
        let pool = ReplicaPool::spawn(Arc::clone(&model), BatchConfig::default(), 2);
        // Warm replica 0 only; replica 1's cache must stay untouched.
        pool.replica(0).generate(&[1, 2, 3, 4, 5], &[0], &greedy(3));
        pool.replica(0).generate(&[1, 2, 3, 4, 5], &[0], &greedy(3));
        let stats = pool.stats();
        let c0 = stats[0].prefix_cache.expect("cache on");
        let c1 = stats[1].prefix_cache.expect("cache on");
        assert!(c0.hits >= 1, "{c0:?}");
        assert_eq!(c1.hits + c1.misses, 0, "{c1:?}");
        // The probe side: replica 0 now holds the prompt's prefix,
        // replica 1 holds nothing.
        assert!(pool.replica(0).cached_prefix_tokens(&[1, 2, 3, 4, 5], 3) > 0);
        assert_eq!(pool.replica(1).cached_prefix_tokens(&[1, 2, 3, 4, 5], 3), 0);

        let agg = pool.aggregate();
        assert_eq!(agg.replicas.len(), 2);
        let pc = agg.prefix_cache.expect("cache on");
        assert_eq!(pc.hits, c0.hits + c1.hits);
        assert_eq!(pc.budget_bytes, c0.budget_bytes + c1.budget_bytes);
    }

    #[test]
    fn pool_streaming_matches_result() {
        let model = Arc::new(tiny_model());
        let pool = ReplicaPool::spawn(Arc::clone(&model), BatchConfig::default(), 2);
        let req = DecodeRequest {
            prompt: vec![1, 2, 3],
            stops: vec![0],
            opts: greedy(6),
            grammar: None,
        };
        let streamed = pool
            .replica(1)
            .submit_streaming(req.clone())
            .expect("submit");
        let collected: Vec<u32> = streamed.tokens.iter().collect();
        let result = streamed.result.wait();
        assert_eq!(collected, result);
        assert_eq!(result, model.generate(&[1, 2, 3], &[0], &greedy(6)));
    }

    #[test]
    fn pool_shutdown_and_readiness() {
        let model = Arc::new(tiny_model());
        let pool = ReplicaPool::spawn(model, BatchConfig::default(), 2);
        while !pool.worker_ready() {
            std::thread::yield_now();
        }
        pool.shutdown();
        let err = pool
            .replica(0)
            .submit(DecodeRequest {
                prompt: vec![1],
                stops: vec![],
                opts: greedy(2),
                grammar: None,
            })
            .unwrap_err();
        assert_eq!(err, crate::batch::SubmitError::ShutDown);
    }
}
