//! Model architecture configuration and the paper's size grid.

/// Architecture of a decoder-only transformer LM.
///
/// # Examples
///
/// ```
/// use wisdom_model::ModelConfig;
///
/// let cfg = ModelConfig::size_350m(600, 128);
/// assert_eq!(cfg.head_dim(), cfg.d_model / cfg.n_heads);
/// assert!(cfg.param_count() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size (from the tokenizer).
    pub vocab_size: usize,
    /// Embedding / residual width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Attention heads per block.
    pub n_heads: usize,
    /// Maximum context window in tokens.
    pub context_window: usize,
}

impl ModelConfig {
    /// The scaled-down stand-in for CodeGen **350M** (the paper's production
    /// size choice). All absolute sizes in this reproduction are divided by
    /// a common factor so CPU training stays in the minutes range while the
    /// *relative* capacity ordering 350M < 2.7B < 6B is preserved.
    pub fn size_350m(vocab_size: usize, context_window: usize) -> Self {
        Self {
            vocab_size,
            d_model: 64,
            n_layers: 2,
            n_heads: 4,
            context_window,
        }
    }

    /// Scaled stand-in for CodeGen **2.7B**.
    pub fn size_2_7b(vocab_size: usize, context_window: usize) -> Self {
        Self {
            vocab_size,
            d_model: 112,
            n_layers: 4,
            n_heads: 7,
            context_window,
        }
    }

    /// Scaled stand-in for CodeGen **6B**.
    pub fn size_6b(vocab_size: usize, context_window: usize) -> Self {
        Self {
            vocab_size,
            d_model: 144,
            n_layers: 6,
            n_heads: 9,
            context_window,
        }
    }

    /// Width of one attention head.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "d_model {} not divisible by heads {}",
            self.d_model,
            self.n_heads
        );
        self.d_model / self.n_heads
    }

    /// Width of the MLP hidden layer (the GPT-standard 4×).
    pub fn d_ff(&self) -> usize {
        4 * self.d_model
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        let d = self.d_model;
        let v = self.vocab_size;
        let per_layer = 2 * d          // ln1 gain+bias
            + 3 * (d * d + d)          // q,k,v
            + d * d + d                // attn out
            + 2 * d                    // ln2
            + d * self.d_ff() + self.d_ff() // mlp in
            + self.d_ff() * d + d; // mlp out
        v * d                          // token embedding
            + self.context_window * d  // position embedding
            + self.n_layers * per_layer
            + 2 * d                    // final ln
            + d * v // lm head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_grid_is_ordered() {
        let s = ModelConfig::size_350m(1000, 128);
        let m = ModelConfig::size_2_7b(1000, 128);
        let l = ModelConfig::size_6b(1000, 128);
        assert!(s.param_count() < m.param_count());
        assert!(m.param_count() < l.param_count());
    }

    #[test]
    fn head_dims_divide() {
        for cfg in [
            ModelConfig::size_350m(500, 64),
            ModelConfig::size_2_7b(500, 64),
            ModelConfig::size_6b(500, 64),
        ] {
            assert!(cfg.head_dim() > 0);
            assert_eq!(cfg.head_dim() * cfg.n_heads, cfg.d_model);
        }
    }

    #[test]
    fn param_count_scales_with_vocab() {
        let a = ModelConfig::size_350m(500, 64);
        let b = ModelConfig::size_350m(1000, 64);
        assert!(b.param_count() > a.param_count());
    }
}
