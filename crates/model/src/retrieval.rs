//! A nearest-neighbour retrieval "language model" — the offline stand-in for
//! Codex-Davinci-002.
//!
//! The paper observes that Codex's few-shot Exact Match is the highest of
//! all models and attributes it to training-set contamination ("Codex likely
//! saw large portions of our Galaxy dataset"). A retrieval model over a pool
//! that deliberately includes part of the evaluation data reproduces exactly
//! that behaviour: near-perfect output whenever the sample leaked, plausible
//! same-domain output otherwise — while still losing to a fine-tuned
//! in-domain model overall.

use std::collections::HashSet;

use crate::decode::{GenerationOptions, TextGenerator};

/// One indexed `- name:` line and the task/play body that followed it.
#[derive(Debug, Clone)]
struct Entry {
    name_tokens: HashSet<String>,
    /// Raw body lines, as they appeared under the name line.
    body: Vec<String>,
    /// Indent of the dash of the `- name:` line.
    dash_indent: usize,
}

/// Retrieval-based completion over a document pool.
///
/// # Examples
///
/// ```
/// use wisdom_model::{GenerationOptions, RetrievalModel, TextGenerator};
///
/// let doc = "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
/// let model = RetrievalModel::build("codex-sim", [doc]);
/// let out = model.complete("- name: Install nginx\n", &GenerationOptions::default());
/// assert!(out.contains("ansible.builtin.apt"));
/// ```
#[derive(Debug, Clone)]
pub struct RetrievalModel {
    name: String,
    entries: Vec<Entry>,
}

impl RetrievalModel {
    /// Indexes every `- name:` line of every document in the pool.
    pub fn build<'a, I>(name: impl Into<String>, docs: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut entries = Vec::new();
        for doc in docs {
            let lines: Vec<&str> = doc.lines().collect();
            for i in 0..lines.len() {
                let Some((dash_indent, value)) = parse_dash_name(lines[i]) else {
                    continue;
                };
                let mut body = Vec::new();
                for line in &lines[i + 1..] {
                    if line.trim().is_empty() {
                        break;
                    }
                    let ind = indent_of(line);
                    if ind <= dash_indent {
                        break;
                    }
                    body.push((*line).to_string());
                }
                if body.is_empty() {
                    continue;
                }
                entries.push(Entry {
                    name_tokens: tokenize(value),
                    body,
                    dash_indent,
                });
            }
        }
        Self {
            name: name.into(),
            entries,
        }
    }

    /// Number of indexed name→body entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn best_entry(&self, query: &HashSet<String>) -> Option<&Entry> {
        let mut best: Option<(&Entry, f64)> = None;
        for e in &self.entries {
            let inter = e.name_tokens.intersection(query).count();
            let union = e.name_tokens.union(query).count();
            if union == 0 {
                continue;
            }
            let score = inter as f64 / union as f64;
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((e, score));
            }
        }
        best.map(|(e, _)| e)
    }
}

impl TextGenerator for RetrievalModel {
    fn complete(&self, prompt: &str, _opts: &GenerationOptions) -> String {
        // Locate the last `- name:` line in the prompt (the paper's prompt
        // formulation guarantees one).
        let mut query = None;
        for line in prompt.lines().rev() {
            if let Some((indent, value)) = parse_dash_name(line) {
                query = Some((indent, tokenize(value)));
                break;
            }
        }
        let Some((query_indent, query_tokens)) = query else {
            return String::new();
        };
        let Some(entry) = self.best_entry(&query_tokens) else {
            return String::new();
        };
        // Re-indent the stored body to the query's nesting depth.
        let mut out = String::new();
        for line in &entry.body {
            let shifted = shift_indent(line, entry.dash_indent, query_indent);
            out.push_str(&shifted);
            out.push('\n');
        }
        out
    }

    fn model_name(&self) -> String {
        self.name.clone()
    }
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start_matches(' ').len()
}

/// Parses `  - name: Some intent` into `(dash_indent, value)`.
fn parse_dash_name(line: &str) -> Option<(usize, &str)> {
    let indent = indent_of(line);
    let rest = line[indent..].strip_prefix("- name:")?;
    Some((indent, rest.trim()))
}

fn tokenize(s: &str) -> HashSet<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

fn shift_indent(line: &str, from_base: usize, to_base: usize) -> String {
    let ind = indent_of(line);
    let body = &line[ind..];
    let new_indent = (ind + to_base).saturating_sub(from_base);
    format!("{}{}", " ".repeat(new_indent), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    const POOL: &[&str] = &[
        "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n- name: Start nginx\n  ansible.builtin.service:\n    name: nginx\n    state: started\n",
        "- name: Create deploy user\n  ansible.builtin.user:\n    name: deploy\n    shell: /bin/bash\n",
    ];

    fn model() -> RetrievalModel {
        RetrievalModel::build("codex-sim", POOL.iter().copied())
    }

    #[test]
    fn exact_leak_returns_verbatim_body() {
        let out = model().complete("- name: Install nginx\n", &GenerationOptions::default());
        assert_eq!(
            out,
            "  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
        );
    }

    #[test]
    fn fuzzy_match_finds_similar_name() {
        let out = model().complete(
            "- name: install the nginx package\n",
            &GenerationOptions::default(),
        );
        assert!(out.contains("apt"), "got {out:?}");
    }

    #[test]
    fn unrelated_prompt_still_returns_nearest() {
        let out = model().complete(
            "- name: Create a deploy user account\n",
            &GenerationOptions::default(),
        );
        assert!(out.contains("ansible.builtin.user"), "got {out:?}");
    }

    #[test]
    fn deeper_context_is_reindented() {
        // Query name line nested inside a playbook (dash at indent 4).
        let prompt = "- hosts: all\n  tasks:\n    - name: Install nginx\n";
        let out = model().complete(prompt, &GenerationOptions::default());
        assert!(out.starts_with("      ansible.builtin.apt:"), "got {out:?}");
    }

    #[test]
    fn prompt_without_name_line_returns_empty() {
        let out = model().complete("hosts: all\n", &GenerationOptions::default());
        assert!(out.is_empty());
    }

    #[test]
    fn empty_pool_returns_empty() {
        let m = RetrievalModel::build("empty", std::iter::empty::<&str>());
        assert!(m.is_empty());
        assert_eq!(m.complete("- name: x\n", &GenerationOptions::default()), "");
    }

    #[test]
    fn index_counts_entries() {
        assert_eq!(model().len(), 3);
    }
}
