//! Radix-tree prefix KV cache: copy-on-write reuse of prompt KV state
//! across requests.
//!
//! Every Wisdom prompt is built from a shared scaffold — the
//! `- name: <NL>` completion format plus, for the context-carrying
//! generation types, a playbook/task context repeated verbatim across many
//! requests. Re-prefilling those shared prefixes is pure waste: a K/V row
//! at position `t` depends only on tokens `0..=t`, so two prompts that
//! share a prefix share the prefix's K/V rows *exactly*.
//!
//! [`PrefixKvCache`] exploits that with a radix tree (compressed trie)
//! keyed by token sequences. Each edge owns an immutable [`Segment`]: the
//! edge's token run plus the per-layer K/V rows those positions produced.
//! [`PrefixKvCache::lookup`] walks the tree and returns the longest cached
//! prefix of an incoming window; [`PrefixKvCache::prefill`] splices those
//! rows into a fresh [`KvCache`] and runs
//! [`TransformerLm::prefill_continue`] over the *suffix only*.
//!
//! Copy-on-write discipline: segments are shared as `Arc<Segment>` and
//! never mutated — splicing copies rows out into the request's private
//! cache, and decode appends only to that private cache, so concurrent
//! readers and later evictions can never corrupt an in-flight sequence.
//!
//! Eviction is byte-budget LRU, leaf-first (an inner node's rows are a
//! prefix of its children's, so leaves always go first), and
//! refcount-aware: a segment whose `Arc` is also held outside the tree —
//! by a [`CachedPrefix`] being spliced or a [`PrefixPin`] owned by an
//! in-flight sequence — is pinned and skipped. When everything over
//! budget is pinned, eviction stops rather than stall admission; the
//! budget is re-enforced on the next insert.
//!
//! Position-exactness: cached rows bake in their absolute position (the
//! model adds `pos_emb` rows by index), and prefill always starts at
//! position 0 of the *left-truncated* generation window. Keying the tree
//! by that window means a prompt longer than the context window is
//! automatically re-keyed by its truncated tail — a truncated window never
//! matches the untruncated prefix of a shorter prompt byte-for-byte unless
//! the token runs (and therefore the positions) really are identical.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, Weak};

use crate::telemetry::PrefixCacheTelemetry;
use crate::transformer::{KvCache, TransformerLm};

/// Sizing for a [`PrefixKvCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Byte budget for tree-owned K/V segments; eviction keeps the total at
    /// or under this (except for bytes pinned by in-flight sequences).
    pub max_bytes: usize,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        Self {
            max_bytes: 64 << 20,
        }
    }
}

/// Counters surfaced through `GET /v1/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Lookups that matched at least one cached token.
    pub hits: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Total prompt tokens served from cache instead of recomputed.
    pub hit_tokens: u64,
    /// Segments discarded by LRU eviction.
    pub evicted_segments: u64,
    /// Bytes currently owned by the tree.
    pub bytes: usize,
    /// Segments currently in the tree.
    pub segments: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
}

/// One radix-tree edge's payload: an immutable token run and the per-layer
/// K/V rows those positions produced. Shared via `Arc`, never mutated.
#[derive(Debug)]
struct Segment {
    tokens: Vec<u32>,
    /// Row width (`d_model`).
    d: usize,
    /// Per-layer keys, `tokens.len() * d` floats each.
    k: Vec<Vec<f32>>,
    /// Per-layer values, same shape as `k`.
    v: Vec<Vec<f32>>,
}

impl Segment {
    fn rows(&self) -> usize {
        self.tokens.len()
    }

    /// Heap bytes owned by this segment (tokens + K/V floats).
    fn bytes(&self) -> usize {
        let floats: usize = self.k.iter().chain(self.v.iter()).map(Vec::len).sum();
        floats * std::mem::size_of::<f32>() + self.tokens.len() * std::mem::size_of::<u32>()
    }

    /// Rows `from..to` of `cache`, labeled with the matching `tokens` run.
    fn from_cache(cache: &KvCache, tokens: &[u32], from: usize, to: usize) -> Segment {
        let d = cache.d;
        let slice = |layers: &[Vec<f32>]| -> Vec<Vec<f32>> {
            layers
                .iter()
                .map(|layer| layer[from * d..to * d].to_vec())
                .collect()
        };
        Segment {
            tokens: tokens.to_vec(),
            d,
            k: slice(&cache.k),
            v: slice(&cache.v),
        }
    }

    /// Rows `from..to` of this segment as a new segment.
    fn slice(&self, from: usize, to: usize) -> Segment {
        let d = self.d;
        let slice = |layers: &[Vec<f32>]| -> Vec<Vec<f32>> {
            layers
                .iter()
                .map(|layer| layer[from * d..to * d].to_vec())
                .collect()
        };
        Segment {
            tokens: self.tokens[from..to].to_vec(),
            d,
            k: slice(&self.k),
            v: slice(&self.v),
        }
    }
}

/// The longest cached prefix of a looked-up window: a run of segments (the
/// last possibly used only partially) totalling [`CachedPrefix::len`]
/// tokens. Holding this pins the segments against eviction.
pub struct CachedPrefix {
    /// `(segment, rows used)` along the tree path.
    segments: Vec<(Arc<Segment>, usize)>,
    len: usize,
}

impl CachedPrefix {
    /// Number of prompt tokens this prefix covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the prefix covers no tokens (lookup never returns this).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the cached rows into `cache` (which must be empty): the
    /// copy-on-write read side. The tree's segments stay untouched; the
    /// request's decode appends only to its private `cache`.
    pub(crate) fn splice_into(&self, cache: &mut KvCache) {
        debug_assert!(cache.is_empty(), "splice target must be fresh");
        for (seg, rows) in &self.segments {
            debug_assert_eq!(seg.k.len(), cache.k.len(), "layer count");
            let d = seg.d;
            for (dst, src) in cache.k.iter_mut().zip(seg.k.iter()) {
                dst.extend_from_slice(&src[..rows * d]);
            }
            for (dst, src) in cache.v.iter_mut().zip(seg.v.iter()) {
                dst.extend_from_slice(&src[..rows * d]);
            }
        }
    }
}

impl fmt::Debug for CachedPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachedPrefix")
            .field("len", &self.len)
            .field("segments", &self.segments.len())
            .finish()
    }
}

/// Pins the tree segments backing one in-flight sequence: while this is
/// alive, eviction skips them (their `Arc` refcount exceeds the tree's own
/// reference). Dropping the pin — when the sequence retires — releases the
/// segments and re-runs eviction, so bytes parked over budget by pinned
/// admissions are reclaimed as soon as the pins go away.
#[derive(Default)]
pub struct PrefixPin {
    segments: Vec<Arc<Segment>>,
    /// Back-reference for the drop-time eviction pass; `None` for the empty
    /// pin of a cache-less admission.
    core: Option<Weak<Core>>,
}

impl Drop for PrefixPin {
    fn drop(&mut self) {
        if self.segments.is_empty() {
            return;
        }
        // Release the refcounts *before* evicting, so the segments this pin
        // protected become candidates.
        self.segments.clear();
        if let Some(core) = self.core.take().and_then(|w| w.upgrade()) {
            let mut inner = core.inner.lock().expect("prefix cache lock");
            inner.evict_to_budget(core.max_bytes);
            inner.publish_gauges();
        }
    }
}

impl fmt::Debug for PrefixPin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrefixPin")
            .field("segments", &self.segments.len())
            .finish()
    }
}

/// Slab index of a live radix-tree node.
type NodeId = usize;

const ROOT: NodeId = 0;

struct Node {
    seg: Arc<Segment>,
    parent: NodeId,
    /// Child edges keyed by their first token (edges of one node never
    /// share a first token, so one lookup step is one map probe).
    children: BTreeMap<u32, NodeId>,
    /// Logical LRU clock value of the last lookup/insert touching this
    /// node's path.
    last_used: u64,
}

struct Inner {
    /// Slab of nodes; `None` entries are free slots. `nodes[ROOT]` is the
    /// empty-segment root and is never evicted.
    nodes: Vec<Option<Node>>,
    free: Vec<NodeId>,
    /// Bytes owned by tree segments (pinned copies held by readers after a
    /// split/evict are the readers' responsibility, not the tree's).
    bytes: usize,
    /// Logical LRU clock, bumped per lookup/insert.
    tick: u64,
    hits: u64,
    misses: u64,
    hit_tokens: u64,
    evicted_segments: u64,
    /// Registry handles mirroring the counters above; updated at the same
    /// sites, under the same lock. `None` until the server attaches them.
    telemetry: Option<PrefixCacheTelemetry>,
}

impl Inner {
    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    /// Splits `id`'s edge after `at` rows: `id` keeps the upper `at` rows
    /// and gains a single child holding the remainder (and `id`'s former
    /// children). Readers holding the old `Arc<Segment>` keep a valid
    /// (now untracked) copy — copy-on-write at the tree-structure level.
    fn split(&mut self, id: NodeId, at: usize) {
        let node = self.node(id);
        debug_assert!(0 < at && at < node.seg.rows(), "split strictly inside");
        let upper = Arc::new(node.seg.slice(0, at));
        let lower = Arc::new(node.seg.slice(at, node.seg.rows()));
        self.bytes += upper.bytes() + lower.bytes();
        self.bytes -= self.node(id).seg.bytes();
        let node = self.node_mut(id);
        let lower_first = lower.tokens[0];
        let lower_children = std::mem::take(&mut node.children);
        let last_used = node.last_used;
        node.seg = upper;
        let lower_id = self.alloc(Node {
            seg: lower,
            parent: id,
            children: lower_children,
            last_used,
        });
        let moved: Vec<NodeId> = self.node(lower_id).children.values().copied().collect();
        for child in moved {
            self.node_mut(child).parent = lower_id;
        }
        self.node_mut(id).children.insert(lower_first, lower_id);
    }

    /// Evicts least-recently-used unpinned leaves until `bytes <= budget`
    /// or nothing evictable remains (everything left is pinned).
    fn evict_to_budget(&mut self, budget: usize) {
        while self.bytes > budget {
            let victim = self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(id, slot)| {
                    let node = slot.as_ref()?;
                    if id == ROOT || !node.children.is_empty() {
                        return None;
                    }
                    // A refcount above 1 means a CachedPrefix or PrefixPin
                    // (an in-flight sequence) also holds this segment.
                    if Arc::strong_count(&node.seg) > 1 {
                        return None;
                    }
                    Some((node.last_used, id))
                })
                .min();
            let Some((_, id)) = victim else { break };
            let node = self.nodes[id].take().expect("victim is live");
            self.free.push(id);
            self.bytes -= node.seg.bytes();
            self.evicted_segments += 1;
            if let Some(t) = &self.telemetry {
                t.evicted_segments.inc();
            }
            let first = node.seg.tokens[0];
            self.node_mut(node.parent).children.remove(&first);
        }
    }

    /// Republishes the tree-shape gauges (bytes, segment count, pinned
    /// bytes) into the registry handles. Called under the cache lock after
    /// any mutation that can change them.
    fn publish_gauges(&self) {
        let Some(t) = &self.telemetry else { return };
        t.bytes.set(self.bytes as f64);
        let mut segments = 0usize;
        let mut pinned = 0usize;
        for (id, slot) in self.nodes.iter().enumerate() {
            let Some(node) = slot else { continue };
            if id == ROOT {
                continue;
            }
            segments += 1;
            // A refcount above the tree's own means a CachedPrefix or an
            // in-flight sequence's PrefixPin also holds the segment.
            if Arc::strong_count(&node.seg) > 1 {
                pinned += node.seg.bytes();
            }
        }
        t.segments.set(segments as f64);
        t.pinned_bytes.set(pinned as f64);
    }
}

/// The lock-guarded tree plus its budget, shared between the cache handle
/// and the weak back-references held by pins.
struct Core {
    inner: Mutex<Inner>,
    max_bytes: usize,
}

/// A shared, byte-bounded radix-tree cache of prompt-prefix KV state.
///
/// Thread-safe: one mutex guards the tree (admission is effectively
/// single-threaded through the scheduler worker; the lock exists so the
/// stats endpoint and tests can read concurrently).
pub struct PrefixKvCache {
    core: Arc<Core>,
}

impl fmt::Debug for PrefixKvCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrefixKvCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for PrefixKvCache {
    fn default() -> Self {
        Self::new(PrefixCacheConfig::default())
    }
}

impl PrefixKvCache {
    /// An empty cache with the given sizing.
    pub fn new(cfg: PrefixCacheConfig) -> Self {
        let root = Node {
            seg: Arc::new(Segment {
                tokens: Vec::new(),
                d: 0,
                k: Vec::new(),
                v: Vec::new(),
            }),
            parent: ROOT,
            children: BTreeMap::new(),
            last_used: 0,
        };
        Self {
            core: Arc::new(Core {
                inner: Mutex::new(Inner {
                    nodes: vec![Some(root)],
                    free: Vec::new(),
                    bytes: 0,
                    tick: 0,
                    hits: 0,
                    misses: 0,
                    hit_tokens: 0,
                    evicted_segments: 0,
                    telemetry: None,
                }),
                max_bytes: cfg.max_bytes.max(1),
            }),
        }
    }

    /// An empty cache bounded to `max_bytes` of K/V segments.
    pub fn with_budget(max_bytes: usize) -> Self {
        Self::new(PrefixCacheConfig { max_bytes })
    }

    /// Attaches registry handles: every hit/miss/eviction from here on is
    /// mirrored into `telemetry` (under the cache lock, at the same sites
    /// as the internal counters), and the shape gauges are published after
    /// every insert and pin-release eviction pass.
    pub fn set_telemetry(&self, telemetry: PrefixCacheTelemetry) {
        let mut inner = self.core.inner.lock().expect("prefix cache lock");
        telemetry.budget_bytes.set(self.core.max_bytes as f64);
        inner.telemetry = Some(telemetry);
        inner.publish_gauges();
    }

    /// Current counters.
    pub fn stats(&self) -> PrefixCacheStats {
        let inner = self.core.inner.lock().expect("prefix cache lock");
        PrefixCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            hit_tokens: inner.hit_tokens,
            evicted_segments: inner.evicted_segments,
            bytes: inner.bytes,
            segments: inner.nodes.iter().flatten().count() - 1,
            budget_bytes: self.core.max_bytes,
        }
    }

    /// The longest cached prefix of `window`, at most `max_tokens` long
    /// (callers cap at `window.len() - 1` so the final position — whose
    /// logits are not cached — is always recomputed). Returns `None` on a
    /// zero-length match; counts a hit or miss either way.
    pub fn lookup(&self, window: &[u32], max_tokens: usize) -> Option<CachedPrefix> {
        let mut inner = self.core.inner.lock().expect("prefix cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let budget = max_tokens.min(window.len());
        let mut node_id = ROOT;
        let mut matched = 0usize;
        let mut segments: Vec<(Arc<Segment>, usize)> = Vec::new();
        while matched < budget {
            let Some(&child) = inner.node(node_id).children.get(&window[matched]) else {
                break;
            };
            let node = inner.node_mut(child);
            node.last_used = tick;
            let seg = Arc::clone(&node.seg);
            let rest = &window[matched..];
            let take = seg
                .tokens
                .iter()
                .zip(rest.iter())
                .take_while(|(a, b)| a == b)
                .count()
                .min(budget - matched);
            debug_assert!(take >= 1, "child keyed by first token");
            matched += take;
            let whole = take == seg.rows();
            segments.push((seg, take));
            if !whole {
                break;
            }
            node_id = child;
        }
        if matched == 0 {
            inner.misses += 1;
            if let Some(t) = &inner.telemetry {
                t.misses.inc();
            }
            return None;
        }
        inner.hits += 1;
        inner.hit_tokens += matched as u64;
        if let Some(t) = &inner.telemetry {
            t.hits.inc();
            t.hit_tokens.add(matched as u64);
        }
        Some(CachedPrefix {
            segments,
            len: matched,
        })
    }

    /// The number of leading `window` tokens currently resident in the
    /// tree, without disturbing anything: no hit/miss counters, no LRU
    /// touch, no pinning. This is the cached-prefix summary a multi-replica
    /// router consults when scoring replicas for prefix affinity — a probe
    /// must not advertise itself as reuse (that would inflate the hit rate)
    /// nor refresh recency (that would let routing queries keep segments
    /// alive that no admission ever splices).
    pub fn probe(&self, window: &[u32]) -> usize {
        let inner = self.core.inner.lock().expect("prefix cache lock");
        let mut node_id = ROOT;
        let mut matched = 0usize;
        while matched < window.len() {
            let Some(&child) = inner.node(node_id).children.get(&window[matched]) else {
                break;
            };
            let node = inner.node(child);
            let rest = &window[matched..];
            let take = node
                .seg
                .tokens
                .iter()
                .zip(rest.iter())
                .take_while(|(a, b)| a == b)
                .count();
            matched += take;
            if take < node.seg.rows() {
                break;
            }
            node_id = child;
        }
        matched
    }

    /// Records `window`'s K/V rows (taken from `cache`, which must hold at
    /// least `window.len()` positions) in the tree, sharing existing
    /// segments and splitting edges where the window diverges mid-edge.
    /// Returns a [`PrefixPin`] holding every segment on the window's path —
    /// the caller keeps it alive for the sequence's lifetime so eviction
    /// cannot drop state backing an in-flight decode. Evicts down to the
    /// byte budget before returning.
    pub fn insert(&self, window: &[u32], cache: &KvCache) -> PrefixPin {
        debug_assert!(cache.len() >= window.len(), "cache covers the window");
        let mut pin = PrefixPin {
            segments: Vec::new(),
            core: Some(Arc::downgrade(&self.core)),
        };
        if window.is_empty() {
            return pin;
        }
        let mut inner = self.core.inner.lock().expect("prefix cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let mut node_id = ROOT;
        let mut matched = 0usize;
        while matched < window.len() {
            match inner.node(node_id).children.get(&window[matched]).copied() {
                None => {
                    // New leaf for the whole remainder.
                    let seg = Arc::new(Segment::from_cache(
                        cache,
                        &window[matched..],
                        matched,
                        window.len(),
                    ));
                    inner.bytes += seg.bytes();
                    pin.segments.push(Arc::clone(&seg));
                    let first = window[matched];
                    let leaf = inner.alloc(Node {
                        seg,
                        parent: node_id,
                        children: BTreeMap::new(),
                        last_used: tick,
                    });
                    inner.node_mut(node_id).children.insert(first, leaf);
                    matched = window.len();
                }
                Some(child) => {
                    let node = inner.node_mut(child);
                    node.last_used = tick;
                    let rest = &window[matched..];
                    let lcp = node
                        .seg
                        .tokens
                        .iter()
                        .zip(rest.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                    if lcp < node.seg.rows() && matched + lcp < window.len() {
                        // Diverges mid-edge with more window to attach:
                        // split so the shared part becomes its own node.
                        inner.split(child, lcp);
                    }
                    let node = inner.node(child);
                    pin.segments.push(Arc::clone(&node.seg));
                    matched += lcp.min(node.seg.rows());
                    if matched == window.len() || lcp == 0 {
                        // Fully consumed (possibly mid-edge: the edge's
                        // extra rows extend beyond the window, no split
                        // needed) — or an impossible zero match, guarded
                        // against looping.
                        debug_assert!(lcp > 0, "child keyed by first token");
                        break;
                    }
                    node_id = child;
                }
            }
        }
        inner.evict_to_budget(self.core.max_bytes);
        inner.publish_gauges();
        pin
    }

    /// Cache-accelerated prefill: splices the longest cached prefix of
    /// `window` into a fresh [`KvCache`], runs
    /// [`TransformerLm::prefill_continue`] over the remaining suffix only,
    /// and records the full window back into the tree.
    ///
    /// Returns `(cache, final-position logits, pin)`. The caller holds the
    /// pin for the sequence's lifetime. Output is bit-identical to
    /// `model.prefill(window)` for any cache state: cached rows are exact
    /// copies of what the full pass would have produced at those positions.
    ///
    /// # Panics
    ///
    /// Panics if `window` exceeds the model's context window or contains an
    /// out-of-vocabulary token (as [`TransformerLm::prefill`] would).
    pub fn prefill(&self, model: &TransformerLm, window: &[u32]) -> (KvCache, Vec<f32>, PrefixPin) {
        if window.is_empty() {
            let (cache, logits) = model.prefill(window);
            return (cache, logits, PrefixPin::default());
        }
        // The final position's logits are not cached, so always leave at
        // least one suffix token for the live pass to evaluate.
        let hit = self.lookup(window, window.len() - 1);
        let mut cache = KvCache::new(model);
        let matched = hit.as_ref().map_or(0, CachedPrefix::len);
        if let Some(prefix) = &hit {
            prefix.splice_into(&mut cache);
        }
        let logits = model.prefill_continue(&window[matched..], &mut cache);
        drop(hit);
        let pin = self.insert(window, &cache);
        (cache, logits, pin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use wisdom_prng::Prng;

    fn tiny_model() -> TransformerLm {
        let cfg = ModelConfig {
            vocab_size: 20,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: 16,
        };
        let mut rng = Prng::seed_from_u64(7);
        TransformerLm::new(cfg, &mut rng)
    }

    #[test]
    fn lookup_on_empty_cache_misses() {
        let cache = PrefixKvCache::default();
        assert!(cache.lookup(&[1, 2, 3], 2).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 1));
        assert_eq!(s.bytes, 0);
        assert_eq!(s.segments, 0);
    }

    #[test]
    fn insert_then_lookup_shares_prefix() {
        let model = tiny_model();
        let cache = PrefixKvCache::default();
        let window = [1u32, 2, 3, 4, 5];
        let (kv, _) = model.prefill(&window);
        let _pin = cache.insert(&window, &kv);
        assert_eq!(cache.stats().segments, 1);

        // Full prefix of a longer window.
        let hit = cache.lookup(&[1, 2, 3, 4, 5, 6, 7], 6).expect("hit");
        assert_eq!(hit.len(), 5);
        // Partial (mid-edge) prefix.
        let hit = cache.lookup(&[1, 2, 3, 9], 3).expect("hit");
        assert_eq!(hit.len(), 3);
        // Diverging first token misses.
        assert!(cache.lookup(&[2, 2, 3], 2).is_none());
    }

    #[test]
    fn probe_reports_resident_prefix_without_touching_stats() {
        let model = tiny_model();
        let cache = PrefixKvCache::default();
        let window = [1u32, 2, 3, 4, 5];
        let (kv, _) = model.prefill(&window);
        let _pin = cache.insert(&window, &kv);
        let before = cache.stats();

        // Full residency, mid-edge partial match, and a clean miss.
        assert_eq!(cache.probe(&[1, 2, 3, 4, 5, 6, 7]), 5);
        assert_eq!(cache.probe(&[1, 2, 3, 9]), 3);
        assert_eq!(cache.probe(&[2, 2, 3]), 0);
        assert_eq!(cache.probe(&[]), 0);

        // Probing is invisible: no hit/miss movement, no byte churn.
        let after = cache.stats();
        assert_eq!(
            (before.hits, before.misses, before.hit_tokens, before.bytes),
            (after.hits, after.misses, after.hit_tokens, after.bytes)
        );
    }

    #[test]
    fn insert_splits_edges_and_preserves_rows() {
        let model = tiny_model();
        let cache = PrefixKvCache::default();
        let a = [1u32, 2, 3, 4, 5, 6];
        let b = [1u32, 2, 3, 9, 9];
        let (kv_a, _) = model.prefill(&a);
        let (kv_b, _) = model.prefill(&b);
        let _pa = cache.insert(&a, &kv_a);
        let _pb = cache.insert(&b, &kv_b);
        // Shared [1,2,3] node plus two divergent tails.
        assert_eq!(cache.stats().segments, 3);
        // Both windows still fully resolvable, and spliced rows match the
        // cold prefill bit-for-bit.
        for (w, kv) in [(&a[..], &kv_a), (&b[..], &kv_b)] {
            let hit = cache.lookup(w, w.len()).expect("hit");
            assert_eq!(hit.len(), w.len());
            let mut spliced = KvCache::new(&model);
            hit.splice_into(&mut spliced);
            assert_eq!(spliced.len(), w.len());
            for l in 0..spliced.k.len() {
                let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&spliced.k[l]), bits(&kv.k[l]), "layer {l} keys");
                assert_eq!(bits(&spliced.v[l]), bits(&kv.v[l]), "layer {l} values");
            }
        }
    }

    #[test]
    fn eviction_respects_budget_and_skips_pinned() {
        let model = tiny_model();
        let (kv, _) = model.prefill(&[1, 2, 3, 4]);
        let one_window = Segment::from_cache(&kv, &[1, 2, 3, 4], 0, 4).bytes();
        // Budget fits roughly two windows.
        let cache = PrefixKvCache::with_budget(2 * one_window + one_window / 2);

        // Hold a pin on the first window; it must survive any pressure.
        let (_kv1, _lg1, pin) = cache.prefill(&model, &[1, 2, 3, 4]);
        for start in 10u32..16 {
            let w = [start, start + 1, 2, 3];
            let (kv, _) = model.prefill(&w);
            drop(cache.insert(&w, &kv));
        }
        let s = cache.stats();
        assert!(s.evicted_segments > 0, "pressure must evict: {s:?}");
        assert!(
            s.bytes <= 2 * one_window + one_window / 2,
            "over budget: {s:?}"
        );
        let hit = cache.lookup(&[1, 2, 3, 4, 5], 4).expect("pinned survives");
        assert_eq!(hit.len(), 4);
        drop(pin);

        // Unpinned now: enough pressure evicts it too.
        for start in 10u32..16 {
            let w = [start, start + 1, 2, 3, 4, 5];
            let (kv, _) = model.prefill(&w);
            drop(cache.insert(&w, &kv));
        }
        assert!(cache.stats().bytes <= 2 * one_window + one_window / 2);
    }

    #[test]
    fn telemetry_mirrors_internal_counters() {
        let registry = wisdom_telemetry::Registry::new();
        let telemetry = PrefixCacheTelemetry::register(&registry);
        let model = tiny_model();
        let (kv, _) = model.prefill(&[1, 2, 3, 4]);
        let one_window = Segment::from_cache(&kv, &[1, 2, 3, 4], 0, 4).bytes();
        let cache = PrefixKvCache::with_budget(2 * one_window + one_window / 2);
        cache.set_telemetry(telemetry.clone());
        assert!((telemetry.budget_bytes.get() - cache.stats().budget_bytes as f64).abs() < 0.5);

        // One miss, one insert, one hit — then eviction pressure.
        assert!(cache.lookup(&[1, 2, 3], 2).is_none());
        let (_kv, _lg, pin) = cache.prefill(&model, &[1, 2, 3, 4]);
        assert!(cache.lookup(&[1, 2, 3, 4, 5], 4).is_some());
        assert!(telemetry.pinned_bytes.get() > 0.0, "live pin shows up");
        drop(pin);
        for start in 10u32..16 {
            let w = [start, start + 1, 2, 3];
            let (kv, _) = model.prefill(&w);
            drop(cache.insert(&w, &kv));
        }

        let s = cache.stats();
        assert_eq!(telemetry.hits.get(), s.hits);
        assert_eq!(telemetry.misses.get(), s.misses);
        assert_eq!(telemetry.hit_tokens.get(), s.hit_tokens);
        assert_eq!(telemetry.evicted_segments.get(), s.evicted_segments);
        assert!(s.evicted_segments > 0, "pressure must evict: {s:?}");
        assert!((telemetry.bytes.get() - s.bytes as f64).abs() < 0.5);
        assert!((telemetry.segments.get() - s.segments as f64).abs() < 0.5);
        assert!(
            (telemetry.pinned_bytes.get() - 0.0).abs() < 0.5,
            "all pins released"
        );
    }

    #[test]
    fn prefill_via_cache_is_bit_identical() {
        let model = tiny_model();
        let cache = PrefixKvCache::default();
        let windows: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 4, 5, 6],
            vec![1, 2, 3, 4, 9, 9],
            vec![1, 2, 3],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            vec![],
            vec![4],
        ];
        for round in 0..2 {
            for w in &windows {
                let (kv_cold, lg_cold) = model.prefill(w);
                let (kv_warm, lg_warm, _pin) = cache.prefill(&model, w);
                let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&lg_cold), bits(&lg_warm), "round {round} window {w:?}");
                assert_eq!(kv_cold.len(), kv_warm.len());
                for l in 0..kv_cold.k.len() {
                    assert_eq!(bits(&kv_cold.k[l]), bits(&kv_warm.k[l]));
                    assert_eq!(bits(&kv_cold.v[l]), bits(&kv_warm.v[l]));
                }
            }
        }
        let s = cache.stats();
        assert!(s.hits > 0, "second round must hit: {s:?}");
    }
}
