//! Decoding options and the text-level generation interface.

use std::sync::Arc;

use wisdom_grammar::{Constraint, GrammarIndex};
use wisdom_tokenizer::BpeTokenizer;

use crate::batch::{generate_batch_with, DecodeRequest};
use crate::prefix_cache::PrefixKvCache;
use crate::transformer::TransformerLm;

/// Decoding strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Pick the argmax token at every step (the paper's evaluation setting:
    /// "all results presented thereafter were obtained using greedy
    /// decoding").
    Greedy,
    /// Sample from the `k` most likely tokens at the given temperature.
    TopK {
        /// Number of candidates kept.
        k: usize,
        /// Softmax temperature (>0).
        temperature: f32,
    },
    /// Beam search with the given width, length-normalized scores (the
    /// decoding upgrade the paper lists as expected improvement).
    Beam {
        /// Number of beams kept per step (≥1; 1 degenerates to greedy).
        width: usize,
    },
}

/// Options controlling autoregressive generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationOptions {
    /// Maximum number of new tokens to produce.
    pub max_new_tokens: usize,
    /// Decoding strategy.
    pub strategy: Strategy,
    /// Seed for sampling strategies (ignored by greedy).
    pub seed: u64,
}

impl Default for GenerationOptions {
    fn default() -> Self {
        Self {
            max_new_tokens: 160,
            strategy: Strategy::Greedy,
            seed: 0,
        }
    }
}

/// A text-in / text-out code completion engine.
///
/// Implemented by the transformer (via [`LmTextGenerator`]), the n-gram
/// baseline, and the retrieval stand-in for Codex, so the evaluation harness
/// can score them uniformly.
pub trait TextGenerator: Send + Sync {
    /// Completes `prompt`, returning only the newly generated text.
    fn complete(&self, prompt: &str, opts: &GenerationOptions) -> String;

    /// Completes many prompts, returning one completion per prompt in input
    /// order. Each result is identical to [`Self::complete`] on that prompt.
    ///
    /// The default maps [`Self::complete`] over chunks on scoped threads;
    /// [`LmTextGenerator`] overrides it with continuous-batching decode so
    /// the batch shares forward passes instead of cores.
    fn complete_batch(&self, prompts: &[String], opts: &GenerationOptions) -> Vec<String> {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(prompts.len().max(1));
        if workers <= 1 {
            return prompts.iter().map(|p| self.complete(p, opts)).collect();
        }
        let chunk = prompts.len().div_ceil(workers);
        let mut out = Vec::with_capacity(prompts.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = prompts
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|p| self.complete(p, opts))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("completion worker panicked"));
            }
        });
        out
    }

    /// Human-readable model name for reports.
    fn model_name(&self) -> String;
}

/// A [`TransformerLm`] paired with its tokenizer, exposing text completion.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use wisdom_model::{GenerationOptions, LmTextGenerator, ModelConfig, TextGenerator, TransformerLm};
/// use wisdom_prng::Prng;
/// use wisdom_tokenizer::BpeTokenizer;
///
/// let tok = Arc::new(BpeTokenizer::train(["- name: x\n"], 280));
/// let cfg = ModelConfig { vocab_size: tok.vocab_size(), d_model: 16, n_layers: 1, n_heads: 2, context_window: 32 };
/// let mut rng = Prng::seed_from_u64(0);
/// let model = TransformerLm::new(cfg, &mut rng);
/// let gen = LmTextGenerator::new("demo", model, tok);
/// let out = gen.complete("- name: ", &GenerationOptions { max_new_tokens: 4, ..Default::default() });
/// assert!(out.len() < 100);
/// ```
#[derive(Debug, Clone)]
pub struct LmTextGenerator {
    name: String,
    model: TransformerLm,
    tokenizer: Arc<BpeTokenizer>,
    /// Compiled grammar every completion decodes under; `None` leaves the
    /// decode paths exactly as before.
    grammar: Option<Arc<GrammarIndex>>,
}

impl LmTextGenerator {
    /// Wraps a model and its tokenizer under a display name.
    pub fn new(
        name: impl Into<String>,
        model: TransformerLm,
        tokenizer: Arc<BpeTokenizer>,
    ) -> Self {
        Self {
            name: name.into(),
            model,
            tokenizer,
            grammar: None,
        }
    }

    /// Returns this generator decoding under `constraint`: the grammar is
    /// compiled against the tokenizer once and every subsequent
    /// `complete`/`complete_batch` masks its picks through it.
    /// [`Constraint::None`] removes any constraint.
    pub fn with_constraint(mut self, constraint: Constraint) -> Self {
        self.grammar = GrammarIndex::build(&self.tokenizer, constraint);
        self
    }

    /// The constraint completions decode under.
    pub fn constraint(&self) -> Constraint {
        self.grammar
            .as_ref()
            .map_or(Constraint::None, |g| g.constraint())
    }

    /// The compiled grammar, when a constraint is set.
    pub fn grammar(&self) -> Option<&Arc<GrammarIndex>> {
        self.grammar.as_ref()
    }

    /// The underlying model.
    pub fn model(&self) -> &TransformerLm {
        &self.model
    }

    /// The tokenizer shared with the model.
    pub fn tokenizer(&self) -> &Arc<BpeTokenizer> {
        &self.tokenizer
    }
}

impl TextGenerator for LmTextGenerator {
    fn complete(&self, prompt: &str, opts: &GenerationOptions) -> String {
        let ids = self.tokenizer.encode(prompt);
        let stops = [self.tokenizer.eot(), self.tokenizer.sep()];
        let out = self
            .model
            .generate_constrained(&ids, &stops, opts, self.grammar.as_ref(), None);
        self.tokenizer.decode(&out)
    }

    /// Batched decode: all prompts share one continuously refilled
    /// [`DecodeBatch`](crate::DecodeBatch) so B in-flight sequences cost one
    /// B×d matmul per projection per token instead of B matvec chains.
    /// Admissions share a [`PrefixKvCache`], so the shared contexts the
    /// evaluation harness replays (PB+NL→T, T+NL→T prompt scaffolds) only
    /// pay prefill for their unique suffixes.
    fn complete_batch(&self, prompts: &[String], opts: &GenerationOptions) -> Vec<String> {
        let stops = vec![self.tokenizer.eot(), self.tokenizer.sep()];
        let requests: Vec<DecodeRequest> = prompts
            .iter()
            .map(|p| DecodeRequest {
                prompt: self.tokenizer.encode(p),
                stops: stops.clone(),
                opts: *opts,
                grammar: self.grammar.clone(),
            })
            .collect();
        let prefix_cache = Arc::new(PrefixKvCache::default());
        generate_batch_with(&self.model, requests, 8, Some(prefix_cache))
            .iter()
            .map(|out| self.tokenizer.decode(out))
            .collect()
    }

    fn model_name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_greedy() {
        let opts = GenerationOptions::default();
        assert_eq!(opts.strategy, Strategy::Greedy);
        assert!(opts.max_new_tokens > 0);
    }
}
