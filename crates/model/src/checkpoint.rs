//! Lossless text checkpoints for [`TransformerLm`].
//!
//! The format is line-oriented: a header with the architecture, then one
//! line per parameter tensor (`name rows cols` followed by
//! whitespace-separated f32 bit patterns in hex). Hex bit patterns make the
//! round trip exact — `load(save(m))` reproduces generation bit-for-bit.

use std::error::Error;
use std::fmt;

use crate::config::ModelConfig;
use crate::transformer::TransformerLm;

/// Error while restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadCheckpointError {
    /// Missing or malformed header.
    BadHeader(String),
    /// A tensor line was malformed or inconsistent.
    BadTensor {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Checkpoint had the wrong number of tensors for its architecture.
    WrongShape(String),
}

impl fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadCheckpointError::BadHeader(m) => write!(f, "bad checkpoint header: {m}"),
            LoadCheckpointError::BadTensor { line, message } => {
                write!(f, "bad tensor at line {line}: {message}")
            }
            LoadCheckpointError::WrongShape(m) => write!(f, "inconsistent checkpoint: {m}"),
        }
    }
}

impl Error for LoadCheckpointError {}

/// Serializes a model to the text checkpoint format.
///
/// # Panics
///
/// Panics on an int8-packed model (its f32 weight storage is freed);
/// convert with `set_precision(Precision::F32)` first.
pub fn save_checkpoint(model: &TransformerLm) -> String {
    assert!(
        model.precision() != crate::transformer::Precision::Int8,
        "cannot checkpoint an int8-packed model; convert with \
         set_precision(Precision::F32) first"
    );
    let cfg = model.config();
    let mut out = format!(
        "wisdom-lm v1 vocab={} d_model={} layers={} heads={} ctx={}\n",
        cfg.vocab_size, cfg.d_model, cfg.n_layers, cfg.n_heads, cfg.context_window
    );
    for (name, data, rows, cols) in model.named_parameters() {
        out.push_str(&format!("{name} {rows} {cols}"));
        for v in data {
            out.push(' ');
            out.push_str(&format!("{:x}", v.to_bits()));
        }
        out.push('\n');
    }
    out
}

/// Restores a model from [`save_checkpoint`] output.
///
/// # Errors
///
/// Returns [`LoadCheckpointError`] on any format or shape mismatch.
pub fn load_checkpoint(text: &str) -> Result<TransformerLm, LoadCheckpointError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| LoadCheckpointError::BadHeader("empty file".to_string()))?;
    let mut fields = header.split_whitespace();
    if fields.next() != Some("wisdom-lm") || fields.next() != Some("v1") {
        return Err(LoadCheckpointError::BadHeader(header.to_string()));
    }
    let mut get = |key: &str| -> Result<usize, LoadCheckpointError> {
        fields
            .next()
            .and_then(|f| f.strip_prefix(key))
            .and_then(|v| v.strip_prefix('='))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| LoadCheckpointError::BadHeader(format!("missing {key}")))
    };
    let cfg = ModelConfig {
        vocab_size: get("vocab")?,
        d_model: get("d_model")?,
        n_layers: get("layers")?,
        n_heads: get("heads")?,
        context_window: get("ctx")?,
    };
    let mut rng = wisdom_prng::Prng::seed_from_u64(0);
    let mut model = TransformerLm::new(cfg, &mut rng);
    let mut loaded = 0usize;
    for (idx, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 2;
        let mut parts = line.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| LoadCheckpointError::BadTensor {
                line: lineno,
                message: "missing name".to_string(),
            })?
            .to_string();
        let rows: usize = parts.next().and_then(|p| p.parse().ok()).ok_or_else(|| {
            LoadCheckpointError::BadTensor {
                line: lineno,
                message: "missing rows".to_string(),
            }
        })?;
        let cols: usize = parts.next().and_then(|p| p.parse().ok()).ok_or_else(|| {
            LoadCheckpointError::BadTensor {
                line: lineno,
                message: "missing cols".to_string(),
            }
        })?;
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            let bits = u32::from_str_radix(p, 16).map_err(|_| LoadCheckpointError::BadTensor {
                line: lineno,
                message: format!("bad hex value {p:?}"),
            })?;
            data.push(f32::from_bits(bits));
        }
        if data.len() != rows * cols {
            return Err(LoadCheckpointError::BadTensor {
                line: lineno,
                message: format!("expected {} values, got {}", rows * cols, data.len()),
            });
        }
        model
            .set_parameter(&name, rows, cols, &data)
            .map_err(|message| LoadCheckpointError::BadTensor {
                line: lineno,
                message,
            })?;
        loaded += 1;
    }
    let expected = model.named_parameters().count();
    if loaded != expected {
        return Err(LoadCheckpointError::WrongShape(format!(
            "expected {expected} tensors, loaded {loaded}"
        )));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::GenerationOptions;
    use wisdom_prng::Prng;

    fn model() -> TransformerLm {
        let cfg = ModelConfig {
            vocab_size: 40,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: 12,
        };
        let mut rng = Prng::seed_from_u64(3);
        TransformerLm::new(cfg, &mut rng)
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let m = model();
        let text = save_checkpoint(&m);
        let restored = load_checkpoint(&text).expect("load");
        assert_eq!(restored.config(), m.config());
        let opts = GenerationOptions {
            max_new_tokens: 8,
            ..Default::default()
        };
        assert_eq!(
            m.generate(&[1, 2, 3], &[0], &opts),
            restored.generate(&[1, 2, 3], &[0], &opts)
        );
        let a = m.next_token_logits(&[5, 6]);
        let b = restored.next_token_logits(&[5, 6]);
        assert_eq!(a, b, "logits must match bit-for-bit");
    }

    #[test]
    fn header_errors() {
        assert!(matches!(
            load_checkpoint(""),
            Err(LoadCheckpointError::BadHeader(_))
        ));
        assert!(matches!(
            load_checkpoint("other v1 vocab=4\n"),
            Err(LoadCheckpointError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_tensor_rejected() {
        let m = model();
        let text = save_checkpoint(&m);
        // Chop the last value off the final tensor line.
        let trimmed = text.trim_end().rsplit_once(' ').expect("values").0;
        assert!(matches!(
            load_checkpoint(trimmed),
            Err(LoadCheckpointError::BadTensor { .. })
        ));
    }

    #[test]
    fn missing_tensors_rejected() {
        let m = model();
        let text = save_checkpoint(&m);
        let first_two_lines: Vec<&str> = text.lines().take(3).collect();
        assert!(matches!(
            load_checkpoint(&first_two_lines.join("\n")),
            Err(LoadCheckpointError::WrongShape(_))
        ));
    }

    #[test]
    fn unknown_tensor_name_rejected() {
        let m = model();
        let mut text = save_checkpoint(&m);
        text = text.replacen("tok_emb", "bogus_name", 1);
        assert!(matches!(
            load_checkpoint(&text),
            Err(LoadCheckpointError::BadTensor { .. })
        ));
    }
}
