//! Language models for Ansible Wisdom.
//!
//! Three model families play the roles of the paper's systems:
//!
//! * [`TransformerLm`] — the decoder-only GPT-architecture model standing in
//!   for CodeGen/Wisdom checkpoints, with tape-based training
//!   ([`pretrain`] / [`finetune`]) and KV-cache inference;
//! * [`NgramLm`] — a classical back-off baseline;
//! * [`RetrievalModel`] — the contamination-aware stand-in for
//!   Codex-Davinci-002.
//!
//! All are scored through the common [`TextGenerator`] trait.
//!
//! # Examples
//!
//! ```
//! use wisdom_model::{GenerationOptions, ModelConfig, TransformerLm};
//! use wisdom_prng::Prng;
//!
//! let cfg = ModelConfig { vocab_size: 64, d_model: 16, n_layers: 1, n_heads: 2, context_window: 16 };
//! let mut rng = Prng::seed_from_u64(7);
//! let model = TransformerLm::new(cfg, &mut rng);
//! let out = model.generate(&[1, 2, 3], &[0], &GenerationOptions { max_new_tokens: 4, ..Default::default() });
//! assert!(out.len() <= 4);
//! ```

mod batch;
mod checkpoint;
mod config;
mod decode;
mod ngram;
mod prefix_cache;
mod replica;
mod retrieval;
mod speculative;
mod telemetry;
mod train;
mod transformer;

pub use batch::{
    generate_batch, generate_batch_instrumented, generate_batch_speculative, generate_batch_with,
    BatchConfig, BatchScheduler, DecodeBatch, DecodeRequest, Pending, SchedulerStats,
    StreamingPending, SubmitError,
};
pub use checkpoint::{load_checkpoint, save_checkpoint, LoadCheckpointError};
pub use config::ModelConfig;
pub use decode::{GenerationOptions, LmTextGenerator, Strategy, TextGenerator};
pub use ngram::{NgramLm, NgramTextGenerator};
pub use prefix_cache::{
    CachedPrefix, PrefixCacheConfig, PrefixCacheStats, PrefixKvCache, PrefixPin,
};
pub use replica::{PoolStats, ReplicaPool, ReplicaTelemetry};
pub use retrieval::RetrievalModel;
pub use speculative::{
    DraftKind, NgramSpeculator, SelfDraftSpeculator, SpeculativeConfig, SpeculativeDecoder,
    SpeculativeReport, Speculator,
};
pub use telemetry::{
    BatchTelemetry, GrammarTelemetry, PrefixCacheTelemetry, QuantTelemetry, SpeculativeTelemetry,
};
// Re-exported so the serving layers (`wisdom-core`, `wisdom-server`) can
// build and attach grammar constraints without a direct `wisdom-grammar`
// dependency.
pub use train::{
    finetune, finetune_with_epochs, pack_documents, pretrain, EpochFn, FinetuneConfig,
    PretrainConfig, ProgressFn, SftSample,
};
pub use transformer::{KvCache, Precision, TransformerLm};
pub use wisdom_grammar::{Constraint, GrammarCursor, GrammarIndex, GrammarStats, MaskOutcome};
