//! The decoder-only transformer language model (the CodeGen-architecture
//! stand-in), with a tape-based training path and a fast KV-cache inference
//! path.

use std::sync::Arc;

use wisdom_prng::Prng;
use wisdom_tensor::kernels::{
    dot, gelu, matmul, matmul_acc, matmul_q8, matmul_q8_acc, matvec_q8_acc, softmax_row,
};
use wisdom_tensor::{
    clip_scale, global_grad_norm, Adam, ParamTensor, QuantMatrix, Tape, TensorRef,
};

use wisdom_grammar::{GrammarCursor, GrammarIndex};

use crate::config::ModelConfig;
use crate::decode::{GenerationOptions, Strategy};
use crate::telemetry::{GrammarTelemetry, QuantTelemetry};

/// Numeric precision of the weight matrices the inference path multiplies
/// against (activations, embeddings, biases, and layer norms stay f32 in
/// every mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// f32 weights through the f32 blocked kernels (the default).
    #[default]
    F32,
    /// wq/wk/wv/wo/w1/w2 and the LM head packed to per-block int8; the
    /// inference path runs the quantized GEBP kernels, dequantizing
    /// in-register. ~4x smaller weight working set; f32 storage is freed.
    Int8,
    /// The agreement oracle for [`Precision::Int8`]: the same matrices are
    /// quantized then immediately dequantized back to f32 at conversion
    /// time, and inference runs the unmodified f32 kernels. Bit-identical
    /// outputs to `Int8`, none of the speed.
    Int8Dequant,
}

impl Precision {
    /// Stable lowercase name (used by `/v1/stats` and config parsing).
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
            Precision::Int8Dequant => "int8-dequant",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            "int8-dequant" | "int8_dequant" => Ok(Precision::Int8Dequant),
            other => Err(format!(
                "unknown precision {other:?}; expected f32, int8, or int8-dequant"
            )),
        }
    }
}

/// Per-block int8 packings of one transformer block's weight matrices.
#[derive(Debug)]
struct QuantBlock {
    wq: QuantMatrix,
    wk: QuantMatrix,
    wv: QuantMatrix,
    wo: QuantMatrix,
    w1: QuantMatrix,
    w2: QuantMatrix,
}

/// The packed weights of an [`Precision::Int8`] model. Held behind an `Arc`
/// so cloning the model (scheduler spawn, beam search) shares the packing.
#[derive(Debug)]
struct QuantWeights {
    blocks: Vec<QuantBlock>,
    lm_head: QuantMatrix,
}

impl QuantWeights {
    fn matrices(&self) -> impl Iterator<Item = &QuantMatrix> {
        self.blocks
            .iter()
            .flat_map(|b| [&b.wq, &b.wk, &b.wv, &b.wo, &b.w1, &b.w2])
            .chain([&self.lm_head])
    }
}

/// Parameters of one transformer block, in canonical order.
#[derive(Debug, Clone)]
struct Block {
    ln1_g: ParamTensor,
    ln1_b: ParamTensor,
    wq: ParamTensor,
    bq: ParamTensor,
    wk: ParamTensor,
    bk: ParamTensor,
    wv: ParamTensor,
    bv: ParamTensor,
    wo: ParamTensor,
    bo: ParamTensor,
    ln2_g: ParamTensor,
    ln2_b: ParamTensor,
    w1: ParamTensor,
    b1: ParamTensor,
    w2: ParamTensor,
    b2: ParamTensor,
}

/// A GPT-style decoder-only language model over token ids.
///
/// # Examples
///
/// ```
/// use wisdom_model::{ModelConfig, TransformerLm};
/// use wisdom_prng::Prng;
///
/// let cfg = ModelConfig { vocab_size: 50, d_model: 16, n_layers: 1, n_heads: 2, context_window: 16 };
/// let mut rng = Prng::seed_from_u64(0);
/// let model = TransformerLm::new(cfg, &mut rng);
/// let logits = model.next_token_logits(&[1, 2, 3]);
/// assert_eq!(logits.len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct TransformerLm {
    cfg: ModelConfig,
    tok_emb: ParamTensor,
    pos_emb: ParamTensor,
    blocks: Vec<Block>,
    lnf_g: ParamTensor,
    lnf_b: ParamTensor,
    lm_head: ParamTensor,
    /// Weight precision; [`Precision::Int8`] keeps the packed form in
    /// `quant` and empties the corresponding f32 `data` buffers.
    precision: Precision,
    quant: Option<Arc<QuantWeights>>,
    /// Optional quantized/f32 matmul counters; `None` keeps the hot path
    /// uninstrumented.
    quant_telemetry: Option<QuantTelemetry>,
}

impl TransformerLm {
    /// Creates a model with GPT-2-style initialization (N(0, 0.02) weights,
    /// residual projections scaled by 1/√(2·layers)).
    pub fn new(cfg: ModelConfig, rng: &mut Prng) -> Self {
        let d = cfg.d_model;
        let ff = cfg.d_ff();
        let std = 0.02;
        let res_std = std / ((2 * cfg.n_layers) as f32).sqrt();
        let blocks = (0..cfg.n_layers)
            .map(|_| Block {
                ln1_g: ParamTensor::constant(1, d, 1.0),
                ln1_b: ParamTensor::zeros(1, d),
                wq: ParamTensor::randn(d, d, std, rng),
                bq: ParamTensor::zeros(1, d),
                wk: ParamTensor::randn(d, d, std, rng),
                bk: ParamTensor::zeros(1, d),
                wv: ParamTensor::randn(d, d, std, rng),
                bv: ParamTensor::zeros(1, d),
                wo: ParamTensor::randn(d, d, res_std, rng),
                bo: ParamTensor::zeros(1, d),
                ln2_g: ParamTensor::constant(1, d, 1.0),
                ln2_b: ParamTensor::zeros(1, d),
                w1: ParamTensor::randn(d, ff, std, rng),
                b1: ParamTensor::zeros(1, ff),
                w2: ParamTensor::randn(ff, d, res_std, rng),
                b2: ParamTensor::zeros(1, d),
            })
            .collect();
        Self {
            tok_emb: ParamTensor::randn(cfg.vocab_size, d, std, rng),
            pos_emb: ParamTensor::randn(cfg.context_window, d, 0.01, rng),
            blocks,
            lnf_g: ParamTensor::constant(1, d, 1.0),
            lnf_b: ParamTensor::zeros(1, d),
            lm_head: ParamTensor::randn(d, cfg.vocab_size, std, rng),
            cfg,
            precision: Precision::F32,
            quant: None,
            quant_telemetry: None,
        }
    }

    /// The current weight precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Converts the weight storage to `precision`.
    ///
    /// `F32 → Int8` packs wq/wk/wv/wo/w1/w2 and the LM head to per-block
    /// int8 and frees their f32 storage (embeddings, biases, and layer
    /// norms stay f32); `F32 → Int8Dequant` round-trips the same matrices
    /// through the quantizer but keeps f32 storage and the f32 kernels.
    /// Transitions *out of* `Int8` restore the dequantized values — the
    /// pre-quantization weights are discarded at packing time.
    pub fn set_precision(&mut self, precision: Precision) {
        if precision == self.precision {
            return;
        }
        if let Some(quant) = self.quant.take() {
            for (b, qb) in self.blocks.iter_mut().zip(quant.blocks.iter()) {
                b.wq.data = qb.wq.dequantize();
                b.wk.data = qb.wk.dequantize();
                b.wv.data = qb.wv.dequantize();
                b.wo.data = qb.wo.dequantize();
                b.w1.data = qb.w1.dequantize();
                b.w2.data = qb.w2.dequantize();
            }
            self.lm_head.data = quant.lm_head.dequantize();
        }
        match precision {
            Precision::F32 => {}
            Precision::Int8Dequant => {
                for b in &mut self.blocks {
                    for w in [
                        &mut b.wq, &mut b.wk, &mut b.wv, &mut b.wo, &mut b.w1, &mut b.w2,
                    ] {
                        w.data = QuantMatrix::quantize(&w.data, w.rows, w.cols).dequantize();
                    }
                }
                let h = &mut self.lm_head;
                h.data = QuantMatrix::quantize(&h.data, h.rows, h.cols).dequantize();
            }
            Precision::Int8 => {
                fn pack(w: &mut ParamTensor) -> QuantMatrix {
                    let q = QuantMatrix::quantize(&w.data, w.rows, w.cols);
                    w.data = Vec::new();
                    q
                }
                let blocks = self
                    .blocks
                    .iter_mut()
                    .map(|b| QuantBlock {
                        wq: pack(&mut b.wq),
                        wk: pack(&mut b.wk),
                        wv: pack(&mut b.wv),
                        wo: pack(&mut b.wo),
                        w1: pack(&mut b.w1),
                        w2: pack(&mut b.w2),
                    })
                    .collect();
                let lm_head = pack(&mut self.lm_head);
                self.quant = Some(Arc::new(QuantWeights { blocks, lm_head }));
            }
        }
        self.precision = precision;
    }

    /// [`Self::set_precision`] by value, for construction chains.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.set_precision(precision);
        self
    }

    /// Bytes of packed int8 weights resident (values plus per-block
    /// scales/offsets); `0` unless the precision is [`Precision::Int8`].
    pub fn quant_weight_bytes(&self) -> usize {
        self.quant
            .as_deref()
            .map_or(0, |q| q.matrices().map(QuantMatrix::packed_bytes).sum())
    }

    /// f32 weight bytes the int8 packing replaced, minus the packed bytes;
    /// `0` unless the precision is [`Precision::Int8`].
    pub fn quant_weight_bytes_saved(&self) -> usize {
        self.quant.as_deref().map_or(0, |q| {
            q.matrices()
                .map(|m| m.f32_bytes().saturating_sub(m.packed_bytes()))
                .sum()
        })
    }

    /// Installs (or clears) the quantized/f32 matmul counters recorded by
    /// every weight projection on the inference path.
    pub fn set_quant_telemetry(&mut self, telemetry: Option<QuantTelemetry>) {
        self.quant_telemetry = telemetry;
    }

    #[inline]
    fn qblock(&self, l: usize) -> Option<&QuantBlock> {
        self.quant.as_deref().map(|q| &q.blocks[l])
    }

    #[inline]
    fn note_matmul(&self, int8: bool) {
        if let Some(t) = &self.quant_telemetry {
            if int8 {
                t.matmuls_int8.inc();
            } else {
                t.matmuls_f32.inc();
            }
        }
    }

    /// `out += a (m×k) @ W (k×n)` through whichever kernel the precision
    /// selects; `qm` is the packed form of `w` when the model is int8.
    #[allow(clippy::too_many_arguments)]
    fn proj_acc(
        &self,
        a: &[f32],
        w: &ParamTensor,
        qm: Option<&QuantMatrix>,
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        match qm {
            Some(q) => {
                matmul_q8_acc(a, q, m, out);
                self.note_matmul(true);
            }
            None => {
                matmul_acc(a, &w.data, m, k, n, out);
                self.note_matmul(false);
            }
        }
    }

    /// Zero-skipping matvec counterpart of [`Self::proj_acc`] for the solo
    /// decode step — both arms skip `x` entries that are exactly `0.0`, so
    /// the int8 arm stays bit-identical to the f32 arm over dequantized
    /// weights.
    fn proj_vec_acc(
        &self,
        x: &[f32],
        w: &ParamTensor,
        qm: Option<&QuantMatrix>,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        match qm {
            Some(q) => {
                matvec_q8_acc(x, q, out);
                self.note_matmul(true);
            }
            None => {
                matvec_acc(x, &w.data, k, n, out);
                self.note_matmul(false);
            }
        }
    }

    /// `out = xf (m×d) @ lm_head (d×vocab)`, overwrite semantics.
    fn head_matmul(&self, xf: &[f32], m: usize, out: &mut [f32]) {
        match self.quant.as_deref() {
            Some(q) => {
                matmul_q8(xf, &q.lm_head, m, out);
                self.note_matmul(true);
            }
            None => {
                matmul(
                    &xf[..m * self.cfg.d_model],
                    &self.lm_head.data,
                    m,
                    self.cfg.d_model,
                    self.cfg.vocab_size,
                    out,
                );
                self.note_matmul(false);
            }
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Total trainable parameter count (shape-derived, so it is unchanged
    /// by int8 packing even though packed tensors free their f32 storage).
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.rows * p.cols).sum()
    }

    /// Grows (or re-targets) the context window, e.g. when fine-tuning a
    /// checkpoint with a different window than pre-training. Existing
    /// position rows are kept; new rows are freshly initialized.
    pub fn resize_context(&mut self, new_window: usize, rng: &mut Prng) {
        if new_window == self.cfg.context_window {
            return;
        }
        let d = self.cfg.d_model;
        let mut new_pos = ParamTensor::randn(new_window, d, 0.01, rng);
        let copy_rows = new_window.min(self.cfg.context_window);
        new_pos.data[..copy_rows * d].copy_from_slice(&self.pos_emb.data[..copy_rows * d]);
        self.pos_emb = new_pos;
        self.cfg.context_window = new_window;
    }

    /// Iterates over `(name, data, rows, cols)` for every parameter tensor,
    /// in canonical order (used by checkpointing).
    pub fn named_parameters(&self) -> impl Iterator<Item = (String, &[f32], usize, usize)> {
        self.param_names()
            .into_iter()
            .zip(self.params())
            .map(|(name, p)| (name, p.data.as_slice(), p.rows, p.cols))
    }

    /// Overwrites one named parameter tensor.
    ///
    /// # Errors
    ///
    /// Returns a message when the name is unknown or the shape mismatches.
    pub fn set_parameter(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        data: &[f32],
    ) -> Result<(), String> {
        let names = self.param_names();
        let idx = names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| format!("unknown parameter {name:?}"))?;
        let mut params = self.params_mut();
        let p = &mut params[idx];
        if (p.rows, p.cols) != (rows, cols) || data.len() != p.data.len() {
            return Err(format!(
                "shape mismatch for {name}: checkpoint {rows}x{cols}, model {}x{}",
                p.rows, p.cols
            ));
        }
        p.data.copy_from_slice(data);
        Ok(())
    }

    fn param_names(&self) -> Vec<String> {
        let mut names = vec!["tok_emb".to_string(), "pos_emb".to_string()];
        for l in 0..self.cfg.n_layers {
            for field in [
                "ln1_g", "ln1_b", "wq", "bq", "wk", "bk", "wv", "bv", "wo", "bo", "ln2_g", "ln2_b",
                "w1", "b1", "w2", "b2",
            ] {
                names.push(format!("block{l}.{field}"));
            }
        }
        names.extend([
            "lnf_g".to_string(),
            "lnf_b".to_string(),
            "lm_head".to_string(),
        ]);
        names
    }

    fn params(&self) -> Vec<&ParamTensor> {
        let mut v: Vec<&ParamTensor> = vec![&self.tok_emb, &self.pos_emb];
        for b in &self.blocks {
            v.extend([
                &b.ln1_g, &b.ln1_b, &b.wq, &b.bq, &b.wk, &b.bk, &b.wv, &b.bv, &b.wo, &b.bo,
                &b.ln2_g, &b.ln2_b, &b.w1, &b.b1, &b.w2, &b.b2,
            ]);
        }
        v.extend([&self.lnf_g, &self.lnf_b, &self.lm_head]);
        v
    }

    fn params_mut(&mut self) -> Vec<&mut ParamTensor> {
        let mut v: Vec<&mut ParamTensor> = vec![&mut self.tok_emb, &mut self.pos_emb];
        for b in &mut self.blocks {
            v.extend([
                &mut b.ln1_g,
                &mut b.ln1_b,
                &mut b.wq,
                &mut b.bq,
                &mut b.wk,
                &mut b.bk,
                &mut b.wv,
                &mut b.bv,
                &mut b.wo,
                &mut b.bo,
                &mut b.ln2_g,
                &mut b.ln2_b,
                &mut b.w1,
                &mut b.b1,
                &mut b.w2,
                &mut b.b2,
            ]);
        }
        v.extend([&mut self.lnf_g, &mut self.lnf_b, &mut self.lm_head]);
        v
    }

    /// Builds the training graph and returns `(loss, logits, param_leaves)`.
    fn forward_tape(
        &self,
        tape: &mut Tape,
        tokens: &[u32],
        targets: &[usize],
        batch: usize,
        time: usize,
    ) -> (TensorRef, TensorRef, Vec<TensorRef>) {
        assert_eq!(tokens.len(), batch * time, "token count");
        assert_eq!(targets.len(), batch * time, "target count");
        assert!(time <= self.cfg.context_window, "time exceeds context");
        assert!(
            self.precision != Precision::Int8,
            "the training/tape forward needs f32 weight storage; convert the \
             model with set_precision(Precision::F32) first"
        );
        let leaves: Vec<TensorRef> = self
            .params()
            .into_iter()
            .map(|p| tape.leaf(p.data.clone(), p.rows, p.cols))
            .collect();
        let mut li = leaves.iter().copied();
        let tok_emb = li.next().expect("tok_emb leaf");
        let pos_emb = li.next().expect("pos_emb leaf");

        let tok_ids: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
        let pos_ids: Vec<usize> = (0..batch * time).map(|r| r % time).collect();
        let te = tape.embedding(tok_emb, &tok_ids);
        let pe = tape.embedding(pos_emb, &pos_ids);
        let mut x = tape.add(te, pe);

        for _ in 0..self.cfg.n_layers {
            let ln1_g = li.next().expect("ln1_g");
            let ln1_b = li.next().expect("ln1_b");
            let wq = li.next().expect("wq");
            let bq = li.next().expect("bq");
            let wk = li.next().expect("wk");
            let bk = li.next().expect("bk");
            let wv = li.next().expect("wv");
            let bv = li.next().expect("bv");
            let wo = li.next().expect("wo");
            let bo = li.next().expect("bo");
            let ln2_g = li.next().expect("ln2_g");
            let ln2_b = li.next().expect("ln2_b");
            let w1 = li.next().expect("w1");
            let b1 = li.next().expect("b1");
            let w2 = li.next().expect("w2");
            let b2 = li.next().expect("b2");

            let h = tape.layer_norm(x, ln1_g, ln1_b);
            let q0 = tape.matmul(h, wq);
            let q = tape.add_row_bias(q0, bq);
            let k0 = tape.matmul(h, wk);
            let k = tape.add_row_bias(k0, bk);
            let v0 = tape.matmul(h, wv);
            let v = tape.add_row_bias(v0, bv);
            let att = tape.causal_attention(q, k, v, batch, time, self.cfg.n_heads);
            let proj0 = tape.matmul(att, wo);
            let proj = tape.add_row_bias(proj0, bo);
            x = tape.add(x, proj);

            let h2 = tape.layer_norm(x, ln2_g, ln2_b);
            let m0 = tape.matmul(h2, w1);
            let m1 = tape.add_row_bias(m0, b1);
            let m2 = tape.gelu(m1);
            let m3 = tape.matmul(m2, w2);
            let m4 = tape.add_row_bias(m3, b2);
            x = tape.add(x, m4);
        }
        let lnf_g = li.next().expect("lnf_g");
        let lnf_b = li.next().expect("lnf_b");
        let lm_head = li.next().expect("lm_head");
        let xf = tape.layer_norm(x, lnf_g, lnf_b);
        let logits = tape.matmul(xf, lm_head);
        let loss = tape.cross_entropy(logits, targets);
        (loss, logits, leaves)
    }

    /// Evaluation loss on one batch (no gradient computation).
    ///
    /// Targets equal to `usize::MAX` are ignored (padding / prompt masking).
    pub fn loss(&self, tokens: &[u32], targets: &[usize], batch: usize, time: usize) -> f32 {
        let mut tape = Tape::new();
        let (loss, _, _) = self.forward_tape(&mut tape, tokens, targets, batch, time);
        tape.data(loss)[0]
    }

    /// Full-batch logits via the training graph: `(batch*time, vocab)`
    /// row-major. Used for validation and to cross-check the KV-cache path.
    pub fn batch_logits(&self, tokens: &[u32], batch: usize, time: usize) -> Vec<f32> {
        let mut tape = Tape::new();
        let targets = vec![usize::MAX; tokens.len()];
        let (_, logits, _) = self.forward_tape(&mut tape, tokens, &targets, batch, time);
        tape.data(logits).to_vec()
    }

    /// One optimization step on a batch; returns the loss before the update.
    ///
    /// Gradients are clipped to a global norm of `max_grad_norm` when it is
    /// finite and positive.
    pub fn train_step(
        &mut self,
        tokens: &[u32],
        targets: &[usize],
        batch: usize,
        time: usize,
        adam: &mut Adam,
        max_grad_norm: f32,
    ) -> f32 {
        let mut tape = Tape::new();
        let (loss, _, leaves) = self.forward_tape(&mut tape, tokens, targets, batch, time);
        let loss_value = tape.data(loss)[0];
        tape.backward(loss);
        let scale = if max_grad_norm.is_finite() && max_grad_norm > 0.0 {
            let norm = global_grad_norm(leaves.iter().map(|&l| tape.grad(l)));
            clip_scale(norm, max_grad_norm)
        } else {
            1.0
        };
        adam.begin_step();
        let params = self.params_mut();
        debug_assert_eq!(params.len(), leaves.len());
        for (param, leaf) in params.into_iter().zip(leaves) {
            if scale == 1.0 {
                adam.update(param, tape.grad(leaf));
            } else {
                let scaled: Vec<f32> = tape.grad(leaf).iter().map(|g| g * scale).collect();
                adam.update(param, &scaled);
            }
        }
        loss_value
    }

    /// Logits for the token following `prompt` (prompt is left-truncated to
    /// the context window). Inference path: one batched [`Self::prefill`]
    /// pass over the whole window.
    pub fn next_token_logits(&self, prompt: &[u32]) -> Vec<f32> {
        let start = prompt.len().saturating_sub(self.cfg.context_window);
        self.prefill(&prompt[start..]).1
    }

    /// Reference implementation of [`Self::next_token_logits`]: the same
    /// truncated window pushed through [`Self::step`] one token at a time.
    /// Kept public as the baseline the batched prefill is benchmarked and
    /// cross-checked against.
    pub fn next_token_logits_sequential(&self, prompt: &[u32]) -> Vec<f32> {
        let start = prompt.len().saturating_sub(self.cfg.context_window);
        self.prefill_sequential(&prompt[start..]).1
    }

    /// Sequential counterpart of [`Self::prefill`]: runs `window` through
    /// [`Self::step`] token by token. Same `(cache, logits)` contract.
    ///
    /// # Panics
    ///
    /// Panics if `window` exceeds the context window.
    pub fn prefill_sequential(&self, window: &[u32]) -> (KvCache, Vec<f32>) {
        let mut cache = KvCache::new(self);
        let mut logits = vec![0.0; self.cfg.vocab_size];
        for (pos, &tok) in window.iter().enumerate() {
            logits = self.step(tok, pos, &mut cache);
        }
        (cache, logits)
    }

    /// Runs the whole (pre-truncated) prompt `window` through the model in
    /// one batched forward pass, returning the filled KV cache and the
    /// next-token logits for the final position.
    ///
    /// This is the inference fast path: QKV and MLP projections are single
    /// `T×d` matmuls instead of `T` matvecs, K/V land in the cache in one
    /// `extend_from_slice` per layer, and the LM-head projection is computed
    /// only for the last position. Results are bit-identical to
    /// [`Self::prefill_sequential`] — both accumulate every output element
    /// in the same order.
    ///
    /// An empty window yields an empty cache and all-zero logits (matching
    /// the historical behavior of generation from an empty prompt).
    ///
    /// # Panics
    ///
    /// Panics if `window` exceeds the context window or contains an
    /// out-of-vocabulary token.
    pub fn prefill(&self, window: &[u32]) -> (KvCache, Vec<f32>) {
        let mut cache = KvCache::new(self);
        if window.is_empty() {
            return (cache, vec![0.0; self.cfg.vocab_size]);
        }
        let logits = self.prefill_continue(window, &mut cache);
        (cache, logits)
    }

    /// Runs `suffix` through the batched prefill pass *on top of* an already
    /// populated cache: row `r` of the suffix is processed at absolute
    /// position `cache.len() + r`, its K/V rows are appended to `cache`, and
    /// the returned logits are for the final suffix position.
    ///
    /// This is the prefix-cache fast path: when the leading tokens of a
    /// prompt window were spliced from
    /// [`PrefixKvCache`](crate::PrefixKvCache), only the remaining suffix
    /// pays for QKV/MLP projections. Because a K/V row at position `t`
    /// depends only on tokens `0..=t` — and the blocked kernels accumulate
    /// every output element over k in index order, independent of the row
    /// count of the matmul — the result is bit-identical to running
    /// [`Self::prefill`] over the full window (`prefill` itself is the
    /// `cache.len() == 0` case of this function).
    ///
    /// # Panics
    ///
    /// Panics if `cache.len() + suffix.len()` exceeds the context window or
    /// a token is out of vocabulary. An empty suffix returns all-zero
    /// logits (no new position was evaluated).
    pub fn prefill_continue(&self, suffix: &[u32], cache: &mut KvCache) -> Vec<f32> {
        let s_len = suffix.len();
        let d = self.cfg.d_model;
        let vocab = self.cfg.vocab_size;
        let x = self.prefill_hidden(suffix, cache);
        if x.is_empty() {
            return vec![0.0; vocab];
        }
        // LM head for the final position only: the earlier rows' logits are
        // never consumed during prefill, so S-1 d×vocab projections are
        // skipped.
        let xf = layer_norm_row(
            &x[(s_len - 1) * d..s_len * d],
            &self.lnf_g.data,
            &self.lnf_b.data,
        );
        let mut logits = vec![0.0f32; vocab];
        self.head_matmul(&xf, 1, &mut logits);
        logits
    }

    /// [`Self::prefill_continue`] returning the next-token logits at *every*
    /// suffix position, not just the last: row `r` of the result is the
    /// distribution over the token following `suffix[r]`.
    ///
    /// This is the verification pass of speculative decoding
    /// ([`crate::SpeculativeDecoder`]): `k + 1` draft positions are scored in
    /// one batched forward pass instead of `k + 1` sequential
    /// [`Self::step`] calls. Row `r` is bit-identical to the logits
    /// `step(suffix[r], cache.len() + r, …)` would return — the blocked
    /// kernels accumulate every output element over k in index order,
    /// independent of the matmul's row count, and the final layer norm is
    /// applied per row — so rejected draft tokens can be rolled back with
    /// [`KvCache::truncate`] without perturbing the surviving positions.
    ///
    /// # Panics
    ///
    /// Panics if `cache.len() + suffix.len()` exceeds the context window or
    /// a token is out of vocabulary. An empty suffix returns no rows.
    pub fn prefill_continue_all(&self, suffix: &[u32], cache: &mut KvCache) -> Vec<Vec<f32>> {
        let s_len = suffix.len();
        let d = self.cfg.d_model;
        let vocab = self.cfg.vocab_size;
        let x = self.prefill_hidden(suffix, cache);
        if x.is_empty() {
            return Vec::new();
        }
        let mut xf = vec![0.0f32; s_len * d];
        layer_norm_rows(&x, &self.lnf_g.data, &self.lnf_b.data, s_len, d, &mut xf);
        let mut logits = vec![0.0f32; s_len * vocab];
        self.head_matmul(&xf, s_len, &mut logits);
        logits.chunks(vocab).map(<[f32]>::to_vec).collect()
    }

    /// The shared body of [`Self::prefill_continue`] /
    /// [`Self::prefill_continue_all`]: runs `suffix` through every block on
    /// top of `cache`, appends the new K/V rows, and returns the final
    /// `S×d` hidden states (before the final layer norm / LM head). Empty
    /// for an empty suffix.
    fn prefill_hidden(&self, suffix: &[u32], cache: &mut KvCache) -> Vec<f32> {
        let start = cache.len();
        let s_len = suffix.len();
        let t_len = start + s_len;
        let d = self.cfg.d_model;
        let heads = self.cfg.n_heads;
        let hd = self.cfg.head_dim();
        let ff = self.cfg.d_ff();
        let vocab = self.cfg.vocab_size;
        assert!(
            t_len <= self.cfg.context_window,
            "prefill window {t_len} exceeds context {}",
            self.cfg.context_window
        );
        if s_len == 0 {
            return Vec::new();
        }
        let scale = 1.0 / (hd as f32).sqrt();

        // Token + position embeddings for the suffix rows: S×d, at absolute
        // positions `start..start + s_len`.
        let mut x = vec![0.0f32; s_len * d];
        for (r, &token) in suffix.iter().enumerate() {
            let tok = token as usize;
            assert!(tok < vocab, "token {tok} out of vocabulary");
            let pos = start + r;
            let row = &mut x[r * d..(r + 1) * d];
            for (i, xv) in row.iter_mut().enumerate() {
                *xv = self.tok_emb.data[tok * d + i] + self.pos_emb.data[pos * d + i];
            }
        }

        let mut h = vec![0.0f32; s_len * d];
        for (l, b) in self.blocks.iter().enumerate() {
            let qb = self.qblock(l);
            // attn
            layer_norm_rows(&x, &b.ln1_g.data, &b.ln1_b.data, s_len, d, &mut h);
            let mut q = bias_rows(&b.bq.data, s_len);
            self.proj_acc(&h, &b.wq, qb.map(|q| &q.wq), s_len, d, d, &mut q);
            let mut k = bias_rows(&b.bk.data, s_len);
            self.proj_acc(&h, &b.wk, qb.map(|q| &q.wk), s_len, d, d, &mut k);
            let mut v = bias_rows(&b.bv.data, s_len);
            self.proj_acc(&h, &b.wv, qb.map(|q| &q.wv), s_len, d, d, &mut v);
            cache.k[l].extend_from_slice(&k);
            cache.v[l].extend_from_slice(&v);
            // Causal attention: suffix position `start + r` attends to every
            // cached position 0..=start+r (spliced prefix rows included).
            let keys = &cache.k[l];
            let vals = &cache.v[l];
            let mut att = vec![0.0f32; s_len * d];
            for hi in 0..heads {
                let mut scores = vec![0.0f32; t_len];
                for r in 0..s_len {
                    let tq = start + r;
                    let q_h = &q[r * d + hi * hd..r * d + (hi + 1) * hd];
                    let scores = &mut scores[..=tq];
                    for (t, s) in scores.iter_mut().enumerate() {
                        let k_h = &keys[t * d + hi * hd..t * d + (hi + 1) * hd];
                        *s = dot(q_h, k_h) * scale;
                    }
                    softmax_row(scores);
                    let out_h = &mut att[r * d + hi * hd..r * d + (hi + 1) * hd];
                    for (t, &w) in scores.iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let v_h = &vals[t * d + hi * hd..t * d + (hi + 1) * hd];
                        for (o, &vv) in out_h.iter_mut().zip(v_h.iter()) {
                            *o += w * vv;
                        }
                    }
                }
            }
            let mut proj = bias_rows(&b.bo.data, s_len);
            self.proj_acc(&att, &b.wo, qb.map(|q| &q.wo), s_len, d, d, &mut proj);
            for (xv, pv) in x.iter_mut().zip(proj.iter()) {
                *xv += pv;
            }
            // mlp
            layer_norm_rows(&x, &b.ln2_g.data, &b.ln2_b.data, s_len, d, &mut h);
            let mut m = bias_rows(&b.b1.data, s_len);
            self.proj_acc(&h, &b.w1, qb.map(|q| &q.w1), s_len, d, ff, &mut m);
            for mv in m.iter_mut() {
                *mv = gelu(*mv);
            }
            let mut m2 = bias_rows(&b.b2.data, s_len);
            self.proj_acc(&m, &b.w2, qb.map(|q| &q.w2), s_len, ff, d, &mut m2);
            for (xv, mv) in x.iter_mut().zip(m2.iter()) {
                *xv += mv;
            }
        }
        x
    }

    /// Autoregressive generation. The prompt is left-truncated to fit the
    /// context window; generation stops at `opts.max_new_tokens`, at any of
    /// the `stops` tokens, or when the window is exhausted, whichever comes
    /// first.
    ///
    /// Returns only the newly generated ids (without the prompt and without
    /// the stop token).
    pub fn generate(&self, prompt: &[u32], stops: &[u32], opts: &GenerationOptions) -> Vec<u32> {
        self.generate_constrained(prompt, stops, opts, None, None)
    }

    /// [`Self::generate`] with an optional grammar constraint: each logit
    /// row is masked through a [`GrammarCursor`] before the pick, so every
    /// emitted token is legal under the grammar and the completion always
    /// closes into a parseable, lint-clean document. Whenever the
    /// unconstrained argmax is already grammar-legal the pick — and hence
    /// the whole greedy output — is bit-identical to [`Self::generate`].
    ///
    /// Beam search is exempt: it scores whole continuations rather than
    /// per-row picks, and falls through unconstrained.
    pub fn generate_constrained(
        &self,
        prompt: &[u32],
        stops: &[u32],
        opts: &GenerationOptions,
        grammar: Option<&Arc<GrammarIndex>>,
        grammar_telemetry: Option<&GrammarTelemetry>,
    ) -> Vec<u32> {
        let ctx = self.cfg.context_window;
        let window = self.generation_window(prompt, opts.max_new_tokens);
        let (mut cache, mut logits) = self.prefill(window);
        let mut pos = window.len();
        if let Strategy::Beam { width } = opts.strategy {
            return self.beam_generate(logits, cache, pos, stops, width.max(1), opts);
        }
        let mut cursor = grammar.map(|g| {
            GrammarCursor::new(
                Arc::clone(g),
                window,
                opts.max_new_tokens.min(ctx.saturating_sub(pos)),
            )
        });
        let mut rng = Prng::seed_from_u64(opts.seed);
        let mut out = Vec::new();
        while out.len() < opts.max_new_tokens && pos < ctx {
            let next = pick_token(
                &mut logits,
                opts.strategy,
                &mut rng,
                cursor.as_ref(),
                grammar_telemetry,
            );
            if stops.contains(&next) {
                break;
            }
            if let Some(c) = cursor.as_mut() {
                c.advance(next);
            }
            out.push(next);
            logits = self.step(next, pos, &mut cache);
            pos += 1;
        }
        out
    }

    /// The prompt window [`Self::generate`] actually prefills: left-truncated
    /// so that `max_new_tokens` of decode room (capped at half the context)
    /// remains. Shared with the continuous-batching engine so scheduled and
    /// solo generation see byte-identical windows.
    pub(crate) fn generation_window<'a>(
        &self,
        prompt: &'a [u32],
        max_new_tokens: usize,
    ) -> &'a [u32] {
        let ctx = self.cfg.context_window;
        // Reserve room to generate.
        let reserve = max_new_tokens.min(ctx / 2);
        let start = prompt.len().saturating_sub(ctx - reserve.max(1));
        &prompt[start..]
    }

    /// Beam search continuation from a prefilled cache. Scores are
    /// length-normalized log-probabilities; beams that emit a stop token are
    /// finalized and compete with live beams at the end.
    fn beam_generate(
        &self,
        first_logits: Vec<f32>,
        cache: KvCache,
        start_pos: usize,
        stops: &[u32],
        width: usize,
        opts: &GenerationOptions,
    ) -> Vec<u32> {
        struct Beam {
            tokens: Vec<u32>,
            log_prob: f64,
            cache: KvCache,
            logits: Vec<f32>,
        }
        let norm = |b: &Beam| b.log_prob / (b.tokens.len().max(1) as f64);
        let mut live = vec![Beam {
            tokens: Vec::new(),
            log_prob: 0.0,
            cache,
            logits: first_logits,
        }];
        let mut done: Vec<(Vec<u32>, f64)> = Vec::new();
        let ctx = self.cfg.context_window;
        let mut pos = start_pos;
        while !live.is_empty() && pos < ctx {
            if live.iter().all(|b| b.tokens.len() >= opts.max_new_tokens) {
                break;
            }
            // Expand every live beam by its top-`width` continuations.
            let mut candidates: Vec<(usize, u32, f64)> = Vec::new();
            for (bi, beam) in live.iter().enumerate() {
                let mut probs = beam.logits.clone();
                softmax_row(&mut probs);
                let mut idx: Vec<usize> = (0..probs.len()).collect();
                idx.sort_by(|&a, &b| {
                    probs[b]
                        .partial_cmp(&probs[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for &t in idx.iter().take(width) {
                    let lp = beam.log_prob + f64::from(probs[t].max(1e-20)).ln();
                    candidates.push((bi, t as u32, lp));
                }
            }
            candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            candidates.truncate(width);
            let mut next_live = Vec::with_capacity(width);
            for (bi, tok, lp) in candidates {
                let parent = &live[bi];
                if stops.contains(&tok) {
                    done.push((
                        parent.tokens.clone(),
                        lp / (parent.tokens.len().max(1) as f64),
                    ));
                    continue;
                }
                let mut tokens = parent.tokens.clone();
                tokens.push(tok);
                let mut cache = parent.cache.clone();
                let logits = self.step(tok, pos, &mut cache);
                let beam = Beam {
                    tokens,
                    log_prob: lp,
                    cache,
                    logits,
                };
                if beam.tokens.len() >= opts.max_new_tokens {
                    done.push((beam.tokens.clone(), norm(&beam)));
                } else {
                    next_live.push(beam);
                }
            }
            live = next_live;
            pos += 1;
        }
        for b in &live {
            done.push((b.tokens.clone(), norm(b)));
        }
        done.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        done.into_iter().map(|(t, _)| t).next().unwrap_or_default()
    }

    /// One decode step for a whole batch of independent sequences: row `i`
    /// runs `tokens[i]` at `positions[i]` against `caches[i]`, and row `i` of
    /// the result is that sequence's next-token logits.
    ///
    /// This is the continuous-batching hot path: the `B` current tokens are
    /// stacked into a `B×d` activation matrix so the QKV/MLP/LM-head
    /// projections run as one blocked matmul each instead of `B` matvec
    /// chains. Attention stays per-sequence (each row attends only to its
    /// own cache). Every output row is bit-identical to what [`Self::step`]
    /// would produce for that sequence alone: the blocked kernels accumulate
    /// each output element over the k dimension in index order regardless of
    /// the row count, and rows never mix outside their own cache.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree, a token is out of vocabulary,
    /// or a position is outside the context window.
    pub fn step_batch(
        &self,
        tokens: &[u32],
        positions: &[usize],
        caches: &mut [&mut KvCache],
    ) -> Vec<Vec<f32>> {
        let bsz = tokens.len();
        assert_eq!(positions.len(), bsz, "positions length");
        assert_eq!(caches.len(), bsz, "caches length");
        if bsz == 0 {
            return Vec::new();
        }
        let d = self.cfg.d_model;
        let heads = self.cfg.n_heads;
        let hd = self.cfg.head_dim();
        let ff = self.cfg.d_ff();
        let vocab = self.cfg.vocab_size;
        let scale = 1.0 / (hd as f32).sqrt();

        // Stack token + position embeddings into a B×d activation matrix.
        let mut x = vec![0.0f32; bsz * d];
        for (r, (&token, &pos)) in tokens.iter().zip(positions.iter()).enumerate() {
            let tok = token as usize;
            assert!(tok < vocab, "token {tok} out of vocabulary");
            assert!(
                pos < self.cfg.context_window,
                "position {pos} out of window"
            );
            let row = &mut x[r * d..(r + 1) * d];
            for (i, xv) in row.iter_mut().enumerate() {
                *xv = self.tok_emb.data[tok * d + i] + self.pos_emb.data[pos * d + i];
            }
        }

        let mut h = vec![0.0f32; bsz * d];
        for (l, b) in self.blocks.iter().enumerate() {
            let qb = self.qblock(l);
            // attn: batched projections, per-sequence causal attention.
            layer_norm_rows(&x, &b.ln1_g.data, &b.ln1_b.data, bsz, d, &mut h);
            let mut q = bias_rows(&b.bq.data, bsz);
            self.proj_acc(&h, &b.wq, qb.map(|q| &q.wq), bsz, d, d, &mut q);
            let mut k = bias_rows(&b.bk.data, bsz);
            self.proj_acc(&h, &b.wk, qb.map(|q| &q.wk), bsz, d, d, &mut k);
            let mut v = bias_rows(&b.bv.data, bsz);
            self.proj_acc(&h, &b.wv, qb.map(|q| &q.wv), bsz, d, d, &mut v);
            let mut att = vec![0.0f32; bsz * d];
            for (r, cache) in caches.iter_mut().enumerate() {
                cache.k[l].extend_from_slice(&k[r * d..(r + 1) * d]);
                cache.v[l].extend_from_slice(&v[r * d..(r + 1) * d]);
                let t_len = cache.k[l].len() / d;
                let out_row = &mut att[r * d..(r + 1) * d];
                for hi in 0..heads {
                    let q_h = &q[r * d + hi * hd..r * d + (hi + 1) * hd];
                    let mut scores = vec![0.0f32; t_len];
                    for (t, s) in scores.iter_mut().enumerate() {
                        let k_h = &cache.k[l][t * d + hi * hd..t * d + (hi + 1) * hd];
                        *s = dot(q_h, k_h) * scale;
                    }
                    softmax_row(&mut scores);
                    let out_h = &mut out_row[hi * hd..(hi + 1) * hd];
                    for (t, &w) in scores.iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let v_h = &cache.v[l][t * d + hi * hd..t * d + (hi + 1) * hd];
                        for (o, &vv) in out_h.iter_mut().zip(v_h.iter()) {
                            *o += w * vv;
                        }
                    }
                }
            }
            let mut proj = bias_rows(&b.bo.data, bsz);
            self.proj_acc(&att, &b.wo, qb.map(|q| &q.wo), bsz, d, d, &mut proj);
            for (xv, pv) in x.iter_mut().zip(proj.iter()) {
                *xv += pv;
            }
            // mlp: batched projections.
            layer_norm_rows(&x, &b.ln2_g.data, &b.ln2_b.data, bsz, d, &mut h);
            let mut m = bias_rows(&b.b1.data, bsz);
            self.proj_acc(&h, &b.w1, qb.map(|q| &q.w1), bsz, d, ff, &mut m);
            for mv in m.iter_mut() {
                *mv = gelu(*mv);
            }
            let mut m2 = bias_rows(&b.b2.data, bsz);
            self.proj_acc(&m, &b.w2, qb.map(|q| &q.w2), bsz, ff, d, &mut m2);
            for (xv, mv) in x.iter_mut().zip(m2.iter()) {
                *xv += mv;
            }
        }
        let mut xf = vec![0.0f32; bsz * d];
        layer_norm_rows(&x, &self.lnf_g.data, &self.lnf_b.data, bsz, d, &mut xf);
        let mut logits = vec![0.0f32; bsz * vocab];
        self.head_matmul(&xf, bsz, &mut logits);
        logits.chunks(vocab).map(<[f32]>::to_vec).collect()
    }

    /// Runs one token through the model, appending to the cache, and returns
    /// the next-token logits. This is the decode step used after
    /// [`Self::prefill`]; the cache must already hold positions `0..pos`.
    pub fn step(&self, token: u32, pos: usize, cache: &mut KvCache) -> Vec<f32> {
        let d = self.cfg.d_model;
        let heads = self.cfg.n_heads;
        let hd = self.cfg.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        let tok = token as usize;
        assert!(tok < self.cfg.vocab_size, "token {tok} out of vocabulary");
        assert!(
            pos < self.cfg.context_window,
            "position {pos} out of window"
        );

        let mut x = vec![0.0f32; d];
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = self.tok_emb.data[tok * d + i] + self.pos_emb.data[pos * d + i];
        }
        for (l, b) in self.blocks.iter().enumerate() {
            let qb = self.qblock(l);
            // attn
            let h = layer_norm_row(&x, &b.ln1_g.data, &b.ln1_b.data);
            let mut q = b.bq.data.clone();
            self.proj_vec_acc(&h, &b.wq, qb.map(|q| &q.wq), d, d, &mut q);
            let mut k = b.bk.data.clone();
            self.proj_vec_acc(&h, &b.wk, qb.map(|q| &q.wk), d, d, &mut k);
            let mut v = b.bv.data.clone();
            self.proj_vec_acc(&h, &b.wv, qb.map(|q| &q.wv), d, d, &mut v);
            cache.k[l].extend_from_slice(&k);
            cache.v[l].extend_from_slice(&v);
            let t_len = cache.k[l].len() / d;
            let mut att_out = vec![0.0f32; d];
            // Cached-position loops run t-outer / head-inner: each score is
            // the same `dot(q_h, k_h) * scale` and each output element still
            // accumulates over t in ascending order (bit-identical to the
            // head-outer form), but the K/V rows stream linearly and the
            // heads' dot-product reduction chains overlap instead of
            // serializing on FP-add latency.
            let mut scores = vec![0.0f32; heads * t_len];
            if hd == HEAD_DIM_FAST {
                // Every size class uses 16-wide heads; the const-width path
                // fully unrolls the per-head loops (same op order, so the
                // scores and outputs are bit-identical to the generic path).
                for t in 0..t_len {
                    let k_row = &cache.k[l][t * d..(t + 1) * d];
                    att_scores_row::<HEAD_DIM_FAST>(&q, k_row, heads, t, t_len, scale, &mut scores);
                }
                for hi in 0..heads {
                    softmax_row(&mut scores[hi * t_len..(hi + 1) * t_len]);
                }
                att_weighted_v::<HEAD_DIM_FAST>(
                    &scores,
                    &cache.v[l],
                    d,
                    heads,
                    t_len,
                    &mut att_out,
                );
            } else {
                for t in 0..t_len {
                    let k_row = &cache.k[l][t * d..(t + 1) * d];
                    for hi in 0..heads {
                        let q_h = &q[hi * hd..(hi + 1) * hd];
                        let k_h = &k_row[hi * hd..(hi + 1) * hd];
                        scores[hi * t_len + t] = dot(q_h, k_h) * scale;
                    }
                }
                for hi in 0..heads {
                    softmax_row(&mut scores[hi * t_len..(hi + 1) * t_len]);
                }
                for t in 0..t_len {
                    let v_row = &cache.v[l][t * d..(t + 1) * d];
                    for hi in 0..heads {
                        let w = scores[hi * t_len + t];
                        if w == 0.0 {
                            continue;
                        }
                        let out_h = &mut att_out[hi * hd..(hi + 1) * hd];
                        let v_h = &v_row[hi * hd..(hi + 1) * hd];
                        for (o, &vv) in out_h.iter_mut().zip(v_h.iter()) {
                            *o += w * vv;
                        }
                    }
                }
            }
            let mut proj = b.bo.data.clone();
            self.proj_vec_acc(&att_out, &b.wo, qb.map(|q| &q.wo), d, d, &mut proj);
            for i in 0..d {
                x[i] += proj[i];
            }
            // mlp
            let h2 = layer_norm_row(&x, &b.ln2_g.data, &b.ln2_b.data);
            let ff = self.cfg.d_ff();
            let mut m = b.b1.data.clone();
            self.proj_vec_acc(&h2, &b.w1, qb.map(|q| &q.w1), d, ff, &mut m);
            for mv in m.iter_mut() {
                *mv = gelu(*mv);
            }
            let mut m2 = b.b2.data.clone();
            self.proj_vec_acc(&m, &b.w2, qb.map(|q| &q.w2), ff, d, &mut m2);
            for i in 0..d {
                x[i] += m2[i];
            }
        }
        let xf = layer_norm_row(&x, &self.lnf_g.data, &self.lnf_b.data);
        let mut logits = vec![0.0f32; self.cfg.vocab_size];
        self.head_matmul(&xf, 1, &mut logits);
        logits
    }
}

/// Per-layer key/value cache for incremental decoding.
///
/// Created empty by [`KvCache::new`], filled in one shot by
/// [`TransformerLm::prefill`], and appended to by [`TransformerLm::step`].
#[derive(Debug)]
pub struct KvCache {
    pub(crate) k: Vec<Vec<f32>>,
    pub(crate) v: Vec<Vec<f32>>,
    /// Row width (`d_model`), for converting buffer lengths to positions.
    pub(crate) d: usize,
    /// Per-layer capacity in floats (`context_window * d_model`), restored
    /// on every clone so neither decode nor beam branching reallocates.
    cap: usize,
}

impl KvCache {
    /// An empty cache with every layer pre-reserved to hold a full context
    /// window, so decoding never reallocates.
    pub fn new(model: &TransformerLm) -> Self {
        let d = model.cfg.d_model;
        let cap = model.cfg.context_window * d;
        Self {
            k: (0..model.cfg.n_layers)
                .map(|_| Vec::with_capacity(cap))
                .collect(),
            v: (0..model.cfg.n_layers)
                .map(|_| Vec::with_capacity(cap))
                .collect(),
            d,
            cap,
        }
    }

    /// Number of positions currently cached.
    pub fn len(&self) -> usize {
        self.k
            .first()
            .map_or(0, |layer| layer.len() / self.d.max(1))
    }

    /// Whether no positions are cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rolls the cache back to its first `len` positions, discarding the
    /// K/V rows past them. A no-op when `len >= self.len()`.
    ///
    /// This shrinks only the *logical* length — `Vec::truncate` keeps the
    /// buffers' capacity, so re-decoding over the discarded positions never
    /// reallocates. Speculative decoding uses this to drop rejected draft
    /// tokens ([`crate::SpeculativeDecoder`]); it is equally suited to any
    /// retry path that rewinds a sequence to an earlier position.
    pub fn truncate(&mut self, len: usize) {
        let floats = len * self.d;
        for layer in self.k.iter_mut().chain(self.v.iter_mut()) {
            layer.truncate(floats);
        }
    }
}

/// `derive(Clone)` would shrink each layer to its length (`Vec::clone` does
/// not preserve capacity), making every cloned beam re-grow its buffers
/// during decode. Clone manually with the full reservation instead.
impl Clone for KvCache {
    fn clone(&self) -> Self {
        let with_cap = |layers: &[Vec<f32>]| {
            layers
                .iter()
                .map(|layer| {
                    let mut c = Vec::with_capacity(self.cap.max(layer.len()));
                    c.extend_from_slice(layer);
                    c
                })
                .collect()
        };
        Self {
            k: with_cap(&self.k),
            v: with_cap(&self.v),
            d: self.d,
            cap: self.cap,
        }
    }
}

/// Head width shared by every size class (`d_model / n_heads` is 16 for the
/// 350M, 2.7B, and 6B configs); the decode step's attention loops specialize
/// on it so the per-head arithmetic fully unrolls.
const HEAD_DIM_FAST: usize = 16;

/// One cached position's attention scores for all heads: `scores[hi][t] =
/// dot(q_h, k_h) * scale` with the dot product summed in index order —
/// bit-identical to [`dot`] over the same slices.
#[inline(always)]
fn att_scores_row<const HD: usize>(
    q: &[f32],
    k_row: &[f32],
    heads: usize,
    t: usize,
    t_len: usize,
    scale: f32,
    scores: &mut [f32],
) {
    for hi in 0..heads {
        let q_h: &[f32; HD] = q[hi * HD..][..HD].try_into().expect("head-width q");
        let k_h: &[f32; HD] = k_row[hi * HD..][..HD].try_into().expect("head-width k");
        let mut s = 0.0f32;
        for c in 0..HD {
            s += q_h[c] * k_h[c];
        }
        scores[hi * t_len + t] = s * scale;
    }
}

/// The weighted-V reduction for all heads: `att_out[hi] = Σ_t
/// scores[hi][t] * v_h(t)` with `t` ascending and zero weights skipped —
/// the same terms in the same per-element order as the t-outer form
/// (`att_out` starts at zero), but each head's accumulator is a
/// register-resident array instead of a memory round-trip per cached
/// position.
#[inline(always)]
fn att_weighted_v<const HD: usize>(
    scores: &[f32],
    v_cache: &[f32],
    d: usize,
    heads: usize,
    t_len: usize,
    att_out: &mut [f32],
) {
    for hi in 0..heads {
        let mut acc = [0.0f32; HD];
        let s_row = &scores[hi * t_len..(hi + 1) * t_len];
        for (t, &w) in s_row.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let v_h: &[f32; HD] = v_cache[t * d + hi * HD..][..HD]
                .try_into()
                .expect("head-width v");
            for c in 0..HD {
                acc[c] += w * v_h[c];
            }
        }
        att_out[hi * HD..(hi + 1) * HD].copy_from_slice(&acc);
    }
}

/// `out += x (1×k) @ w (k×n)`.
fn matvec_acc(x: &[f32], w: &[f32], k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(w.len(), k * n);
    debug_assert_eq!(out.len(), n);
    for (p, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let w_row = &w[p * n..(p + 1) * n];
        for (o, &wv) in out.iter_mut().zip(w_row.iter()) {
            *o += xv * wv;
        }
    }
}

/// `rows` copies of `bias` stacked into one row-major buffer — the
/// accumulator initialization for a batched `X @ W + b` projection.
fn bias_rows(bias: &[f32], rows: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(rows * bias.len());
    for _ in 0..rows {
        out.extend_from_slice(bias);
    }
    out
}

/// Applies [`layer_norm_row`] to each of `rows` rows of `x`, writing into
/// `out` (same shape).
fn layer_norm_rows(x: &[f32], gain: &[f32], bias: &[f32], rows: usize, d: usize, out: &mut [f32]) {
    debug_assert_eq!(x.len(), rows * d);
    debug_assert_eq!(out.len(), rows * d);
    for t in 0..rows {
        let normed = layer_norm_row(&x[t * d..(t + 1) * d], gain, bias);
        out[t * d..(t + 1) * d].copy_from_slice(&normed);
    }
}

fn layer_norm_row(x: &[f32], gain: &[f32], bias: &[f32]) -> Vec<f32> {
    const EPS: f32 = 1e-5;
    let n = x.len() as f32;
    let mean: f32 = x.iter().sum::<f32>() / n;
    let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let rstd = 1.0 / (var + EPS).sqrt();
    x.iter()
        .zip(gain.iter().zip(bias.iter()))
        .map(|(&xv, (&g, &b))| (xv - mean) * rstd * g + b)
        .collect()
}

/// Masks one logit row through an active grammar cursor, recording the
/// grammar metrics, and returns the forced token when exactly one
/// continuation is legal. Returns `None` (and touches nothing) for absent,
/// bypassed, or finished cursors.
pub(crate) fn mask_logits(
    grammar: Option<&GrammarCursor>,
    logits: &mut [f32],
    telemetry: Option<&GrammarTelemetry>,
) -> Option<u32> {
    let cursor = grammar?;
    if !cursor.is_active() {
        return None;
    }
    let start = telemetry.map(|_| std::time::Instant::now());
    let outcome = cursor.apply(logits);
    if let Some(t) = telemetry {
        t.masked_tokens.add(u64::from(outcome.masked));
        if !outcome.cache_hit {
            if let Some(at) = start {
                t.mask_build.observe(at.elapsed().as_secs_f64());
            }
            t.states_cached
                .set(cursor.index().stats().states_cached as f64);
        }
        if outcome.forced.is_some() {
            t.forced_fast_path.inc();
        }
    }
    outcome.forced
}

/// The one token pick shared by the solo generate loop and the batched
/// decode engine: grammar mask (when a cursor is active), forced-token fast
/// path, then the strategy's usual argmax / seeded top-k. A single
/// implementation is what keeps constrained solo, batched, and speculative
/// decoding in token-for-token agreement.
pub(crate) fn pick_token(
    logits: &mut [f32],
    strategy: Strategy,
    rng: &mut Prng,
    grammar: Option<&GrammarCursor>,
    telemetry: Option<&GrammarTelemetry>,
) -> u32 {
    if let Some(forced) = mask_logits(grammar, logits, telemetry) {
        // The mask left exactly one legal token; argmax/sampling over the
        // masked row could only return it, so skip both (and the rng draw).
        return forced;
    }
    match strategy {
        Strategy::Greedy => argmax(logits),
        Strategy::TopK { k, temperature } => sample_top_k(logits, k, temperature, rng),
        Strategy::Beam { .. } => unreachable!("beam search expands beams, not single rows"),
    }
}

pub(crate) fn argmax(xs: &[f32]) -> u32 {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best as u32
}

pub(crate) fn sample_top_k(logits: &[f32], k: usize, temperature: f32, rng: &mut Prng) -> u32 {
    let k = k.max(1).min(logits.len());
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    // Descending by logit, ties broken by ascending index — the same order a
    // stable descending sort produces, but as a total order so the top-k can
    // be partitioned out in O(n) before sorting only those k entries.
    let cmp = |&a: &usize, &b: &usize| {
        logits[b]
            .partial_cmp(&logits[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    };
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_unstable_by(cmp);
    let t = temperature.max(1e-3);
    let mut probs: Vec<f64> = idx.iter().map(|&i| f64::from(logits[i] / t)).collect();
    let max = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for p in probs.iter_mut() {
        *p = (*p - max).exp();
        sum += *p;
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    idx[rng.weighted_index(&probs)] as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisdom_tensor::AdamConfig;

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            vocab_size: 20,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: 12,
        }
    }

    #[test]
    fn param_count_matches_config_formula() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(0);
        let model = TransformerLm::new(cfg, &mut rng);
        assert_eq!(model.param_count(), cfg.param_count());
    }

    #[test]
    fn training_reduces_loss_on_repetitive_sequence() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(1);
        let mut model = TransformerLm::new(cfg, &mut rng);
        let mut adam = Adam::new(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        });
        // Memorize the cyclic sequence 1 2 3 4 1 2 3 4 ...
        let tokens: Vec<u32> = (0..8).map(|i| 1 + (i % 4) as u32).collect();
        let targets: Vec<usize> = (0..8).map(|i| 1 + ((i + 1) % 4)).collect();
        let first = model.loss(&tokens, &targets, 1, 8);
        let mut last = first;
        for _ in 0..60 {
            last = model.train_step(&tokens, &targets, 1, 8, &mut adam, 1.0);
        }
        assert!(
            last < first * 0.3,
            "loss should drop substantially: {first} -> {last}"
        );
    }

    #[test]
    fn kv_cache_inference_matches_tape_forward() {
        // The training graph's final-position logits and the KV-cache path
        // must agree (they are two implementations of the same function).
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(2);
        let model = TransformerLm::new(cfg, &mut rng);
        let prompt: Vec<u32> = vec![3, 7, 1, 11, 5];

        let fast = model.next_token_logits(&prompt);
        let logits_all = model.batch_logits(&prompt, 1, prompt.len());
        let vocab = cfg.vocab_size;
        let last_row = &logits_all[(prompt.len() - 1) * vocab..];
        for (a, b) in fast.iter().zip(last_row.iter()) {
            assert!((a - b).abs() < 1e-3, "mismatch {a} vs {b}");
        }
    }

    #[test]
    fn greedy_generation_reproduces_memorized_sequence() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(3);
        let mut model = TransformerLm::new(cfg, &mut rng);
        let mut adam = Adam::new(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        });
        let tokens: Vec<u32> = vec![5, 6, 7, 8, 5, 6, 7, 8];
        let targets: Vec<usize> = vec![6, 7, 8, 5, 6, 7, 8, 5];
        for _ in 0..150 {
            model.train_step(&tokens, &targets, 1, 8, &mut adam, 1.0);
        }
        let out = model.generate(
            &[5, 6, 7, 8],
            &[0],
            &GenerationOptions {
                max_new_tokens: 4,
                ..Default::default()
            },
        );
        assert_eq!(out, vec![5, 6, 7, 8], "should continue the cycle");
    }

    #[test]
    fn generation_respects_stop_token() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(4);
        let mut model = TransformerLm::new(cfg, &mut rng);
        let mut adam = Adam::new(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        });
        // teach: 9 -> 0 (stop)
        let tokens: Vec<u32> = vec![1, 9, 0, 1, 9, 0, 1, 9];
        let targets: Vec<usize> = vec![9, 0, 1, 9, 0, 1, 9, 0];
        for _ in 0..150 {
            model.train_step(&tokens, &targets, 1, 8, &mut adam, 1.0);
        }
        let out = model.generate(
            &[1, 9],
            &[0],
            &GenerationOptions {
                max_new_tokens: 8,
                ..Default::default()
            },
        );
        assert!(out.is_empty(), "stop token should end generation: {out:?}");
    }

    #[test]
    fn generation_bounded_by_max_new_tokens() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(5);
        let model = TransformerLm::new(cfg, &mut rng);
        let out = model.generate(
            &[1, 2],
            &[19],
            &GenerationOptions {
                max_new_tokens: 3,
                ..Default::default()
            },
        );
        assert!(out.len() <= 3);
    }

    #[test]
    fn long_prompt_left_truncated() {
        let cfg = tiny_cfg(); // window 12
        let mut rng = Prng::seed_from_u64(6);
        let model = TransformerLm::new(cfg, &mut rng);
        let prompt: Vec<u32> = (0..40).map(|i| (i % 15) as u32).collect();
        let logits = model.next_token_logits(&prompt);
        assert_eq!(logits.len(), cfg.vocab_size);
        let out = model.generate(
            &prompt,
            &[19],
            &GenerationOptions {
                max_new_tokens: 4,
                ..Default::default()
            },
        );
        assert!(out.len() <= 4);
    }

    #[test]
    fn kv_cache_truncate_rolls_back_without_reallocating() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(21);
        let model = TransformerLm::new(cfg, &mut rng);
        let (mut cache, _) = model.prefill(&[3, 7, 1, 11, 5]);
        assert_eq!(cache.len(), 5);
        let caps: Vec<usize> = cache
            .k
            .iter()
            .chain(cache.v.iter())
            .map(Vec::capacity)
            .collect();

        // Advance three positions, then rewind past them.
        for (i, &t) in [2u32, 4, 6].iter().enumerate() {
            let _ = model.step(t, 5 + i, &mut cache);
        }
        assert_eq!(cache.len(), 8);
        cache.truncate(5);
        assert_eq!(cache.len(), 5);
        assert!(!cache.is_empty());
        // Logical rollback only: every buffer keeps its full reservation.
        let caps_after: Vec<usize> = cache
            .k
            .iter()
            .chain(cache.v.iter())
            .map(Vec::capacity)
            .collect();
        assert_eq!(caps, caps_after, "truncate must not reallocate");

        // Re-decoding from the rewound cache is bit-identical to a fresh
        // decode from the same five positions.
        let replay = model.step(2, 5, &mut cache);
        let (mut fresh, _) = model.prefill(&[3, 7, 1, 11, 5]);
        let expect = model.step(2, 5, &mut fresh);
        assert_eq!(
            replay.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );

        // Truncating past the end is a no-op; truncating to zero empties.
        cache.truncate(100);
        assert_eq!(cache.len(), 6);
        cache.truncate(0);
        assert!(cache.is_empty());
    }

    #[test]
    fn prefill_continue_all_rows_match_sequential_steps() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(22);
        let model = TransformerLm::new(cfg, &mut rng);
        let prompt = [3u32, 7, 1];
        let suffix = [11u32, 5, 2, 9];

        let (mut cache, _) = model.prefill(&prompt);
        let rows = model.prefill_continue_all(&suffix, &mut cache);
        assert_eq!(rows.len(), suffix.len());
        assert_eq!(cache.len(), prompt.len() + suffix.len());

        let (mut seq_cache, _) = model.prefill(&prompt);
        for (r, &t) in suffix.iter().enumerate() {
            let step_logits = model.step(t, prompt.len() + r, &mut seq_cache);
            assert_eq!(
                rows[r].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                step_logits.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "row {r} must be bit-identical to the sequential step"
            );
        }

        // Empty suffix: no rows, cache untouched.
        assert!(model.prefill_continue_all(&[], &mut cache).is_empty());
        assert_eq!(cache.len(), prompt.len() + suffix.len());
    }

    #[test]
    fn beam_search_matches_greedy_on_memorized_sequence() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(12);
        let mut model = TransformerLm::new(cfg, &mut rng);
        let mut adam = Adam::new(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        });
        let tokens: Vec<u32> = vec![5, 6, 7, 8, 5, 6, 7, 8];
        let targets: Vec<usize> = vec![6, 7, 8, 5, 6, 7, 8, 5];
        for _ in 0..150 {
            model.train_step(&tokens, &targets, 1, 8, &mut adam, 1.0);
        }
        let greedy = model.generate(
            &[5, 6, 7, 8],
            &[0],
            &GenerationOptions {
                max_new_tokens: 4,
                ..Default::default()
            },
        );
        let beam = model.generate(
            &[5, 6, 7, 8],
            &[0],
            &GenerationOptions {
                max_new_tokens: 4,
                strategy: Strategy::Beam { width: 3 },
                ..Default::default()
            },
        );
        assert_eq!(beam, greedy, "confident model: beam == greedy");
    }

    #[test]
    fn beam_search_respects_budget_and_stops() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(13);
        let model = TransformerLm::new(cfg, &mut rng);
        let opts = GenerationOptions {
            max_new_tokens: 5,
            strategy: Strategy::Beam { width: 4 },
            ..Default::default()
        };
        let out = model.generate(&[1, 2], &[0], &opts);
        assert!(out.len() <= 5);
        // Width 1 degenerates to greedy.
        let w1 = model.generate(
            &[1, 2],
            &[0],
            &GenerationOptions {
                max_new_tokens: 5,
                strategy: Strategy::Beam { width: 1 },
                ..Default::default()
            },
        );
        let greedy = model.generate(
            &[1, 2],
            &[0],
            &GenerationOptions {
                max_new_tokens: 5,
                ..Default::default()
            },
        );
        assert_eq!(w1, greedy);
    }

    #[test]
    fn top_k_sampling_is_seeded_and_deterministic() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(7);
        let model = TransformerLm::new(cfg, &mut rng);
        let opts = GenerationOptions {
            max_new_tokens: 6,
            strategy: Strategy::TopK {
                k: 5,
                temperature: 1.0,
            },
            seed: 42,
        };
        let a = model.generate(&[1, 2, 3], &[0], &opts);
        let b = model.generate(&[1, 2, 3], &[0], &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn int8_precision_frees_weight_storage_and_keeps_param_count() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(30);
        let model = TransformerLm::new(cfg, &mut rng);
        let count = model.param_count();
        let int8 = model.clone().with_precision(Precision::Int8);
        assert_eq!(int8.precision(), Precision::Int8);
        assert_eq!(int8.param_count(), count, "param_count is shape-derived");
        assert!(int8.quant_weight_bytes() > 0);
        assert!(int8.quant_weight_bytes_saved() > 0);
        // Packed matrices freed their f32 storage; everything else kept it.
        assert!(int8.blocks[0].wq.data.is_empty());
        assert!(int8.lm_head.data.is_empty());
        assert!(!int8.tok_emb.data.is_empty());
        assert!(!int8.blocks[0].bq.data.is_empty());
        // F32 stays untouched by the accessors.
        assert_eq!(model.quant_weight_bytes(), 0);
        assert_eq!(model.precision(), Precision::F32);
    }

    #[test]
    fn int8_generation_matches_dequant_oracle_bitwise() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(31);
        let model = TransformerLm::new(cfg, &mut rng);
        let int8 = model.clone().with_precision(Precision::Int8);
        let oracle = model.clone().with_precision(Precision::Int8Dequant);
        let prompt = [3u32, 7, 1, 11, 5];
        let a = int8.next_token_logits(&prompt);
        let b = oracle.next_token_logits(&prompt);
        assert_eq!(
            a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "int8 fast path must match the dequant-on-load oracle"
        );
    }

    #[test]
    fn precision_round_trip_restores_dequantized_weights() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(32);
        let model = TransformerLm::new(cfg, &mut rng);
        let oracle = model.clone().with_precision(Precision::Int8Dequant);
        let mut round = model.clone();
        round.set_precision(Precision::Int8);
        round.set_precision(Precision::F32);
        // Leaving Int8 restores the dequantized values — exactly the
        // weights the oracle model holds.
        for ((_, a, _, _), (_, b, _, _)) in round.named_parameters().zip(oracle.named_parameters())
        {
            assert_eq!(
                a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
            );
        }
        assert!(round.quant.is_none());
    }

    #[test]
    fn precision_parses_and_prints() {
        for p in [Precision::F32, Precision::Int8, Precision::Int8Dequant] {
            assert_eq!(p.as_str().parse::<Precision>().unwrap(), p);
            assert_eq!(p.to_string(), p.as_str());
        }
        assert!("fp16".parse::<Precision>().is_err());
    }

    #[test]
    #[should_panic(expected = "f32 weight storage")]
    fn training_forward_rejects_int8_models() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(33);
        let model = TransformerLm::new(cfg, &mut rng).with_precision(Precision::Int8);
        let _ = model.loss(&[1, 2, 3, 4], &[2, 3, 4, 5], 1, 4);
    }

    #[test]
    fn resize_context_preserves_prefix_rows() {
        let cfg = tiny_cfg();
        let mut rng = Prng::seed_from_u64(8);
        let mut model = TransformerLm::new(cfg, &mut rng);
        let before = model.pos_emb.data[..cfg.d_model].to_vec();
        model.resize_context(24, &mut rng);
        assert_eq!(model.config().context_window, 24);
        assert_eq!(&model.pos_emb.data[..cfg.d_model], &before[..]);
        // Larger window now accepted.
        let prompt: Vec<u32> = (0..20).map(|i| (i % 10) as u32).collect();
        let _ = model.next_token_logits(&prompt);
    }
}
