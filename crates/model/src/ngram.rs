//! An interpolated back-off n-gram language model: the classical baseline
//! against which the transformer's gains are measured, and a fast stand-in
//! where a neural model would be overkill.

use std::collections::HashMap;
use std::sync::Arc;

use wisdom_prng::Prng;
use wisdom_tokenizer::BpeTokenizer;

use crate::decode::{GenerationOptions, Strategy, TextGenerator};

/// Token-level n-gram model with stupid-backoff scoring.
///
/// # Examples
///
/// ```
/// use wisdom_model::NgramLm;
///
/// let mut lm = NgramLm::new(3, 100);
/// lm.observe(&[1, 2, 3, 4, 1, 2, 3, 4]);
/// // After seeing "1 2 3" -> 4 twice, prediction follows suit.
/// assert_eq!(lm.predict(&[1, 2, 3]), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct NgramLm {
    order: usize,
    vocab_size: usize,
    /// For each context length 0..order, counts of (context, next).
    counts: Vec<HashMap<Vec<u32>, HashMap<u32, u32>>>,
}

impl NgramLm {
    /// Creates an empty model of the given order (order 3 = trigram).
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn new(order: usize, vocab_size: usize) -> Self {
        assert!(order > 0, "order must be at least 1");
        Self {
            order,
            vocab_size,
            counts: (0..order).map(|_| HashMap::new()).collect(),
        }
    }

    /// The model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Accumulates counts from a token sequence.
    pub fn observe(&mut self, tokens: &[u32]) {
        self.observe_continuation(&[], tokens);
    }

    /// Accumulates counts for `new` as a continuation of `context`: only the
    /// positions of `new` are counted, with contexts reaching back into
    /// `context` across the boundary. Observing a stream in chunks through
    /// this method yields exactly the counts of one [`Self::observe`] over
    /// the concatenation — which is why the speculative decoder's online
    /// draft adaptation uses it instead of re-observing overlapping windows.
    ///
    /// # Examples
    ///
    /// ```
    /// use wisdom_model::NgramLm;
    ///
    /// let mut whole = NgramLm::new(3, 100);
    /// whole.observe(&[1, 2, 3, 4, 1, 2, 3, 4]);
    /// let mut chunked = NgramLm::new(3, 100);
    /// chunked.observe(&[1, 2, 3]);
    /// chunked.observe_continuation(&[1, 2, 3], &[4, 1, 2, 3, 4]);
    /// assert_eq!(chunked.predict(&[1, 2, 3]), whole.predict(&[1, 2, 3]));
    /// ```
    pub fn observe_continuation(&mut self, context: &[u32], new: &[u32]) {
        let joined: Vec<u32> = context.iter().chain(new.iter()).copied().collect();
        for i in context.len()..joined.len() {
            let next = joined[i];
            for ctx_len in 0..self.order {
                if i < ctx_len {
                    continue;
                }
                let ctx = joined[i - ctx_len..i].to_vec();
                *self.counts[ctx_len]
                    .entry(ctx)
                    .or_default()
                    .entry(next)
                    .or_insert(0) += 1;
            }
        }
    }

    /// Most likely next token via stupid backoff (longest matching context
    /// wins; ties break to the smaller token id). `None` for an untrained
    /// model.
    pub fn predict(&self, context: &[u32]) -> Option<u32> {
        let scores = self.next_scores(context);
        scores
            .into_iter()
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(&a.0))
            })
            .map(|(t, _)| t)
    }

    /// Back-off scores over candidate next tokens.
    fn next_scores(&self, context: &[u32]) -> Vec<(u32, f64)> {
        const BACKOFF: f64 = 0.4;
        let mut weight = 1.0;
        for ctx_len in (0..self.order).rev() {
            if context.len() < ctx_len {
                continue;
            }
            let ctx = &context[context.len() - ctx_len..];
            if let Some(nexts) = self.counts[ctx_len].get(ctx) {
                let total: u32 = nexts.values().sum();
                if total > 0 {
                    return nexts
                        .iter()
                        .map(|(&t, &c)| (t, weight * f64::from(c) / f64::from(total)))
                        .collect();
                }
            }
            weight *= BACKOFF;
        }
        Vec::new()
    }

    /// Generates up to `max_new` tokens, stopping at `stop`.
    pub fn generate(&self, prompt: &[u32], stop: u32, opts: &GenerationOptions) -> Vec<u32> {
        let mut ctx = prompt.to_vec();
        let mut out = Vec::new();
        let mut rng = Prng::seed_from_u64(opts.seed);
        while out.len() < opts.max_new_tokens {
            let next = match opts.strategy {
                Strategy::Greedy => self.predict(&ctx),
                Strategy::TopK { k, .. } => {
                    let mut scores = self.next_scores(&ctx);
                    scores
                        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    scores.truncate(k.max(1));
                    if scores.is_empty() {
                        None
                    } else {
                        let weights: Vec<f64> = scores.iter().map(|s| s.1).collect();
                        Some(scores[rng.weighted_index(&weights)].0)
                    }
                }
                // Beam search is a transformer-path feature; the n-gram
                // baseline degrades to greedy.
                Strategy::Beam { .. } => self.predict(&ctx),
            };
            let Some(next) = next else { break };
            if next == stop {
                break;
            }
            out.push(next);
            ctx.push(next);
        }
        out
    }

    /// Vocabulary size this model was configured with.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }
}

/// An [`NgramLm`] paired with a tokenizer for text completion.
#[derive(Debug, Clone)]
pub struct NgramTextGenerator {
    name: String,
    lm: NgramLm,
    tokenizer: Arc<BpeTokenizer>,
}

impl NgramTextGenerator {
    /// Trains an n-gram model over `texts` and wraps it for text completion.
    pub fn train<'a, I>(
        name: impl Into<String>,
        order: usize,
        tokenizer: Arc<BpeTokenizer>,
        texts: I,
    ) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut lm = NgramLm::new(order, tokenizer.vocab_size());
        for t in texts {
            let mut ids = tokenizer.encode(t);
            ids.push(tokenizer.eot());
            lm.observe(&ids);
        }
        Self {
            name: name.into(),
            lm,
            tokenizer,
        }
    }

    /// The underlying n-gram model.
    pub fn lm(&self) -> &NgramLm {
        &self.lm
    }
}

impl TextGenerator for NgramTextGenerator {
    fn complete(&self, prompt: &str, opts: &GenerationOptions) -> String {
        let ids = self.tokenizer.encode(prompt);
        let out = self.lm.generate(&ids, self.tokenizer.eot(), opts);
        self.tokenizer.decode(&out)
    }

    fn model_name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memorizes_repeated_pattern() {
        let mut lm = NgramLm::new(3, 10);
        lm.observe(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(lm.predict(&[1, 2]), Some(3));
        assert_eq!(lm.predict(&[2, 3]), Some(1));
    }

    #[test]
    fn backs_off_to_shorter_context() {
        let mut lm = NgramLm::new(3, 10);
        lm.observe(&[5, 1, 7, 5, 2, 7, 5, 3, 7]);
        // Context [9, 9] unseen -> backoff to unigram distribution where 5
        // and 7 dominate equally; prediction must still be produced.
        assert!(lm.predict(&[9, 9]).is_some());
    }

    #[test]
    fn untrained_predicts_none() {
        let lm = NgramLm::new(2, 10);
        assert_eq!(lm.predict(&[1]), None);
        assert!(lm
            .generate(&[1], 0, &GenerationOptions::default())
            .is_empty());
    }

    #[test]
    fn generation_stops_at_stop_token() {
        let mut lm = NgramLm::new(2, 10);
        lm.observe(&[1, 2, 0, 1, 2, 0]);
        let out = lm.generate(
            &[1],
            0,
            &GenerationOptions {
                max_new_tokens: 10,
                ..Default::default()
            },
        );
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn text_generator_round_trip() {
        let corpus = [
            "- name: Install nginx\n  apt:\n    name: nginx\n",
            "- name: Install nginx\n  apt:\n    name: nginx\n",
        ];
        let tok = Arc::new(BpeTokenizer::train(corpus.iter().copied(), 350));
        let g = NgramTextGenerator::train("ngram", 4, tok, corpus.iter().copied());
        let out = g.complete(
            "- name: Install nginx\n",
            &GenerationOptions {
                max_new_tokens: 30,
                ..Default::default()
            },
        );
        assert!(out.contains("apt"), "got: {out:?}");
        assert_eq!(g.model_name(), "ngram");
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_panics() {
        let _ = NgramLm::new(0, 10);
    }
}
