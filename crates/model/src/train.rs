//! Training loops: causal-LM pre-training over packed documents and
//! supervised fine-tuning over (prompt, completion) samples.
//!
//! Mirrors the paper's §4.3/§4.4 recipe at reduced scale:
//! * pre-training packs files into fixed context windows separated by a
//!   special separator token, with a linearly decreasing learning rate;
//! * fine-tuning uses a cosine decreasing schedule and an end-of-text token
//!   after each sample; the loss is masked to completion tokens.

use wisdom_prng::Prng;
use wisdom_tensor::{Adam, AdamConfig};

use crate::transformer::TransformerLm;

/// Hyper-parameters for pre-training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainConfig {
    /// Number of passes over the packed stream.
    pub epochs: usize,
    /// Sequences per optimization step.
    pub batch_size: usize,
    /// Peak learning rate (decays linearly to 10%).
    pub lr: f32,
    /// Global gradient-norm clip (<=0 disables).
    pub max_grad_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            epochs: 2,
            batch_size: 8,
            lr: 3e-3,
            max_grad_norm: 1.0,
            seed: 0,
        }
    }
}

/// Hyper-parameters for fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinetuneConfig {
    /// Number of passes over the samples.
    pub epochs: usize,
    /// Samples per optimization step.
    pub batch_size: usize,
    /// Peak learning rate (cosine decay).
    pub lr: f32,
    /// Global gradient-norm clip (<=0 disables).
    pub max_grad_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// When true, mask the loss to completion tokens only (classic SFT).
    /// The paper fine-tunes as plain code completion, so the default is
    /// full-sequence loss (prompt + completion), which also teaches the
    /// model to *read* the natural-language name tokens.
    pub completion_loss_only: bool,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            batch_size: 8,
            lr: 1e-3,
            max_grad_norm: 1.0,
            seed: 0,
            completion_loss_only: false,
        }
    }
}

/// A supervised fine-tuning sample: the model learns to produce
/// `completion` (plus end-of-text) after `prompt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SftSample {
    /// Conditioning tokens (context + `- name: …` line).
    pub prompt: Vec<u32>,
    /// Tokens to learn (the Ansible body).
    pub completion: Vec<u32>,
}

/// Concatenates documents into one token stream with `sep` between files,
/// as in the paper's pre-training ("files were packed to fill up a context
/// window … a special separator token to separate the files").
pub fn pack_documents(docs: &[Vec<u32>], sep: u32) -> Vec<u32> {
    let total: usize = docs.iter().map(|d| d.len() + 1).sum();
    let mut out = Vec::with_capacity(total);
    for d in docs {
        out.extend_from_slice(d);
        out.push(sep);
    }
    out
}

/// Pre-trains `model` on the packed `stream`; returns mean loss per epoch.
///
/// The stream is cut into non-overlapping windows of `context_window + 1`
/// tokens; windows are shuffled each epoch.
/// Per-step progress callback: `(step, total_steps, loss)`.
pub type ProgressFn<'a> = &'a mut dyn FnMut(usize, usize, f32);

/// Per-epoch checkpoint callback: `(epoch, model)`.
pub type EpochFn<'a> = &'a mut dyn FnMut(usize, &TransformerLm);

pub fn pretrain(
    model: &mut TransformerLm,
    stream: &[u32],
    cfg: &PretrainConfig,
    mut progress: Option<ProgressFn<'_>>,
) -> Vec<f32> {
    let time = model.config().context_window;
    let window = time + 1;
    let n_windows = stream.len() / window;
    if n_windows == 0 {
        return Vec::new();
    }
    let mut adam = Adam::new(AdamConfig {
        lr: cfg.lr,
        ..Default::default()
    });
    let mut rng = Prng::seed_from_u64(cfg.seed);
    let steps_per_epoch = n_windows.div_ceil(cfg.batch_size);
    let total_steps = steps_per_epoch * cfg.epochs;
    let mut step = 0usize;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..n_windows).collect();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch_size) {
            let batch = chunk.len();
            let mut tokens = Vec::with_capacity(batch * time);
            let mut targets = Vec::with_capacity(batch * time);
            for &w in chunk {
                let seq = &stream[w * window..(w + 1) * window];
                tokens.extend_from_slice(&seq[..time]);
                targets.extend(seq[1..].iter().map(|&t| t as usize));
            }
            // Linear decay to 10% of peak.
            let frac = step as f32 / total_steps.max(1) as f32;
            adam.set_lr(cfg.lr * (1.0 - 0.9 * frac));
            let loss =
                model.train_step(&tokens, &targets, batch, time, &mut adam, cfg.max_grad_norm);
            epoch_loss += loss;
            batches += 1;
            step += 1;
            if let Some(cb) = progress.as_deref_mut() {
                cb(step, total_steps, loss);
            }
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f32);
    }
    epoch_losses
}

/// Fine-tunes `model` on SFT samples; returns mean loss per epoch.
///
/// Sequences are `prompt ++ completion ++ <eot>`, left-truncated to the
/// context window (keeping the completion), padded per batch with `pad`;
/// the loss covers completion and `<eot>` positions only.
pub fn finetune(
    model: &mut TransformerLm,
    samples: &[SftSample],
    eot: u32,
    pad: u32,
    cfg: &FinetuneConfig,
    progress: Option<ProgressFn<'_>>,
) -> Vec<f32> {
    finetune_with_epochs(model, samples, eot, pad, cfg, progress, None)
}

/// Like [`finetune`], additionally invoking `on_epoch` with the model state
/// after every epoch — the hook behind the paper's "BLEU score on the
/// validation set to determine the best checkpoint".
pub fn finetune_with_epochs(
    model: &mut TransformerLm,
    samples: &[SftSample],
    eot: u32,
    pad: u32,
    cfg: &FinetuneConfig,
    mut progress: Option<ProgressFn<'_>>,
    mut on_epoch: Option<EpochFn<'_>>,
) -> Vec<f32> {
    if samples.is_empty() {
        return Vec::new();
    }
    let ctx = model.config().context_window;
    // Pre-encode every sample as (tokens, targets).
    let encoded: Vec<(Vec<u32>, Vec<usize>)> = samples
        .iter()
        .map(|s| encode_sft(s, eot, ctx, cfg.completion_loss_only))
        .collect();
    let mut adam = Adam::new(AdamConfig {
        lr: cfg.lr,
        ..Default::default()
    });
    let mut rng = Prng::seed_from_u64(cfg.seed ^ 0x5f37);
    let steps_per_epoch = encoded.len().div_ceil(cfg.batch_size);
    let total_steps = steps_per_epoch * cfg.epochs;
    let mut step = 0usize;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        rng.shuffle(&mut order);
        // Sort within coarse groups by length so batches pad minimally while
        // keeping epoch-level shuffling.
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch_size) {
            let batch = chunk.len();
            let time = chunk
                .iter()
                .map(|&i| encoded[i].0.len())
                .max()
                .expect("non-empty chunk")
                .min(ctx);
            let mut tokens = Vec::with_capacity(batch * time);
            let mut targets = Vec::with_capacity(batch * time);
            for &i in chunk {
                let (tk, tg) = &encoded[i];
                let len = tk.len().min(time);
                tokens.extend_from_slice(&tk[..len]);
                targets.extend_from_slice(&tg[..len]);
                for _ in len..time {
                    tokens.push(pad);
                    targets.push(usize::MAX);
                }
            }
            // Cosine decay (the paper's fine-tuning schedule).
            let frac = step as f32 / total_steps.max(1) as f32;
            adam.set_lr(cfg.lr * 0.5 * (1.0 + (std::f32::consts::PI * frac).cos()));
            let loss =
                model.train_step(&tokens, &targets, batch, time, &mut adam, cfg.max_grad_norm);
            epoch_loss += loss;
            batches += 1;
            step += 1;
            if let Some(cb) = progress.as_deref_mut() {
                cb(step, total_steps, loss);
            }
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f32);
        if let Some(cb) = on_epoch.as_deref_mut() {
            cb(epoch_losses.len(), model);
        }
    }
    epoch_losses
}

/// Builds `(tokens, targets)` for one SFT sample: next-token targets, with
/// prompt positions masked to `usize::MAX` when `mask_prompt` is set.
fn encode_sft(
    sample: &SftSample,
    eot: u32,
    ctx: usize,
    mask_prompt: bool,
) -> (Vec<u32>, Vec<usize>) {
    let mut seq: Vec<u32> = Vec::with_capacity(sample.prompt.len() + sample.completion.len() + 1);
    seq.extend_from_slice(&sample.prompt);
    let prompt_len = seq.len();
    seq.extend_from_slice(&sample.completion);
    seq.push(eot);
    // Left-truncate, keeping at least one prompt token before the completion.
    let (seq, prompt_len) = if seq.len() > ctx + 1 {
        let cut = seq.len() - (ctx + 1);
        let cut = cut.min(prompt_len.saturating_sub(1));
        (seq[cut..].to_vec(), prompt_len - cut)
    } else {
        (seq, prompt_len)
    };
    let len = seq.len() - 1;
    let tokens = seq[..len].to_vec();
    let targets: Vec<usize> = (0..len)
        .map(|i| {
            if mask_prompt && i + 1 < prompt_len {
                usize::MAX
            } else {
                seq[i + 1] as usize
            }
        })
        .collect();
    (tokens, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use wisdom_prng::Prng;

    fn tiny_model(seed: u64) -> TransformerLm {
        let cfg = ModelConfig {
            vocab_size: 30,
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            context_window: 16,
        };
        let mut rng = Prng::seed_from_u64(seed);
        TransformerLm::new(cfg, &mut rng)
    }

    #[test]
    fn pack_documents_inserts_separators() {
        let docs = vec![vec![5, 6], vec![7]];
        assert_eq!(pack_documents(&docs, 1), vec![5, 6, 1, 7, 1]);
    }

    #[test]
    fn pretrain_loss_decreases() {
        let mut model = tiny_model(0);
        // Highly regular stream.
        let stream: Vec<u32> = (0..600).map(|i| 3 + (i % 5) as u32).collect();
        let losses = pretrain(
            &mut model,
            &stream,
            &PretrainConfig {
                epochs: 4,
                batch_size: 4,
                lr: 3e-3,
                ..Default::default()
            },
            None,
        );
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "losses {losses:?}"
        );
    }

    #[test]
    fn pretrain_on_short_stream_is_noop() {
        let mut model = tiny_model(1);
        let stream = vec![1u32; 5]; // shorter than one window
        let losses = pretrain(&mut model, &stream, &PretrainConfig::default(), None);
        assert!(losses.is_empty());
    }

    #[test]
    fn encode_sft_masks_prompt() {
        let s = SftSample {
            prompt: vec![10, 11, 12],
            completion: vec![20, 21],
        };
        let (tokens, targets) = encode_sft(&s, 0, 16, true);
        assert_eq!(tokens, vec![10, 11, 12, 20, 21]);
        assert_eq!(targets, vec![usize::MAX, usize::MAX, 20, 21, 0]);
    }

    #[test]
    fn encode_sft_left_truncates_keeping_completion() {
        let s = SftSample {
            prompt: (0..20).collect(),
            completion: vec![25, 26],
        };
        let (tokens, targets) = encode_sft(&s, 0, 8, true);
        assert_eq!(tokens.len(), 8);
        // Completion tokens and eot target must survive.
        assert!(tokens.ends_with(&[25, 26]));
        assert_eq!(targets[targets.len() - 1], 0);
        assert_eq!(targets[targets.len() - 2], 26);
    }

    #[test]
    fn encode_sft_completion_longer_than_context() {
        let s = SftSample {
            prompt: vec![1],
            completion: (2..30).collect(),
        };
        let ctx = 8;
        let (tokens, _) = encode_sft(&s, 0, ctx, true);
        // Keeps at least the single prompt token; sequence may exceed ctx —
        // the batcher caps time at ctx, so just verify structure here.
        assert_eq!(tokens[0], 1);
    }

    #[test]
    fn finetune_memorizes_tiny_dataset() {
        let mut model = tiny_model(2);
        let samples = vec![
            SftSample {
                prompt: vec![5, 6],
                completion: vec![7, 8, 9],
            },
            SftSample {
                prompt: vec![10, 11],
                completion: vec![12, 13],
            },
        ];
        let losses = finetune(
            &mut model,
            &samples,
            0,
            2,
            &FinetuneConfig {
                epochs: 200,
                batch_size: 2,
                lr: 5e-3,
                ..Default::default()
            },
            None,
        );
        assert!(
            losses.last().unwrap() < &0.2,
            "final loss {:?}",
            losses.last()
        );
        // Greedy generation should now reproduce the completion.
        let out = model.generate(
            &[5, 6],
            &[0],
            &crate::decode::GenerationOptions {
                max_new_tokens: 6,
                ..Default::default()
            },
        );
        assert_eq!(out, vec![7, 8, 9]);
    }

    #[test]
    fn finetune_empty_samples_is_noop() {
        let mut model = tiny_model(3);
        let losses = finetune(&mut model, &[], 0, 2, &FinetuneConfig::default(), None);
        assert!(losses.is_empty());
    }

    #[test]
    fn progress_callback_fires() {
        let mut model = tiny_model(4);
        let stream: Vec<u32> = (0..200).map(|i| (i % 7) as u32).collect();
        let mut calls = 0;
        let mut cb = |_s: usize, _t: usize, _l: f32| calls += 1;
        pretrain(
            &mut model,
            &stream,
            &PretrainConfig {
                epochs: 1,
                batch_size: 4,
                ..Default::default()
            },
            Some(&mut cb),
        );
        assert!(calls > 0);
    }
}
