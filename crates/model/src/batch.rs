//! Continuous-batching decode: many concurrent generation requests share
//! one batched forward pass per token instead of running a matvec chain
//! each.
//!
//! Three layers:
//!
//! * [`DecodeBatch`] — the engine. Holds the in-flight sequences (each with
//!   its own KV cache), samples one token per sequence per round, and runs
//!   [`TransformerLm::step_batch`] for every sequence that survived — so `B`
//!   live requests cost one `B×d` blocked matmul per projection, not `B`
//!   memory-bound matvecs.
//! * [`generate_batch`] — synchronous fan-in over a fixed request list (the
//!   evaluation harness path): admits up to `max_batch_size` sequences,
//!   refills the batch as sequences retire, returns outputs in input order.
//! * [`BatchScheduler`] — the serving path: a bounded submission queue in
//!   front of one dedicated decode worker. Waiting requests are admitted
//!   into the running batch *between* steps (continuous batching, not
//!   static batching); a full queue is reported to the caller as
//!   [`SubmitError::QueueFull`] so the server can shed load with a 503.
//!
//! Determinism: a sequence's trajectory depends only on its own logits,
//! cache, and (for top-k) its own seeded rng. Because `step_batch` is
//! bit-identical per row to `step` at any batch size, every request decoded
//! through this module produces exactly the tokens
//! [`TransformerLm::generate`] would produce for it alone, regardless of
//! batch composition or admission order (`tests/batch_agreement.rs`).

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wisdom_grammar::{Constraint, GrammarCursor, GrammarIndex};
use wisdom_prng::Prng;

use crate::decode::{GenerationOptions, Strategy};
use crate::prefix_cache::{PrefixCacheStats, PrefixKvCache, PrefixPin};
use crate::speculative::{adapt_draft_len, verify_draft, SpeculativeConfig, Speculator};
use crate::telemetry::{BatchTelemetry, GrammarTelemetry, QuantTelemetry, SpeculativeTelemetry};
use crate::transformer::{pick_token, KvCache, Precision, TransformerLm};

/// One generation request at the token level.
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    /// Prompt token ids (left-truncated to the context window like
    /// [`TransformerLm::generate`]).
    pub prompt: Vec<u32>,
    /// Tokens that end generation without being emitted.
    pub stops: Vec<u32>,
    /// Budget, strategy, and sampling seed.
    pub opts: GenerationOptions,
    /// Grammar the completion must satisfy: a shared compiled
    /// [`GrammarIndex`] whose per-sequence cursor masks every logit row, or
    /// `None` for unconstrained decoding. Beam requests ignore it.
    pub grammar: Option<Arc<GrammarIndex>>,
}

impl DecodeRequest {
    /// The constraint this request decodes under ([`Constraint::None`] when
    /// no grammar is attached).
    pub fn constraint(&self) -> Constraint {
        self.grammar
            .as_ref()
            .map_or(Constraint::None, |g| g.constraint())
    }
}

impl PartialEq for DecodeRequest {
    fn eq(&self, other: &Self) -> bool {
        // Two indices of the same constraint kind build identical masks for
        // identical vocabularies, so the constraint kind is the request-level
        // identity of the grammar handle.
        self.prompt == other.prompt
            && self.stops == other.stops
            && self.opts == other.opts
            && self.constraint() == other.constraint()
    }
}

/// One in-flight sequence inside a [`DecodeBatch`].
struct Seq {
    /// Caller-chosen id returned with the finished output.
    tag: usize,
    cache: KvCache,
    /// Logits the *next* token is chosen from.
    logits: Vec<f32>,
    /// Next decode position (number of cached tokens).
    pos: usize,
    out: Vec<u32>,
    stops: Vec<u32>,
    max_new: usize,
    strategy: Strategy,
    rng: Prng,
    done: bool,
    /// When the request entered the system (submission time via the
    /// scheduler, admission time otherwise) — the TTFT origin.
    started: Instant,
    /// Whether the first generated token has been recorded for TTFT.
    first_token_seen: bool,
    /// Pins the prefix-cache segments backing this sequence's prompt until
    /// it retires, so eviction can't drop shared state mid-decode.
    _pin: PrefixPin,
    /// Per-sequence draft proposer — `Some` only for greedy sequences
    /// admitted while speculation is configured.
    drafter: Option<Box<dyn Speculator>>,
    /// Prompt window + emitted tokens, maintained for drafting.
    history: Vec<u32>,
    /// Tokens up to this index of `history` were already reported to the
    /// drafter's online-adaptation hook.
    observed: usize,
    /// Current dynamic draft length (grows on full acceptance, halves on
    /// full rejection).
    draft_len: usize,
    /// Grammar position for constrained sequences: masks every logit row
    /// before the pick and advances past each emitted token. `None` for
    /// unconstrained sequences.
    grammar: Option<GrammarCursor>,
    /// Streaming sink: every emitted token is also sent here the moment it
    /// is chosen, so an HTTP handler can forward it as an SSE event while
    /// decoding continues. Dropped receivers are ignored — an abandoned
    /// stream never stalls or perturbs the batch.
    sink: Option<mpsc::Sender<u32>>,
}

/// Forwards freshly emitted tokens to the sequence's streaming sink, if any.
fn emit_streamed(sink: &Option<mpsc::Sender<u32>>, tokens: &[u32]) {
    if let Some(tx) = sink {
        for &t in tokens {
            let _ = tx.send(t);
        }
    }
}

/// Reports history tokens past the drafter's watermark to its
/// online-adaptation hook (each emitted token exactly once).
fn observe_new_history(seq: &mut Seq) {
    if let Some(drafter) = &mut seq.drafter {
        if seq.observed < seq.history.len() {
            let (ctx_part, new_part) = seq.history.split_at(seq.observed);
            drafter.observe(ctx_part, new_part);
            seq.observed = seq.history.len();
        }
    }
}

/// The continuous-batching decode engine: in-flight sequences with
/// per-sequence KV caches, stepped together.
pub struct DecodeBatch<'m> {
    model: &'m TransformerLm,
    seqs: Vec<Seq>,
    /// Shared prefix KV cache consulted/populated at admission (optional).
    prefix_cache: Option<Arc<PrefixKvCache>>,
    /// Metric handles; `None` keeps the hot path entirely uninstrumented.
    telemetry: Option<BatchTelemetry>,
    /// Speculation sizing; disabled by default, in which case no sequence
    /// ever gets a drafter and the decode path is unchanged.
    speculation: SpeculativeConfig,
    /// Speculation metric handles (verify counters, acceptance histogram,
    /// draft-overhead timer).
    spec_telemetry: Option<SpeculativeTelemetry>,
    /// Grammar metric handles (masked-token counter, mask-build latency,
    /// cached states, forced-token fast-path hits).
    grammar_telemetry: Option<GrammarTelemetry>,
}

impl<'m> DecodeBatch<'m> {
    /// An empty batch over `model`.
    pub fn new(model: &'m TransformerLm) -> Self {
        Self {
            model,
            seqs: Vec::new(),
            prefix_cache: None,
            telemetry: None,
            speculation: SpeculativeConfig::disabled(),
            spec_telemetry: None,
            grammar_telemetry: None,
        }
    }

    /// An empty batch whose admissions reuse (and feed) `cache`: prompt
    /// windows prefill only the suffix past the longest cached prefix.
    /// Outputs stay bit-identical to [`Self::new`] — cached K/V rows are
    /// exact copies of what a cold prefill computes at those positions.
    pub fn with_prefix_cache(model: &'m TransformerLm, cache: Arc<PrefixKvCache>) -> Self {
        Self {
            model,
            seqs: Vec::new(),
            prefix_cache: Some(cache),
            telemetry: None,
            speculation: SpeculativeConfig::disabled(),
            spec_telemetry: None,
            grammar_telemetry: None,
        }
    }

    /// Attaches metric handles: admissions, decode rounds, and retirements
    /// are recorded from here on. Generated tokens are unaffected.
    pub fn set_telemetry(&mut self, telemetry: BatchTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Enables speculative decoding for subsequently admitted greedy
    /// sequences (each gets its own drafter, warmed on its prompt window).
    /// Generated tokens are unaffected — only the number of forward passes
    /// they cost changes (`tests/speculative_agreement.rs`).
    pub fn set_speculation(&mut self, cfg: SpeculativeConfig) {
        self.speculation = cfg;
    }

    /// Attaches speculation metric handles (proposed/accepted/rejected
    /// counters, acceptance-length histogram, draft-overhead timer).
    pub fn set_speculative_telemetry(&mut self, telemetry: SpeculativeTelemetry) {
        self.spec_telemetry = Some(telemetry);
    }

    /// Attaches grammar metric handles (masked-token counter, mask-build
    /// latency histogram, cached-state gauge, forced fast-path counter).
    /// Generated tokens are unaffected.
    pub fn set_grammar_telemetry(&mut self, telemetry: GrammarTelemetry) {
        self.grammar_telemetry = Some(telemetry);
    }

    /// Number of sequences currently in flight.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether no sequences are in flight.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Admits a request into the batch: prefills its prompt window (one
    /// batched forward pass) and registers the sequence for decoding. The
    /// `tag` comes back from [`Self::step`] when the sequence finishes.
    ///
    /// # Panics
    ///
    /// Panics on a beam-search request — beams branch their caches and take
    /// the solo [`TransformerLm::generate`] path instead.
    pub fn admit(&mut self, tag: usize, req: DecodeRequest) {
        self.admit_at(tag, req, None);
    }

    /// [`Self::admit`] with the request's submission time: queue wait is
    /// recorded at admission, and TTFT is measured from `submitted` instead
    /// of from the start of prefill.
    pub fn admit_at(&mut self, tag: usize, req: DecodeRequest, submitted: Option<Instant>) {
        self.admit_full(tag, req, submitted, None);
    }

    /// [`Self::admit_at`] with a streaming sink: every token the sequence
    /// emits is also sent on `sink` as soon as it is chosen (before the next
    /// forward pass), enabling SSE streaming. The sink is dropped when the
    /// sequence retires, which disconnects the receiver — that is the
    /// end-of-stream signal. Generated tokens are unaffected.
    pub fn admit_streaming(
        &mut self,
        tag: usize,
        req: DecodeRequest,
        submitted: Option<Instant>,
        sink: mpsc::Sender<u32>,
    ) {
        self.admit_full(tag, req, submitted, Some(sink));
    }

    fn admit_full(
        &mut self,
        tag: usize,
        req: DecodeRequest,
        submitted: Option<Instant>,
        sink: Option<mpsc::Sender<u32>>,
    ) {
        assert!(
            !matches!(req.opts.strategy, Strategy::Beam { .. }),
            "beam requests take the direct generate path"
        );
        let started = submitted.unwrap_or_else(Instant::now);
        if let Some(t) = &self.telemetry {
            if let Some(at) = submitted {
                t.queue_wait.observe(at.elapsed().as_secs_f64());
            }
            t.admitted.inc();
        }
        let window = self
            .model
            .generation_window(&req.prompt, req.opts.max_new_tokens);
        let pos = window.len();
        let (cache, logits, pin) = match &self.prefix_cache {
            Some(pc) => pc.prefill(self.model, window),
            None => {
                let (cache, logits) = self.model.prefill(window);
                (cache, logits, PrefixPin::default())
            }
        };
        // Speculation composes with the prefix cache because the spliced
        // rows above are private copies: rolling rejected draft rows back
        // out of `cache` can never touch shared tree segments.
        let drafter = (self.speculation.enabled() && matches!(req.opts.strategy, Strategy::Greedy))
            .then(|| {
                self.speculation
                    .build_speculator(self.model.config().vocab_size, window)
            });
        let history = if drafter.is_some() {
            window.to_vec()
        } else {
            Vec::new()
        };
        let observed = history.len();
        // Budget mirrors the solo loop's effective room: the request's
        // token budget capped by what the context window can still absorb.
        let ctx = self.model.config().context_window;
        let grammar = req.grammar.as_ref().map(|g| {
            GrammarCursor::new(
                Arc::clone(g),
                window,
                req.opts.max_new_tokens.min(ctx.saturating_sub(pos)),
            )
        });
        self.seqs.push(Seq {
            tag,
            cache,
            logits,
            pos,
            out: Vec::new(),
            stops: req.stops,
            max_new: req.opts.max_new_tokens,
            strategy: req.opts.strategy,
            rng: Prng::seed_from_u64(req.opts.seed),
            done: false,
            started,
            first_token_seen: false,
            _pin: pin,
            drafter,
            history,
            observed,
            draft_len: self.speculation.max_draft,
            grammar,
            sink,
        });
        if let Some(t) = &self.telemetry {
            t.batch_occupancy.set(self.seqs.len() as f64);
        }
    }

    /// One decode round: every live sequence picks its next token from its
    /// current logits (greedy or seeded top-k, exactly like the solo loop),
    /// sequences that hit a stop token / budget / the context edge retire,
    /// and the survivors advance — speculating sequences through their own
    /// draft-verify pass ([`crate::SpeculativeDecoder`]-style), the rest
    /// through one batched [`TransformerLm::step_batch`].
    ///
    /// Returns the sequences that finished this round as `(tag, tokens)`.
    pub fn step(&mut self) -> Vec<(usize, Vec<u32>)> {
        let ctx = self.model.config().context_window;
        let model = self.model;
        let telemetry = self.telemetry.as_ref();
        let spec_telemetry = self.spec_telemetry.as_ref();
        let grammar_telemetry = self.grammar_telemetry.as_ref();
        // Dense-batch backoff: once the live batch outgrows the configured
        // bound, the batched step already amortizes the weight traffic
        // across rows, so per-sequence verify passes stop paying off and
        // every sequence degrades to plain batched decoding this round.
        let speculating_round =
            self.speculation.enabled() && self.seqs.len() <= self.speculation.max_draft_batch;
        let max_draft = self.speculation.max_draft;
        let mut stepping: Vec<&mut Seq> = Vec::new();
        let mut speculating: Vec<(&mut Seq, Vec<u32>)> = Vec::new();
        for seq in &mut self.seqs {
            // Same conditions, in the same order, as the generate loop: the
            // budget/window check gates sampling, a stop token retires the
            // sequence before it is emitted.
            if seq.out.len() >= seq.max_new || seq.pos >= ctx {
                seq.done = true;
                continue;
            }
            let next = pick_token(
                &mut seq.logits,
                seq.strategy,
                &mut seq.rng,
                seq.grammar.as_ref(),
                grammar_telemetry,
            );
            if seq.stops.contains(&next) {
                seq.done = true;
                continue;
            }
            if let Some(g) = &mut seq.grammar {
                g.advance(next);
            }
            seq.out.push(next);
            emit_streamed(&seq.sink, &[next]);
            if seq.drafter.is_some() {
                seq.history.push(next);
            }
            if let Some(t) = telemetry {
                if !seq.first_token_seen {
                    seq.first_token_seen = true;
                    t.ttft.observe(seq.started.elapsed().as_secs_f64());
                }
            }
            if seq.out.len() >= seq.max_new || seq.pos + 1 >= ctx {
                // The solo loop would run one more step whose logits are
                // never consumed; skipping it leaves the output identical.
                seq.done = true;
                continue;
            }
            // Draft before partitioning: a sequence whose drafter has
            // nothing to propose joins the shared batched step instead.
            if speculating_round {
                if let Some(drafter) = &seq.drafter {
                    let k = seq
                        .draft_len
                        .min(seq.max_new - seq.out.len())
                        .min(ctx - (seq.pos + 1));
                    if k > 0 {
                        let draft_start = Instant::now();
                        let mut draft = drafter.draft(&seq.history, k);
                        draft.truncate(k);
                        // A constrained drafter proposes only legal
                        // continuations: pre-truncating at the first token
                        // the mask would reject keeps every verify row
                        // useful and raises the acceptance rate.
                        if let Some(g) = &seq.grammar {
                            if g.is_active() {
                                draft.truncate(g.legal_prefix_len(&draft));
                            }
                        }
                        if let Some(t) = spec_telemetry {
                            t.draft_overhead
                                .observe(draft_start.elapsed().as_secs_f64());
                        }
                        if !draft.is_empty() {
                            speculating.push((seq, draft));
                            continue;
                        }
                    }
                }
            }
            stepping.push(seq);
        }
        let round_start = telemetry.map(|_| Instant::now());
        let ran_forward = !speculating.is_empty() || !stepping.is_empty();
        for (seq, draft) in speculating {
            let first = *seq.out.last().expect("sampled token");
            let v = verify_draft(
                model,
                &mut seq.cache,
                seq.pos,
                first,
                &draft,
                &seq.stops,
                seq.grammar.as_mut(),
                grammar_telemetry,
            );
            if let Some(t) = spec_telemetry {
                t.verify_passes.inc();
                t.proposed.add(draft.len() as u64);
                t.accepted.add(v.accepted.len() as u64);
                t.rejected.add((draft.len() - v.accepted.len()) as u64);
                t.acceptance_length.observe(v.accepted.len() as f64);
            }
            seq.draft_len =
                adapt_draft_len(seq.draft_len, draft.len(), v.accepted.len(), max_draft);
            seq.out.extend_from_slice(&v.accepted);
            emit_streamed(&seq.sink, &v.accepted);
            seq.history.extend_from_slice(&v.accepted);
            seq.pos += 1 + v.accepted.len();
            seq.logits = v.logits;
            observe_new_history(seq);
            if v.stopped || seq.out.len() >= seq.max_new || seq.pos >= ctx {
                seq.done = true;
            }
        }
        if !stepping.is_empty() {
            let tokens: Vec<u32> = stepping
                .iter()
                .map(|s| *s.out.last().expect("sampled token"))
                .collect();
            let positions: Vec<usize> = stepping.iter().map(|s| s.pos).collect();
            let mut caches: Vec<&mut KvCache> = stepping.iter_mut().map(|s| &mut s.cache).collect();
            let logits = model.step_batch(&tokens, &positions, &mut caches);
            drop(caches);
            for (seq, row) in stepping.iter_mut().zip(logits) {
                seq.logits = row;
                seq.pos += 1;
                // A drafter skipped this round (dense batch / empty draft)
                // still hears about the emitted token.
                observe_new_history(seq);
            }
        }
        if ran_forward {
            if let (Some(t), Some(at)) = (telemetry, round_start) {
                t.token_latency.observe(at.elapsed().as_secs_f64());
            }
        }
        let mut finished = Vec::new();
        self.seqs.retain_mut(|seq| {
            if seq.done {
                finished.push((seq.tag, std::mem::take(&mut seq.out)));
                false
            } else {
                true
            }
        });
        if let Some(t) = telemetry {
            t.completed.add(finished.len() as u64);
            t.batch_occupancy.set(self.seqs.len() as f64);
        }
        finished
    }
}

/// Decodes every request through one continuously refilled batch of at most
/// `max_batch_size` sequences, returning outputs in input order. Beam
/// requests fall back to the solo path (their caches branch per beam).
///
/// Each output is bit-identical to `model.generate` run alone on that
/// request.
pub fn generate_batch(
    model: &TransformerLm,
    requests: Vec<DecodeRequest>,
    max_batch_size: usize,
) -> Vec<Vec<u32>> {
    generate_batch_with(model, requests, max_batch_size, None)
}

/// [`generate_batch`] with an optional shared [`PrefixKvCache`]: admissions
/// consult/populate it, so requests with shared prompt prefixes only
/// prefill their unique suffixes. Outputs are unchanged bit-for-bit.
pub fn generate_batch_with(
    model: &TransformerLm,
    requests: Vec<DecodeRequest>,
    max_batch_size: usize,
    prefix_cache: Option<Arc<PrefixKvCache>>,
) -> Vec<Vec<u32>> {
    generate_batch_inner(
        model,
        requests,
        max_batch_size,
        prefix_cache,
        None,
        SpeculativeConfig::disabled(),
    )
}

/// [`generate_batch_with`] with speculative decoding enabled for greedy
/// requests: each admitted sequence drafts ahead with `speculative.draft`
/// and verifies against the model in batched passes. Outputs are unchanged
/// bit-for-bit (`tests/speculative_agreement.rs`) — speculation only
/// changes how many forward passes they cost.
pub fn generate_batch_speculative(
    model: &TransformerLm,
    requests: Vec<DecodeRequest>,
    max_batch_size: usize,
    prefix_cache: Option<Arc<PrefixKvCache>>,
    speculative: SpeculativeConfig,
) -> Vec<Vec<u32>> {
    generate_batch_inner(
        model,
        requests,
        max_batch_size,
        prefix_cache,
        None,
        speculative,
    )
}

/// [`generate_batch_with`] recording into `telemetry`: every admission,
/// decode round, and retirement hits the metric handles. Outputs are
/// unchanged bit-for-bit — this is the measured arm of the `-- telemetry`
/// overhead experiment in `wisdom-eval`.
pub fn generate_batch_instrumented(
    model: &TransformerLm,
    requests: Vec<DecodeRequest>,
    max_batch_size: usize,
    prefix_cache: Option<Arc<PrefixKvCache>>,
    telemetry: BatchTelemetry,
) -> Vec<Vec<u32>> {
    generate_batch_inner(
        model,
        requests,
        max_batch_size,
        prefix_cache,
        Some(telemetry),
        SpeculativeConfig::disabled(),
    )
}

fn generate_batch_inner(
    model: &TransformerLm,
    requests: Vec<DecodeRequest>,
    max_batch_size: usize,
    prefix_cache: Option<Arc<PrefixKvCache>>,
    telemetry: Option<BatchTelemetry>,
    speculative: SpeculativeConfig,
) -> Vec<Vec<u32>> {
    let cap = max_batch_size.max(1);
    let mut results: Vec<Vec<u32>> = vec![Vec::new(); requests.len()];
    let mut queue = requests.into_iter().enumerate();
    let mut engine = match prefix_cache {
        Some(cache) => DecodeBatch::with_prefix_cache(model, cache),
        None => DecodeBatch::new(model),
    };
    engine.set_speculation(speculative);
    if let Some(t) = telemetry {
        engine.set_telemetry(t);
    }
    loop {
        while engine.len() < cap {
            let Some((tag, req)) = queue.next() else {
                break;
            };
            if matches!(req.opts.strategy, Strategy::Beam { .. }) {
                results[tag] = model.generate(&req.prompt, &req.stops, &req.opts);
                continue;
            }
            engine.admit(tag, req);
        }
        if engine.is_empty() {
            break;
        }
        for (tag, out) in engine.step() {
            results[tag] = out;
        }
    }
    results
}

/// Scheduler sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum sequences decoded together; waiting requests are admitted as
    /// running ones retire.
    pub max_batch_size: usize,
    /// Bounded submission-queue depth; submissions beyond it fail with
    /// [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Byte budget for the shared prefix KV cache consulted at admission;
    /// `0` disables prefix reuse entirely.
    pub prefix_cache_bytes: usize,
    /// Speculative-decoding sizing for admitted greedy sequences;
    /// [`SpeculativeConfig::disabled`] (the default) leaves the decode
    /// path untouched.
    pub speculative: SpeculativeConfig,
    /// Weight precision the worker's model copy serves at; the scheduler
    /// converts its model at spawn when this differs from the model's
    /// current precision, so replicas can serve mixed precisions from one
    /// f32 checkpoint.
    pub precision: Precision,
    /// Default grammar constraint for requests that do not attach their own
    /// [`GrammarIndex`]. The scheduler itself only stores it (building an
    /// index needs the tokenizer); the serving layer reads it to decide
    /// which compiled grammar to attach to each [`DecodeRequest`].
    pub constraint: Constraint,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 8,
            queue_depth: 32,
            prefix_cache_bytes: 64 << 20,
            speculative: SpeculativeConfig::disabled(),
            precision: Precision::F32,
            constraint: Constraint::None,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (the server maps this to
    /// `503` + `Retry-After`).
    QueueFull,
    /// The scheduler is shutting down.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "decode queue is full"),
            SubmitError::ShutDown => write!(f, "scheduler is shut down"),
        }
    }
}

impl Error for SubmitError {}

/// A submitted request's pending result.
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Vec<u32>>,
}

impl Pending {
    /// Blocks until the request finishes. Returns an empty output if the
    /// scheduler shut down before decoding it.
    pub fn wait(self) -> Vec<u32> {
        self.rx.recv().unwrap_or_default()
    }
}

/// A submitted request's pending result plus its live token stream.
///
/// Tokens arrive on `tokens` as they are decoded; the channel disconnects
/// when the sequence retires (end of stream). `result` resolves with the
/// complete output — always bit-identical to the concatenation of the
/// streamed tokens, and to the non-streaming path for the same request.
#[derive(Debug)]
pub struct StreamingPending {
    /// Per-token stream, in emission order.
    pub tokens: mpsc::Receiver<u32>,
    /// The complete output, resolved when the sequence retires.
    pub result: Pending,
}

struct Job {
    req: DecodeRequest,
    reply: mpsc::Sender<Vec<u32>>,
    sink: Option<mpsc::Sender<u32>>,
    submitted: Instant,
}

struct SchedulerState {
    jobs: VecDeque<Job>,
    shutdown: bool,
    /// Test hook: while set, the worker keeps stepping running sequences but
    /// admits nothing, so queue/backpressure behavior is deterministic.
    paused: bool,
}

struct Shared {
    state: Mutex<SchedulerState>,
    /// Signals the worker: job queued, pause toggled, or shutdown.
    job_ready: Condvar,
    /// Signals blocked producers: queue space freed.
    space_free: Condvar,
    /// Sequences currently decoding, published by the worker after each
    /// admission/step round (read lock-free by [`BatchScheduler::stats`]).
    in_flight: AtomicUsize,
    /// Times the worker's condvar wait returned — each one is a wakeup out
    /// of idle (submission, pause toggle, or shutdown), not a poll tick.
    wakeups: AtomicU64,
    /// Set by the worker thread once its decode loop is running; readiness
    /// probes (`GET /readyz`) read this without touching the model.
    worker_ready: AtomicBool,
}

/// A point-in-time snapshot of scheduler load, served by `GET /v1/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Requests waiting in the bounded submission queue.
    pub queue_depth: usize,
    /// Sequences currently being decoded together.
    pub in_flight: usize,
    /// Decode-worker condvar wakeups since spawn (idle exits, not polls).
    pub wakeups: u64,
    /// Prefix-cache counters, when a cache is enabled.
    pub prefix_cache: Option<PrefixCacheStats>,
}

/// A continuous-batching inference scheduler: one dedicated decode worker
/// multiplexing every submitted request onto a shared [`DecodeBatch`].
///
/// Submission is non-blocking and bounded ([`Self::submit`]); handler
/// threads park on the returned [`Pending`] and the worker fans results
/// back over per-request channels. Dropping the scheduler stops the worker.
pub struct BatchScheduler {
    shared: Arc<Shared>,
    model: Arc<TransformerLm>,
    cfg: BatchConfig,
    prefix_cache: Option<Arc<PrefixKvCache>>,
    telemetry: Option<BatchTelemetry>,
    worker: Option<JoinHandle<()>>,
}

impl BatchScheduler {
    /// Starts the decode worker over `model`. A nonzero
    /// [`BatchConfig::prefix_cache_bytes`] enables a shared prefix KV cache
    /// that admissions consult and populate.
    pub fn spawn(model: Arc<TransformerLm>, cfg: BatchConfig) -> Self {
        Self::spawn_with(model, cfg, None)
    }

    /// [`Self::spawn`] with metric handles: the worker and the submission
    /// path record queue wait, TTFT, per-round decode latency, occupancy,
    /// and admitted/completed/shed/wakeup counts into `telemetry`.
    pub fn spawn_with(
        model: Arc<TransformerLm>,
        cfg: BatchConfig,
        telemetry: Option<BatchTelemetry>,
    ) -> Self {
        Self::spawn_full(model, cfg, telemetry, None, None, None)
    }

    /// [`Self::spawn_with`] also recording speculation metrics (verify
    /// counters, acceptance-length histogram, draft-overhead timer) when
    /// [`BatchConfig::speculative`] is enabled, and quantization metrics
    /// (weight bytes saved, quantized-matmul share) into `quant_telemetry`.
    ///
    /// When [`BatchConfig::precision`] differs from the model's current
    /// precision, the scheduler's copy of the model is converted once here
    /// (the caller's model is untouched).
    pub fn spawn_full(
        model: Arc<TransformerLm>,
        cfg: BatchConfig,
        telemetry: Option<BatchTelemetry>,
        spec_telemetry: Option<SpeculativeTelemetry>,
        quant_telemetry: Option<QuantTelemetry>,
        grammar_telemetry: Option<GrammarTelemetry>,
    ) -> Self {
        let cfg = BatchConfig {
            max_batch_size: cfg.max_batch_size.max(1),
            queue_depth: cfg.queue_depth.max(1),
            prefix_cache_bytes: cfg.prefix_cache_bytes,
            speculative: cfg.speculative,
            precision: cfg.precision,
            constraint: cfg.constraint,
        };
        let model = if model.precision() != cfg.precision || quant_telemetry.is_some() {
            let mut m = (*model).clone();
            m.set_precision(cfg.precision);
            m.set_quant_telemetry(quant_telemetry.clone());
            Arc::new(m)
        } else {
            model
        };
        if let Some(qt) = &quant_telemetry {
            qt.weight_bytes.set(model.quant_weight_bytes() as f64);
            qt.weight_bytes_saved
                .set(model.quant_weight_bytes_saved() as f64);
        }
        let prefix_cache = (cfg.prefix_cache_bytes > 0)
            .then(|| Arc::new(PrefixKvCache::with_budget(cfg.prefix_cache_bytes)));
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedulerState {
                jobs: VecDeque::new(),
                shutdown: false,
                paused: false,
            }),
            job_ready: Condvar::new(),
            space_free: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            wakeups: AtomicU64::new(0),
            worker_ready: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker_model = Arc::clone(&model);
        let worker_cache = prefix_cache.clone();
        let worker_telemetry = telemetry.clone();
        let worker = std::thread::Builder::new()
            .name("wisdom-decode".to_string())
            .spawn(move || {
                worker_loop(
                    &worker_model,
                    &worker_shared,
                    cfg,
                    worker_cache,
                    worker_telemetry,
                    spec_telemetry,
                    grammar_telemetry,
                )
            })
            .expect("spawn decode worker");
        Self {
            shared,
            model,
            cfg,
            prefix_cache,
            telemetry,
            worker: Some(worker),
        }
    }

    /// The scheduler's sizing.
    pub fn config(&self) -> BatchConfig {
        self.cfg
    }

    /// The shared prefix KV cache, when enabled.
    pub fn prefix_cache(&self) -> Option<&Arc<PrefixKvCache>> {
        self.prefix_cache.as_ref()
    }

    /// Current load: queued requests, in-flight batch size, and the prefix
    /// cache's counters.
    pub fn stats(&self) -> SchedulerStats {
        let queue_depth = {
            let state = self.shared.state.lock().expect("scheduler lock");
            state.jobs.len()
        };
        SchedulerStats {
            queue_depth,
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
            prefix_cache: self.prefix_cache.as_deref().map(PrefixKvCache::stats),
        }
    }

    /// Whether the decode worker's loop is up and serving. False only in
    /// the startup window between `spawn` and the worker's first iteration
    /// (readiness probes return 503 until then).
    pub fn worker_ready(&self) -> bool {
        self.shared.worker_ready.load(Ordering::Acquire)
    }

    /// Enqueues a request without blocking.
    ///
    /// Beam requests run to completion on the calling thread (the batched
    /// engine multiplexes greedy/top-k only) and return an already-resolved
    /// [`Pending`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShutDown`] after shutdown.
    pub fn submit(&self, req: DecodeRequest) -> Result<Pending, SubmitError> {
        if matches!(req.opts.strategy, Strategy::Beam { .. }) {
            let out = self.model.generate(&req.prompt, &req.stops, &req.opts);
            let (tx, rx) = mpsc::channel();
            let _ = tx.send(out);
            return Ok(Pending { rx });
        }
        self.enqueue(req, None).map(|rx| Pending { rx })
    }

    /// [`Self::submit`] returning a live token stream alongside the pending
    /// result: each decoded token is delivered on
    /// [`StreamingPending::tokens`] the moment it is chosen, and the channel
    /// disconnects when the sequence retires. The final result is
    /// bit-identical to [`Self::submit`] for the same request.
    ///
    /// Beam requests decode on the calling thread (as in [`Self::submit`])
    /// and deliver their whole output through the stream at once.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit`].
    pub fn submit_streaming(&self, req: DecodeRequest) -> Result<StreamingPending, SubmitError> {
        let (sink, tokens) = mpsc::channel();
        if matches!(req.opts.strategy, Strategy::Beam { .. }) {
            let out = self.model.generate(&req.prompt, &req.stops, &req.opts);
            for &t in &out {
                let _ = sink.send(t);
            }
            drop(sink);
            let (tx, rx) = mpsc::channel();
            let _ = tx.send(out);
            return Ok(StreamingPending {
                tokens,
                result: Pending { rx },
            });
        }
        let rx = self.enqueue(req, Some(sink))?;
        Ok(StreamingPending {
            tokens,
            result: Pending { rx },
        })
    }

    fn enqueue(
        &self,
        req: DecodeRequest,
        sink: Option<mpsc::Sender<u32>>,
    ) -> Result<mpsc::Receiver<Vec<u32>>, SubmitError> {
        let mut state = self.shared.state.lock().expect("scheduler lock");
        if state.shutdown {
            return Err(SubmitError::ShutDown);
        }
        if state.jobs.len() >= self.cfg.queue_depth {
            if let Some(t) = &self.telemetry {
                t.shed.inc();
            }
            return Err(SubmitError::QueueFull);
        }
        let (tx, rx) = mpsc::channel();
        state.jobs.push_back(Job {
            req,
            reply: tx,
            sink,
            submitted: Instant::now(),
        });
        if let Some(t) = &self.telemetry {
            t.queue_depth.set(state.jobs.len() as f64);
        }
        self.shared.job_ready.notify_one();
        Ok(rx)
    }

    /// How many leading tokens of `prompt`'s generation window are resident
    /// in this scheduler's prefix cache right now — the cached-prefix
    /// summary a multi-replica router scores replicas with. Read-only: no
    /// hit/miss counters move and no LRU state is touched. Returns 0 when
    /// the cache is disabled.
    pub fn cached_prefix_tokens(&self, prompt: &[u32], max_new: usize) -> usize {
        let Some(cache) = &self.prefix_cache else {
            return 0;
        };
        let window = self.model.generation_window(prompt, max_new);
        cache.probe(window)
    }

    /// Median per-round decode latency in seconds observed so far, from the
    /// attached telemetry's token-latency histogram. `None` when the
    /// scheduler is uninstrumented or no decode round has completed yet —
    /// callers (the `Retry-After` estimator) fall back to a configured
    /// constant.
    pub fn decode_token_p50(&self) -> Option<f64> {
        let snap = self.telemetry.as_ref()?.token_latency.snapshot();
        if snap.count() == 0 {
            return None;
        }
        Some(snap.p50())
    }

    /// Blocking convenience wrapper: waits for queue space instead of
    /// failing, then waits for the result. Output is bit-identical to
    /// `model.generate(prompt, stops, opts)`.
    pub fn generate(&self, prompt: &[u32], stops: &[u32], opts: &GenerationOptions) -> Vec<u32> {
        loop {
            let req = DecodeRequest {
                prompt: prompt.to_vec(),
                stops: stops.to_vec(),
                opts: *opts,
                grammar: None,
            };
            match self.submit(req) {
                Ok(pending) => return pending.wait(),
                Err(SubmitError::ShutDown) => return Vec::new(),
                Err(SubmitError::QueueFull) => {
                    let state = self.shared.state.lock().expect("scheduler lock");
                    if state.jobs.len() >= self.cfg.queue_depth && !state.shutdown {
                        // Re-checked under the lock; a worker admission
                        // between our failed submit and here just means we
                        // retry immediately. Timeout guards a lost wakeup.
                        let _ = self
                            .shared
                            .space_free
                            .wait_timeout(state, Duration::from_millis(50))
                            .expect("scheduler lock");
                    }
                }
            }
        }
    }

    /// Test hook: pauses/resumes admission from the queue into the running
    /// batch. While paused, submissions still queue (and overflow with
    /// [`SubmitError::QueueFull`]) but nothing new starts decoding.
    #[doc(hidden)]
    pub fn set_admission_paused(&self, paused: bool) {
        let mut state = self.shared.state.lock().expect("scheduler lock");
        state.paused = paused;
        self.shared.job_ready.notify_all();
    }

    /// Asks the worker to stop. Queued and in-flight requests resolve to
    /// empty outputs; later submissions fail with [`SubmitError::ShutDown`].
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().expect("scheduler lock");
        state.shutdown = true;
        // Dropping the queued reply senders resolves their waiters with an
        // empty output.
        state.jobs.clear();
        self.shared.job_ready.notify_all();
        self.shared.space_free.notify_all();
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    model: &TransformerLm,
    shared: &Shared,
    cfg: BatchConfig,
    prefix_cache: Option<Arc<PrefixKvCache>>,
    telemetry: Option<BatchTelemetry>,
    spec_telemetry: Option<SpeculativeTelemetry>,
    grammar_telemetry: Option<GrammarTelemetry>,
) {
    let mut engine = match prefix_cache {
        Some(cache) => DecodeBatch::with_prefix_cache(model, cache),
        None => DecodeBatch::new(model),
    };
    if let Some(t) = &telemetry {
        engine.set_telemetry(t.clone());
    }
    engine.set_speculation(cfg.speculative);
    if let Some(t) = spec_telemetry {
        engine.set_speculative_telemetry(t);
    }
    if let Some(t) = grammar_telemetry {
        engine.set_grammar_telemetry(t);
    }
    let mut next_tag = 0usize;
    let mut replies: HashMap<usize, mpsc::Sender<Vec<u32>>> = HashMap::new();
    shared.worker_ready.store(true, Ordering::Release);
    loop {
        // Admission happens between decode steps: take whatever is waiting,
        // up to the batch cap, without stalling running sequences. The idle
        // wait is purely event-driven — submit/pause/shutdown notify the
        // condvar, so an empty scheduler burns no CPU and every wait exit
        // is a counted wakeup, not a poll tick.
        let admitted: Vec<Job> = {
            let mut state = shared.state.lock().expect("scheduler lock");
            loop {
                if state.shutdown {
                    // Dropping the queued and in-flight reply senders
                    // resolves every waiter with an empty output.
                    state.jobs.clear();
                    return;
                }
                if !engine.is_empty() || (!state.paused && !state.jobs.is_empty()) {
                    break;
                }
                state = shared.job_ready.wait(state).expect("scheduler lock");
                shared.wakeups.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &telemetry {
                    t.wakeups.inc();
                }
            }
            let mut taken = Vec::new();
            if !state.paused {
                while engine.len() + taken.len() < cfg.max_batch_size {
                    let Some(job) = state.jobs.pop_front() else {
                        break;
                    };
                    taken.push(job);
                }
                if !taken.is_empty() {
                    shared.space_free.notify_all();
                }
                if let Some(t) = &telemetry {
                    t.queue_depth.set(state.jobs.len() as f64);
                }
            }
            taken
        };
        // Prefill (the expensive part of admission) runs outside the lock.
        for job in admitted {
            let tag = next_tag;
            next_tag += 1;
            replies.insert(tag, job.reply);
            engine.admit_full(tag, job.req, Some(job.submitted), job.sink);
        }
        shared.in_flight.store(engine.len(), Ordering::Relaxed);
        for (tag, out) in engine.step() {
            if let Some(tx) = replies.remove(&tag) {
                // A dropped receiver (abandoned request) is fine.
                let _ = tx.send(out);
            }
        }
        shared.in_flight.store(engine.len(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn tiny_model() -> TransformerLm {
        let cfg = ModelConfig {
            vocab_size: 20,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            context_window: 16,
        };
        let mut rng = Prng::seed_from_u64(7);
        TransformerLm::new(cfg, &mut rng)
    }

    fn greedy(max_new: usize) -> GenerationOptions {
        GenerationOptions {
            max_new_tokens: max_new,
            ..Default::default()
        }
    }

    #[test]
    fn generate_batch_matches_solo_generate() {
        let model = tiny_model();
        let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4], vec![5, 6, 7, 8, 9], vec![]];
        let requests: Vec<DecodeRequest> = prompts
            .iter()
            .map(|p| DecodeRequest {
                prompt: p.clone(),
                stops: vec![0],
                opts: greedy(6),
                grammar: None,
            })
            .collect();
        let batched = generate_batch(&model, requests, 3);
        for (p, got) in prompts.iter().zip(&batched) {
            let solo = model.generate(p, &[0], &greedy(6));
            assert_eq!(got, &solo, "prompt {p:?}");
        }
    }

    #[test]
    fn scheduler_round_trips_requests() {
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn(Arc::clone(&model), BatchConfig::default());
        let out = sched.generate(&[1, 2, 3], &[0], &greedy(5));
        let solo = model.generate(&[1, 2, 3], &[0], &greedy(5));
        assert_eq!(out, solo);
    }

    #[test]
    fn scheduler_backpressure_is_deterministic_when_paused() {
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn(
            Arc::clone(&model),
            BatchConfig {
                max_batch_size: 2,
                queue_depth: 2,
                ..BatchConfig::default()
            },
        );
        sched.set_admission_paused(true);
        let req = || DecodeRequest {
            prompt: vec![1, 2],
            stops: vec![],
            opts: greedy(3),
            grammar: None,
        };
        let a = sched.submit(req()).expect("queued 1");
        let b = sched.submit(req()).expect("queued 2");
        assert_eq!(sched.submit(req()).unwrap_err(), SubmitError::QueueFull);
        sched.set_admission_paused(false);
        let solo = model.generate(&[1, 2], &[], &greedy(3));
        assert_eq!(a.wait(), solo);
        assert_eq!(b.wait(), solo);
    }

    #[test]
    fn scheduler_shutdown_resolves_waiters() {
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn(model, BatchConfig::default());
        sched.set_admission_paused(true);
        let pending = sched
            .submit(DecodeRequest {
                prompt: vec![1],
                stops: vec![],
                opts: greedy(4),
                grammar: None,
            })
            .expect("queued");
        sched.shutdown();
        assert_eq!(pending.wait(), Vec::<u32>::new());
        assert_eq!(
            sched
                .submit(DecodeRequest {
                    prompt: vec![1],
                    stops: vec![],
                    opts: greedy(4),
                    grammar: None,
                })
                .unwrap_err(),
            SubmitError::ShutDown
        );
    }

    #[test]
    fn scheduler_reports_stats_and_prefix_hits() {
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn(Arc::clone(&model), BatchConfig::default());
        let idle = sched.stats();
        assert_eq!((idle.queue_depth, idle.in_flight), (0, 0));
        let cache_stats = idle.prefix_cache.expect("cache enabled by default");
        assert_eq!(cache_stats.hits + cache_stats.misses, 0);

        // The same prompt twice: the second admission must hit the cache,
        // and the output must still match the solo path exactly.
        let solo = model.generate(&[1, 2, 3, 4, 5], &[0], &greedy(4));
        assert_eq!(sched.generate(&[1, 2, 3, 4, 5], &[0], &greedy(4)), solo);
        assert_eq!(sched.generate(&[1, 2, 3, 4, 5], &[0], &greedy(4)), solo);
        let s = sched.stats().prefix_cache.expect("cache enabled");
        assert!(s.hits >= 1, "repeat prompt must hit: {s:?}");
        assert!(s.bytes > 0 && s.bytes <= s.budget_bytes);

        // Disabling the budget disables the cache.
        let plain = BatchScheduler::spawn(
            model,
            BatchConfig {
                prefix_cache_bytes: 0,
                ..BatchConfig::default()
            },
        );
        assert!(plain.stats().prefix_cache.is_none());
        assert!(plain.prefix_cache().is_none());
    }

    #[test]
    fn scheduler_telemetry_records_requests_wakeups_and_sheds() {
        let registry = wisdom_telemetry::Registry::new();
        let telemetry = BatchTelemetry::register(&registry);
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn_with(
            Arc::clone(&model),
            BatchConfig {
                max_batch_size: 2,
                queue_depth: 1,
                ..BatchConfig::default()
            },
            Some(telemetry.clone()),
        );
        // The ready flag flips once the worker loop is up.
        while !sched.worker_ready() {
            std::thread::yield_now();
        }

        let solo = model.generate(&[1, 2, 3], &[0], &greedy(5));
        assert_eq!(sched.generate(&[1, 2, 3], &[0], &greedy(5)), solo);
        assert_eq!(telemetry.admitted.get(), 1);
        assert_eq!(telemetry.completed.get(), 1);
        assert_eq!(telemetry.queue_wait.snapshot().count(), 1);
        assert_eq!(telemetry.ttft.snapshot().count(), 1);
        assert!(telemetry.token_latency.snapshot().count() >= 1);
        // The idle exit that picked the job up is a counted wakeup, in both
        // the lock-free stats field and the registry counter.
        let stats = sched.stats();
        assert!(stats.wakeups >= 1, "{stats:?}");
        assert_eq!(telemetry.wakeups.get(), stats.wakeups);

        // A full queue is a shed, visible as a counter.
        sched.set_admission_paused(true);
        let req = || DecodeRequest {
            prompt: vec![1, 2],
            stops: vec![],
            opts: greedy(2),
            grammar: None,
        };
        let queued = sched.submit(req()).expect("fills the queue");
        assert_eq!(sched.submit(req()).unwrap_err(), SubmitError::QueueFull);
        assert_eq!(telemetry.shed.get(), 1);
        sched.set_admission_paused(false);
        queued.wait();
        assert_eq!(telemetry.admitted.get(), 2);
    }

    #[test]
    fn instrumented_generate_batch_matches_plain() {
        let registry = wisdom_telemetry::Registry::new();
        let telemetry = BatchTelemetry::register(&registry);
        let model = tiny_model();
        let req = |p: &[u32]| DecodeRequest {
            prompt: p.to_vec(),
            stops: vec![0],
            opts: greedy(5),
            grammar: None,
        };
        let requests = vec![req(&[1, 2, 3]), req(&[4, 5]), req(&[6])];
        let plain = generate_batch(&model, requests.clone(), 2);
        let instrumented =
            generate_batch_instrumented(&model, requests, 2, None, telemetry.clone());
        assert_eq!(plain, instrumented, "telemetry must not change tokens");
        assert_eq!(telemetry.admitted.get(), 3);
        assert_eq!(telemetry.completed.get(), 3);
        // No scheduler in this path: TTFT is still recorded (from admission)
        // but queue wait is not.
        assert_eq!(telemetry.ttft.snapshot().count(), 3);
        assert_eq!(telemetry.queue_wait.snapshot().count(), 0);
        assert!((telemetry.batch_occupancy.get() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn speculative_batch_matches_plain_and_records_telemetry() {
        let model = tiny_model();
        let requests: Vec<DecodeRequest> = vec![vec![1, 2, 3, 1, 2, 3], vec![4, 5, 4, 5], vec![6]]
            .into_iter()
            .map(|p| DecodeRequest {
                prompt: p,
                stops: vec![0],
                opts: greedy(8),
                grammar: None,
            })
            .collect();
        let plain = generate_batch(&model, requests.clone(), 2);
        for spec in [
            SpeculativeConfig::ngram(4),
            SpeculativeConfig::self_draft(3),
        ] {
            let speculated = generate_batch_speculative(&model, requests.clone(), 2, None, spec);
            assert_eq!(plain, speculated, "speculation must not change tokens");
        }

        // Through the scheduler, with metric handles attached.
        let registry = wisdom_telemetry::Registry::new();
        let spec_telemetry = SpeculativeTelemetry::register(&registry);
        let sched = BatchScheduler::spawn_full(
            Arc::new(model),
            BatchConfig {
                speculative: SpeculativeConfig::self_draft(3),
                ..BatchConfig::default()
            },
            None,
            Some(spec_telemetry.clone()),
            None,
            None,
        );
        let out = sched.generate(&[1, 2, 3, 1, 2, 3], &[0], &greedy(8));
        assert_eq!(out, plain[0]);
        assert!(
            spec_telemetry.verify_passes.get() >= 1,
            "repetitive prompt must trigger at least one verify pass"
        );
        assert_eq!(
            spec_telemetry.proposed.get(),
            spec_telemetry.accepted.get() + spec_telemetry.rejected.get()
        );
        assert_eq!(
            spec_telemetry.acceptance_length.snapshot().count(),
            spec_telemetry.verify_passes.get()
        );
    }

    #[test]
    fn scheduler_converts_precision_and_reports_quant_metrics() {
        let model = Arc::new(tiny_model());
        let registry = wisdom_telemetry::Registry::new();
        let qt = QuantTelemetry::register(&registry);
        let sched = BatchScheduler::spawn_full(
            Arc::clone(&model),
            BatchConfig {
                precision: Precision::Int8,
                ..BatchConfig::default()
            },
            None,
            None,
            Some(qt.clone()),
            None,
        );
        assert_eq!(sched.config().precision, Precision::Int8);
        assert!(qt.weight_bytes.get() > 0.0);
        assert!(qt.weight_bytes_saved.get() > 0.0);
        // The caller's model is untouched by the conversion.
        assert_eq!(model.precision(), Precision::F32);

        // Served output matches the dequant oracle decoded solo.
        let out = sched.generate(&[1, 2, 3, 4], &[0], &greedy(6));
        let oracle = (*model).clone().with_precision(Precision::Int8Dequant);
        let solo = oracle.generate(&[1, 2, 3, 4], &[0], &greedy(6));
        assert_eq!(out, solo, "int8 scheduler must match the dequant oracle");
        assert!(
            qt.matmuls_int8.get() > 0,
            "decode must route through the quantized kernels"
        );
        assert_eq!(qt.matmuls_f32.get(), 0);
    }

    #[test]
    fn dense_batches_back_off_to_plain_decoding() {
        let model = tiny_model();
        // max_draft_batch 1: with two live sequences nothing speculates,
        // with one it does — outputs must be identical either way.
        let mut spec = SpeculativeConfig::self_draft(3);
        spec.max_draft_batch = 1;
        let requests: Vec<DecodeRequest> = vec![vec![1, 2, 1, 2, 1], vec![3, 4, 3, 4, 3]]
            .into_iter()
            .map(|p| DecodeRequest {
                prompt: p,
                stops: vec![0],
                opts: greedy(6),
                grammar: None,
            })
            .collect();
        let plain = generate_batch(&model, requests.clone(), 2);
        assert_eq!(
            generate_batch_speculative(&model, requests, 2, None, spec),
            plain
        );
    }

    #[test]
    fn streamed_tokens_match_the_pending_result() {
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn(Arc::clone(&model), BatchConfig::default());
        let req = |p: &[u32]| DecodeRequest {
            prompt: p.to_vec(),
            stops: vec![0],
            opts: greedy(6),
            grammar: None,
        };
        // Streamed and plain submissions of the same request, concurrently.
        let streamed = sched.submit_streaming(req(&[1, 2, 3])).expect("submit");
        let plain = sched.submit(req(&[1, 2, 3])).expect("submit");
        let tokens: Vec<u32> = streamed.tokens.iter().collect();
        let result = streamed.result.wait();
        assert_eq!(tokens, result, "stream must carry exactly the output");
        assert_eq!(result, plain.wait(), "streaming must not change tokens");
        assert_eq!(result, model.generate(&[1, 2, 3], &[0], &greedy(6)));

        // Dropping the token receiver must not stall or corrupt decoding.
        let abandoned = sched.submit_streaming(req(&[4, 5])).expect("submit");
        drop(abandoned.tokens);
        assert_eq!(
            abandoned.result.wait(),
            model.generate(&[4, 5], &[0], &greedy(6))
        );
    }

    #[test]
    fn streaming_beam_requests_deliver_whole_output() {
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn(Arc::clone(&model), BatchConfig::default());
        let opts = GenerationOptions {
            max_new_tokens: 4,
            strategy: Strategy::Beam { width: 2 },
            ..Default::default()
        };
        let streamed = sched
            .submit_streaming(DecodeRequest {
                prompt: vec![1, 2],
                stops: vec![0],
                opts,
                grammar: None,
            })
            .expect("beam submit");
        let tokens: Vec<u32> = streamed.tokens.iter().collect();
        let solo = model.generate(&[1, 2], &[0], &opts);
        assert_eq!(tokens, solo);
        assert_eq!(streamed.result.wait(), solo);
    }

    #[test]
    fn beam_requests_take_the_direct_path() {
        let model = Arc::new(tiny_model());
        let sched = BatchScheduler::spawn(Arc::clone(&model), BatchConfig::default());
        let opts = GenerationOptions {
            max_new_tokens: 4,
            strategy: Strategy::Beam { width: 2 },
            ..Default::default()
        };
        let pending = sched
            .submit(DecodeRequest {
                prompt: vec![1, 2],
                stops: vec![0],
                opts,
                grammar: None,
            })
            .expect("beam submit");
        assert_eq!(pending.wait(), model.generate(&[1, 2], &[0], &opts));
    }
}
