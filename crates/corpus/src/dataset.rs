//! Corpus assembly: per-source channels, exact-match deduplication, and the
//! Table 1 statistics.

use std::collections::HashMap;
use std::fmt;

use wisdom_prng::Prng;

use crate::filegen::{emit_task_file, generate_playbook, generate_role_file};
use crate::generic_yaml::generate_generic;
use crate::pretrain_pools::{bigpython_pool, bigquery_pool, pile_pool};
use crate::taskgen::FileCtx;

/// A data source channel, matching Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Ansible Galaxy — fine-tuning data.
    Galaxy,
    /// GitLab Ansible repositories — pre-training.
    GitLab,
    /// GitHub + Google BigQuery Ansible YAML — pre-training.
    GithubGbqAnsible,
    /// GitHub + Google BigQuery generic YAML — pre-training.
    GithubGbqGeneric,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Source::Galaxy => "Galaxy",
            Source::GitLab => "GitLab",
            Source::GithubGbqAnsible => "GitHub + GBQ (Ansible)",
            Source::GithubGbqGeneric => "GitHub + GBQ (Generic)",
        };
        f.write_str(s)
    }
}

/// How many files/documents to build per channel. The paper's absolute
/// counts (112K / 64K / 1.1M / 2.2M) divided by `scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Master seed; every channel forks a sub-stream from it.
    pub seed: u64,
    /// Ansible Galaxy file count (fine-tuning channel).
    pub galaxy_files: usize,
    /// GitLab Ansible file count.
    pub gitlab_files: usize,
    /// GitHub+GBQ Ansible file count.
    pub github_ansible_files: usize,
    /// GitHub+GBQ generic YAML file count.
    pub generic_files: usize,
    /// Pile-style natural-language documents.
    pub pile_docs: usize,
    /// Fraction of Pile documents that are YAML (the Pile's small YAML
    /// admixture: ~25K Ansible + ~600K generic).
    pub pile_yaml_fraction: f64,
    /// BigQuery-style code documents.
    pub bigquery_docs: usize,
    /// BigPython-style documents.
    pub bigpython_docs: usize,
}

impl CorpusSpec {
    /// The paper's Table 1 counts divided by `scale` (e.g. `scale = 1000`
    /// gives 112 Galaxy files).
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn scaled(seed: u64, scale: usize) -> Self {
        assert!(scale > 0, "scale must be positive");
        Self {
            seed,
            galaxy_files: (112_000 / scale).max(8),
            gitlab_files: (64_000 / scale).max(4),
            github_ansible_files: (1_100_000 / scale).max(8),
            generic_files: (2_200_000 / scale).max(8),
            pile_docs: (1_500_000 / scale).max(8),
            pile_yaml_fraction: 0.03,
            bigquery_docs: (800_000 / scale).max(8),
            bigpython_docs: (400_000 / scale).max(8),
        }
    }
}

/// Per-channel build statistics (for the Table 1 report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Files requested by the spec.
    pub requested: usize,
    /// Files kept after deduplication.
    pub kept: usize,
    /// Exact-match duplicates dropped.
    pub duplicates_removed: usize,
}

/// The assembled corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Galaxy fine-tuning files (validated and standardized).
    pub galaxy: Vec<String>,
    /// GitLab Ansible pre-training files (raw crawled style).
    pub gitlab: Vec<String>,
    /// GitHub+GBQ Ansible pre-training files (raw crawled style).
    pub github_ansible: Vec<String>,
    /// GitHub+GBQ generic YAML pre-training files.
    pub generic: Vec<String>,
    /// Pile stand-in documents.
    pub pile: Vec<String>,
    /// BigQuery code stand-in documents.
    pub bigquery: Vec<String>,
    /// BigPython stand-in documents.
    pub bigpython: Vec<String>,
    /// Per-source stats in Table 1 order.
    pub stats: Vec<(Source, SourceStats)>,
}

impl Corpus {
    /// Builds the full corpus for a spec. Deterministic in `spec.seed`.
    pub fn build(spec: &CorpusSpec) -> Corpus {
        let mut root = Prng::seed_from_u64(spec.seed);
        let mut dedup = ExactDedup::new();

        let mut galaxy_rng = root.fork("galaxy");
        let (galaxy, galaxy_stats) =
            build_channel(spec.galaxy_files, &mut dedup, galaxy_file, &mut galaxy_rng);

        let mut gitlab_rng = root.fork("gitlab");
        let (gitlab, gitlab_stats) = build_channel(
            spec.gitlab_files,
            &mut dedup,
            crawled_ansible_file,
            &mut gitlab_rng,
        );

        let mut gh_rng = root.fork("github");
        let (github_ansible, gh_stats) = build_channel(
            spec.github_ansible_files,
            &mut dedup,
            crawled_ansible_file,
            &mut gh_rng,
        );

        let mut gen_rng = root.fork("generic");
        let (generic, gen_stats) = build_channel(
            spec.generic_files,
            &mut dedup,
            |rng| Some(generate_generic(rng)),
            &mut gen_rng,
        );

        let mut pile_rng = root.fork("pile");
        let pile = pile_pool(&mut pile_rng, spec.pile_docs, spec.pile_yaml_fraction);
        let mut bq_rng = root.fork("bigquery");
        let bigquery = bigquery_pool(&mut bq_rng, spec.bigquery_docs);
        let mut bp_rng = root.fork("bigpython");
        let bigpython = bigpython_pool(&mut bp_rng, spec.bigpython_docs);

        Corpus {
            galaxy,
            gitlab,
            github_ansible,
            generic,
            pile,
            bigquery,
            bigpython,
            stats: vec![
                (Source::Galaxy, galaxy_stats),
                (Source::GitLab, gitlab_stats),
                (Source::GithubGbqAnsible, gh_stats),
                (Source::GithubGbqGeneric, gen_stats),
            ],
        }
    }

    /// All Ansible pre-training files (GitLab + GitHub/GBQ), as used by the
    /// Wisdom-Ansible pre-training set.
    pub fn ansible_pretrain(&self) -> Vec<&str> {
        self.gitlab
            .iter()
            .chain(self.github_ansible.iter())
            .map(String::as_str)
            .collect()
    }

    /// Renders the Table 1 dataset report.
    pub fn table1(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 1: Extracted file count per data source\n");
        out.push_str(&format!(
            "{:<26} {:>9} {:>9} {:>7} {:>6}\n",
            "Source", "Requested", "Kept", "Dups", "Usage"
        ));
        for (source, stats) in &self.stats {
            let usage = match source {
                Source::Galaxy => "FT",
                _ => "PT",
            };
            out.push_str(&format!(
                "{:<26} {:>9} {:>9} {:>7} {:>6}\n",
                source.to_string(),
                stats.requested,
                stats.kept,
                stats.duplicates_removed,
                usage
            ));
        }
        out
    }
}

fn hash_text(text: &str) -> u64 {
    // FNV-1a, adequate for exact-match dedup bookkeeping.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Content-confirmed exact-duplicate filter: the 64-bit hash only selects a
/// bucket, membership is decided by comparing the actual text, so a hash
/// collision between two distinct files can never silently drop one (the
/// failure mode a bare `HashSet<u64>` had — at ~3.3 M files the birthday
/// bound puts the chance of at least one 64-bit collision near 3·10⁻⁷ per
/// build, i.e. rare but real at paper scale).
struct ExactDedup {
    hash: fn(&str) -> u64,
    buckets: HashMap<u64, Vec<String>>,
}

impl ExactDedup {
    fn new() -> Self {
        Self::with_hasher(hash_text)
    }

    /// Injectable hash for tests: forcing collisions exercises the
    /// content-confirmation path.
    fn with_hasher(hash: fn(&str) -> u64) -> Self {
        Self {
            hash,
            buckets: HashMap::new(),
        }
    }

    /// Records `text` and returns `true` if it is new; `false` only for a
    /// byte-identical duplicate.
    fn insert(&mut self, text: &str) -> bool {
        let bucket = self.buckets.entry((self.hash)(text)).or_default();
        if bucket.iter().any(|seen| seen == text) {
            return false;
        }
        bucket.push(text.to_string());
        true
    }
}

fn build_channel(
    target: usize,
    dedup: &mut ExactDedup,
    mut gen: impl FnMut(&mut Prng) -> Option<String>,
    rng: &mut Prng,
) -> (Vec<String>, SourceStats) {
    let mut out = Vec::with_capacity(target);
    let mut stats = SourceStats {
        requested: target,
        ..Default::default()
    };
    let max_attempts = target * 4 + 32;
    let mut attempts = 0;
    while out.len() < target && attempts < max_attempts {
        attempts += 1;
        let Some(text) = gen(rng) else { continue };
        if dedup.insert(&text) {
            out.push(text);
        } else {
            stats.duplicates_removed += 1;
        }
    }
    stats.kept = out.len();
    (out, stats)
}

/// One Galaxy file: role task file or playbook, validated and standardized
/// like the paper's fine-tuning pipeline ("checked for valid YAML and
/// correct playbook or task syntax … standardized the formatting").
fn galaxy_file(rng: &mut Prng) -> Option<String> {
    let ctx = FileCtx::galaxy(rng);
    let raw = match rng.weighted_index(&[0.78, 0.09, 0.13]) {
        0 => emit_task_file(&generate_role_file(&ctx, rng)),
        1 => generate_playbook(&ctx, rng, 1, 2).to_yaml(),
        _ => generate_playbook(&ctx, rng, 3, 6).to_yaml(),
    };
    // Validation + standardization: reject unparseable, canonicalize style.
    wisdom_ansible::standardize(&raw).ok()
}

/// One crawled Ansible file (GitHub/GitLab style: mixed spellings, legacy
/// forms, no standardization).
fn crawled_ansible_file(rng: &mut Prng) -> Option<String> {
    let ctx = FileCtx::crawled(rng);
    let text = if rng.chance(0.7) {
        emit_task_file(&generate_role_file(&ctx, rng))
    } else {
        generate_playbook(&ctx, rng, 1, 5).to_yaml()
    };
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_spec() -> CorpusSpec {
        CorpusSpec {
            seed: 11,
            galaxy_files: 30,
            gitlab_files: 10,
            github_ansible_files: 20,
            generic_files: 15,
            pile_docs: 25,
            pile_yaml_fraction: 0.1,
            bigquery_docs: 10,
            bigpython_docs: 10,
        }
    }

    #[test]
    fn build_meets_channel_counts() {
        let c = Corpus::build(&small_spec());
        assert_eq!(c.galaxy.len(), 30);
        assert_eq!(c.gitlab.len(), 10);
        assert_eq!(c.github_ansible.len(), 20);
        assert_eq!(c.generic.len(), 15);
        assert_eq!(c.pile.len(), 25);
    }

    #[test]
    fn galaxy_files_are_standardized_and_valid() {
        let c = Corpus::build(&small_spec());
        for f in &c.galaxy {
            assert!(f.starts_with("---\n"), "standardized files carry marker");
            assert!(
                wisdom_ansible::lint_str(f, wisdom_ansible::LintTarget::Auto).is_empty(),
                "galaxy file should lint clean:\n{f}"
            );
        }
    }

    #[test]
    fn no_exact_duplicates_within_yaml_channels() {
        let c = Corpus::build(&small_spec());
        let mut seen = HashSet::new();
        for f in c
            .galaxy
            .iter()
            .chain(&c.gitlab)
            .chain(&c.github_ansible)
            .chain(&c.generic)
        {
            assert!(seen.insert(f.clone()), "duplicate file:\n{f}");
        }
    }

    #[test]
    fn deterministic_build() {
        let a = Corpus::build(&small_spec());
        let b = Corpus::build(&small_spec());
        assert_eq!(a.galaxy, b.galaxy);
        assert_eq!(a.pile, b.pile);
    }

    #[test]
    fn different_seed_different_corpus() {
        let a = Corpus::build(&small_spec());
        let b = Corpus::build(&CorpusSpec {
            seed: 12,
            ..small_spec()
        });
        assert_ne!(a.galaxy, b.galaxy);
    }

    #[test]
    fn table1_report_lists_all_sources() {
        let c = Corpus::build(&small_spec());
        let report = c.table1();
        assert!(report.contains("Galaxy"));
        assert!(report.contains("GitLab"));
        assert!(report.contains("GitHub + GBQ (Ansible)"));
        assert!(report.contains("GitHub + GBQ (Generic)"));
        assert!(report.contains("FT"));
    }

    #[test]
    fn scaled_spec_matches_paper_ratios() {
        let spec = CorpusSpec::scaled(0, 1000);
        assert_eq!(spec.galaxy_files, 112);
        assert_eq!(spec.gitlab_files, 64);
        assert_eq!(spec.github_ansible_files, 1100);
        assert_eq!(spec.generic_files, 2200);
    }

    #[test]
    fn colliding_hashes_do_not_drop_distinct_files() {
        // Every input collides by construction under the injected hasher;
        // content confirmation must still keep all distinct files and
        // reject only the true duplicate.
        let mut dedup = ExactDedup::with_hasher(|_| 42);
        assert!(dedup.insert("- name: First file\n"));
        assert!(dedup.insert("- name: Second, distinct file\n"));
        assert!(!dedup.insert("- name: First file\n"));
        assert_eq!(dedup.buckets[&42].len(), 2);
    }

    #[test]
    fn default_hasher_spreads_buckets() {
        let mut dedup = ExactDedup::new();
        assert!(dedup.insert("a"));
        assert!(dedup.insert("b"));
        assert!(!dedup.insert("b"));
        assert_eq!(dedup.buckets.len(), 2);
    }

    #[test]
    fn ansible_pretrain_combines_channels() {
        let c = Corpus::build(&small_spec());
        assert_eq!(
            c.ansible_pretrain().len(),
            c.gitlab.len() + c.github_ansible.len()
        );
    }
}
