//! Value pools for the synthetic corpus: packages, services, paths, users —
//! the "nouns" that task generators compose into realistic Ansible content.

use wisdom_prng::Prng;

/// A software product with its package/service names and default port,
/// mirroring the strong package↔service↔port correlations of real IT
/// content that make the NL→YAML mapping learnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Product {
    /// Human name used in task names ("nginx", "PostgreSQL").
    pub label: &'static str,
    /// Debian-family package name.
    pub deb_package: &'static str,
    /// RedHat-family package name.
    pub rpm_package: &'static str,
    /// systemd service name (empty when not a service).
    pub service: &'static str,
    /// Default TCP port (0 when not applicable).
    pub port: u16,
    /// Configuration file path (empty when not applicable).
    pub config_path: &'static str,
}

/// The product catalogue the scenario generator draws from.
pub static PRODUCTS: &[Product] = &[
    Product {
        label: "nginx",
        deb_package: "nginx",
        rpm_package: "nginx",
        service: "nginx",
        port: 80,
        config_path: "/etc/nginx/nginx.conf",
    },
    Product {
        label: "apache",
        deb_package: "apache2",
        rpm_package: "httpd",
        service: "httpd",
        port: 80,
        config_path: "/etc/httpd/conf/httpd.conf",
    },
    Product {
        label: "haproxy",
        deb_package: "haproxy",
        rpm_package: "haproxy",
        service: "haproxy",
        port: 443,
        config_path: "/etc/haproxy/haproxy.cfg",
    },
    Product {
        label: "postgresql",
        deb_package: "postgresql",
        rpm_package: "postgresql-server",
        service: "postgresql",
        port: 5432,
        config_path: "/etc/postgresql/postgresql.conf",
    },
    Product {
        label: "mysql",
        deb_package: "mysql-server",
        rpm_package: "mysql-server",
        service: "mysqld",
        port: 3306,
        config_path: "/etc/my.cnf",
    },
    Product {
        label: "redis",
        deb_package: "redis-server",
        rpm_package: "redis",
        service: "redis",
        port: 6379,
        config_path: "/etc/redis/redis.conf",
    },
    Product {
        label: "docker",
        deb_package: "docker.io",
        rpm_package: "docker-ce",
        service: "docker",
        port: 0,
        config_path: "/etc/docker/daemon.json",
    },
    Product {
        label: "ssh server",
        deb_package: "openssh-server",
        rpm_package: "openssh-server",
        service: "sshd",
        port: 22,
        config_path: "/etc/ssh/sshd_config",
    },
    Product {
        label: "prometheus",
        deb_package: "prometheus",
        rpm_package: "prometheus",
        service: "prometheus",
        port: 9090,
        config_path: "/etc/prometheus/prometheus.yml",
    },
    Product {
        label: "grafana",
        deb_package: "grafana",
        rpm_package: "grafana",
        service: "grafana-server",
        port: 3000,
        config_path: "/etc/grafana/grafana.ini",
    },
    Product {
        label: "fail2ban",
        deb_package: "fail2ban",
        rpm_package: "fail2ban",
        service: "fail2ban",
        port: 0,
        config_path: "/etc/fail2ban/jail.local",
    },
    Product {
        label: "chrony",
        deb_package: "chrony",
        rpm_package: "chrony",
        service: "chronyd",
        port: 0,
        config_path: "/etc/chrony/chrony.conf",
    },
    Product {
        label: "memcached",
        deb_package: "memcached",
        rpm_package: "memcached",
        service: "memcached",
        port: 11211,
        config_path: "/etc/memcached.conf",
    },
    Product {
        label: "rabbitmq",
        deb_package: "rabbitmq-server",
        rpm_package: "rabbitmq-server",
        service: "rabbitmq-server",
        port: 5672,
        config_path: "/etc/rabbitmq/rabbitmq.conf",
    },
    Product {
        label: "elasticsearch",
        deb_package: "elasticsearch",
        rpm_package: "elasticsearch",
        service: "elasticsearch",
        port: 9200,
        config_path: "/etc/elasticsearch/elasticsearch.yml",
    },
    Product {
        label: "jenkins",
        deb_package: "jenkins",
        rpm_package: "jenkins",
        service: "jenkins",
        port: 8080,
        config_path: "/etc/default/jenkins",
    },
    Product {
        label: "node exporter",
        deb_package: "prometheus-node-exporter",
        rpm_package: "node_exporter",
        service: "node_exporter",
        port: 9100,
        config_path: "",
    },
    Product {
        label: "keepalived",
        deb_package: "keepalived",
        rpm_package: "keepalived",
        service: "keepalived",
        port: 0,
        config_path: "/etc/keepalived/keepalived.conf",
    },
];

/// Plain utility packages (no associated service).
pub static UTIL_PACKAGES: &[&str] = &[
    "git",
    "curl",
    "wget",
    "vim",
    "htop",
    "unzip",
    "jq",
    "rsync",
    "tmux",
    "python3-pip",
    "build-essential",
    "net-tools",
    "ca-certificates",
    "gnupg",
    "tree",
    "strace",
];

/// User account names.
pub static USERS: &[&str] = &[
    "deploy", "app", "www-data", "admin", "jenkins", "backup", "monitor", "ansible", "devops",
];

/// Unix groups.
pub static GROUPS: &[&str] = &["wheel", "docker", "sudo", "developers", "web", "ops"];

/// Host group patterns for plays.
pub static HOST_GROUPS: &[&str] = &[
    "all",
    "webservers",
    "dbservers",
    "appservers",
    "loadbalancers",
    "monitoring",
    "workers",
    "localhost",
    "staging",
    "production",
];

/// Repository URLs for git tasks.
pub static GIT_REPOS: &[&str] = &[
    "https://github.com/example/app.git",
    "https://github.com/acme/webapp.git",
    "https://git.example.com/infra/scripts.git",
    "https://github.com/example/api-server.git",
];

/// Download URLs.
pub static DOWNLOAD_URLS: &[(&str, &str)] = &[
    (
        "https://releases.example.com/app/app-1.4.2.tar.gz",
        "/tmp/app.tar.gz",
    ),
    (
        "https://dl.example.org/tools/cli-2.0.1-linux-amd64.tar.gz",
        "/tmp/cli.tar.gz",
    ),
    ("https://get.example.io/installer.sh", "/tmp/installer.sh"),
    (
        "https://artifacts.example.com/agent/agent-latest.rpm",
        "/tmp/agent.rpm",
    ),
];

/// Directory paths for file tasks.
pub static DIRECTORIES: &[&str] = &[
    "/opt/app",
    "/var/www/html",
    "/etc/app",
    "/var/log/app",
    "/srv/data",
    "/opt/scripts",
    "/var/backups",
    "/usr/local/bin",
    "/home/deploy/releases",
];

/// Linux kernel sysctl keys.
pub static SYSCTLS: &[(&str, &str)] = &[
    ("net.ipv4.ip_forward", "1"),
    ("vm.swappiness", "10"),
    ("net.core.somaxconn", "1024"),
    ("fs.file-max", "100000"),
    ("net.ipv4.tcp_tw_reuse", "1"),
];

/// Timezones.
pub static TIMEZONES: &[&str] = &["UTC", "Europe/Berlin", "America/New_York", "Asia/Tokyo"];

/// Target platform of a generated file; decides apt vs yum and package
/// spellings, the way real repositories target distro families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// apt-based content.
    Debian,
    /// yum/dnf-based content.
    RedHat,
    /// Distro-agnostic content (`package` module).
    Generic,
}

impl Platform {
    /// Picks a platform with realistic frequencies.
    pub fn pick(rng: &mut Prng) -> Platform {
        match rng.weighted_index(&[0.45, 0.35, 0.2]) {
            0 => Platform::Debian,
            1 => Platform::RedHat,
            _ => Platform::Generic,
        }
    }

    /// The package-manager module short name for this platform.
    pub fn package_module(&self, rng: &mut Prng) -> &'static str {
        match self {
            Platform::Debian => "apt",
            Platform::RedHat => {
                if rng.chance(0.5) {
                    "yum"
                } else {
                    "dnf"
                }
            }
            Platform::Generic => "package",
        }
    }

    /// The package spelling for `product` on this platform.
    pub fn package_of(&self, product: &Product) -> &'static str {
        match self {
            Platform::Debian | Platform::Generic => product.deb_package,
            Platform::RedHat => product.rpm_package,
        }
    }
}

/// Applies light natural-language noise to a task name: casing variants and
/// occasional politeness/verbosity, so the NL side is not a fixed string.
pub fn name_noise(name: impl AsRef<str>, rng: &mut Prng) -> String {
    let mut n = name.as_ref().to_string();
    match rng.weighted_index(&[0.6, 0.25, 0.15]) {
        0 => {}
        1 => n = lowercase_first(&n),
        _ => {
            // occasionally drop a trailing qualifier like " package"
            if let Some(stripped) = n.strip_suffix(" package") {
                n = stripped.to_string();
            }
        }
    }
    n
}

fn lowercase_first(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_lowercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_have_consistent_fields() {
        for p in PRODUCTS {
            assert!(!p.label.is_empty());
            assert!(!p.deb_package.is_empty());
            assert!(!p.rpm_package.is_empty());
        }
    }

    #[test]
    fn platform_package_module_matches_family() {
        let mut rng = Prng::seed_from_u64(0);
        assert_eq!(Platform::Debian.package_module(&mut rng), "apt");
        assert_eq!(Platform::Generic.package_module(&mut rng), "package");
        let m = Platform::RedHat.package_module(&mut rng);
        assert!(m == "yum" || m == "dnf");
    }

    #[test]
    fn platform_package_spelling() {
        let apache = PRODUCTS.iter().find(|p| p.label == "apache").unwrap();
        assert_eq!(Platform::Debian.package_of(apache), "apache2");
        assert_eq!(Platform::RedHat.package_of(apache), "httpd");
    }

    #[test]
    fn name_noise_preserves_most_content() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..50 {
            let n = name_noise("Install nginx package", &mut rng);
            assert!(n.to_lowercase().contains("nginx"), "{n}");
        }
    }

    #[test]
    fn platform_pick_covers_all() {
        let mut rng = Prng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match Platform::pick(&mut rng) {
                Platform::Debian => seen[0] = true,
                Platform::RedHat => seen[1] = true,
                Platform::Generic => seen[2] = true,
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
