//! File-level generation: scenarios compose correlated task sequences into
//! role task files and playbooks, reproducing the structure of Ansible
//! Galaxy content (roles with task lists; mostly-small playbooks).

use wisdom_ansible::{Play, Playbook, Task, TaskItem};
use wisdom_prng::Prng;
use wisdom_yaml::{Mapping, Value};

use crate::taskgen::{generate_task, pick_product, FileCtx, TaskKind};
use crate::vocab::{Product, HOST_GROUPS, PRODUCTS};

/// A coherent IT-automation scenario; each produces a correlated sequence of
/// tasks, which is what makes "the next task" predictable from context (the
/// T+NL→T and PB+NL→T generation types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Install/configure/start a web server.
    WebServer,
    /// Database server provisioning.
    Database,
    /// Monitoring stack (prometheus/grafana/exporters).
    Monitoring,
    /// Docker host + containers.
    DockerHost,
    /// Accounts, groups, SSH keys.
    UserManagement,
    /// Security hardening.
    Hardening,
    /// Application checkout/deployment.
    AppDeploy,
    /// Base system setup.
    Baseline,
    /// Network appliance configuration (the paper's Fig. 2 example).
    NetworkDevice,
}

/// All scenarios with their sampling weights (roughly matching how common
/// each theme is in public Ansible content).
pub static SCENARIOS: &[(Scenario, f64)] = &[
    (Scenario::WebServer, 0.18),
    (Scenario::Database, 0.13),
    (Scenario::Monitoring, 0.10),
    (Scenario::DockerHost, 0.10),
    (Scenario::UserManagement, 0.12),
    (Scenario::Hardening, 0.10),
    (Scenario::AppDeploy, 0.12),
    (Scenario::Baseline, 0.10),
    (Scenario::NetworkDevice, 0.05),
];

impl Scenario {
    /// Samples a scenario from the weighted distribution.
    pub fn pick(rng: &mut Prng) -> Scenario {
        let weights: Vec<f64> = SCENARIOS.iter().map(|(_, w)| *w).collect();
        SCENARIOS[rng.weighted_index(&weights)].0
    }

    /// Picks the product this scenario centres on.
    pub fn product(&self, rng: &mut Prng) -> &'static Product {
        match self {
            Scenario::WebServer => {
                pick_product(rng, |p| matches!(p.label, "nginx" | "apache" | "haproxy"))
            }
            Scenario::Database => {
                pick_product(rng, |p| matches!(p.label, "postgresql" | "mysql" | "redis"))
            }
            Scenario::Monitoring => pick_product(rng, |p| {
                matches!(p.label, "prometheus" | "grafana" | "node exporter")
            }),
            Scenario::DockerHost => pick_product(rng, |p| p.label == "docker"),
            Scenario::Hardening => pick_product(rng, |p| p.label == "fail2ban"),
            Scenario::UserManagement | Scenario::AppDeploy | Scenario::Baseline => {
                pick_product(rng, |p| p.label == "ssh server")
            }
            Scenario::NetworkDevice => &PRODUCTS[0], // unused by network kinds
        }
    }

    /// The ordered task plan: `(kind, probability_of_inclusion)`.
    fn plan(&self) -> &'static [(TaskKind, f64)] {
        match self {
            Scenario::WebServer => &[
                (TaskKind::UpdateCache, 0.3),
                (TaskKind::InstallProduct, 1.0),
                (TaskKind::DeployConfig, 0.9),
                (TaskKind::EnableService, 1.0),
                (TaskKind::OpenFirewall, 0.5),
                (TaskKind::WaitForPort, 0.3),
            ],
            Scenario::Database => &[
                (TaskKind::InstallProduct, 1.0),
                (TaskKind::DeployConfig, 0.6),
                (TaskKind::EnableService, 1.0),
                (TaskKind::CreateDatabase, 0.7),
                (TaskKind::CreateDbUser, 0.6),
                (TaskKind::OpenFirewall, 0.4),
            ],
            Scenario::Monitoring => &[
                (TaskKind::InstallProduct, 1.0),
                (TaskKind::DeployConfig, 0.9),
                (TaskKind::EnableService, 1.0),
                (TaskKind::WaitForPort, 0.5),
                (TaskKind::DebugMsg, 0.2),
            ],
            Scenario::DockerHost => &[
                (TaskKind::InstallProduct, 1.0),
                (TaskKind::EnableService, 1.0),
                (TaskKind::CreateGroup, 0.4),
                (TaskKind::CreateUser, 0.4),
                (TaskKind::DockerContainer, 1.0),
                (TaskKind::DockerContainer, 0.4),
            ],
            Scenario::UserManagement => &[
                (TaskKind::CreateGroup, 0.8),
                (TaskKind::CreateUser, 1.0),
                (TaskKind::AuthorizedKey, 0.9),
                (TaskKind::ConfigLine, 0.4),
            ],
            Scenario::Hardening => &[
                (TaskKind::InstallProduct, 1.0),
                (TaskKind::DeployConfig, 0.8),
                (TaskKind::EnableService, 1.0),
                (TaskKind::Sysctl, 0.7),
                (TaskKind::ConfigLine, 0.7),
                (TaskKind::OpenFirewall, 0.5),
            ],
            Scenario::AppDeploy => &[
                (TaskKind::CreateDirectory, 0.9),
                (TaskKind::GitClone, 0.7),
                (TaskKind::Download, 0.4),
                (TaskKind::Unarchive, 0.35),
                (TaskKind::DeployConfig, 0.7),
                (TaskKind::CronJob, 0.4),
                (TaskKind::RestartService, 0.5),
            ],
            Scenario::Baseline => &[
                (TaskKind::UpdateCache, 0.7),
                (TaskKind::InstallUtils, 1.0),
                (TaskKind::SetTimezone, 0.6),
                (TaskKind::SetHostname, 0.4),
                (TaskKind::Sysctl, 0.5),
                (TaskKind::CreateUser, 0.3),
            ],
            Scenario::NetworkDevice => &[
                (TaskKind::NetworkFacts, 0.9),
                (TaskKind::NetworkConfig, 1.0),
                (TaskKind::NetworkFacts, 0.5),
                (TaskKind::DebugMsg, 0.2),
            ],
        }
    }

    /// Natural-language play-name templates for this scenario.
    fn play_name(&self, product: &Product, rng: &mut Prng) -> String {
        let options = match self {
            Scenario::WebServer => vec![
                format!("Setup {} web server", product.label),
                format!("Install and configure {}", product.label),
                "Web server provisioning".to_string(),
            ],
            Scenario::Database => vec![
                format!("Provision {} database server", product.label),
                format!("Setup {}", product.label),
                "Database setup playbook".to_string(),
            ],
            Scenario::Monitoring => vec![
                format!("Deploy {} monitoring", product.label),
                "Monitoring stack setup".to_string(),
            ],
            Scenario::DockerHost => vec![
                "Docker host setup".to_string(),
                "Provision container host".to_string(),
            ],
            Scenario::UserManagement => vec![
                "Manage user accounts".to_string(),
                "User provisioning playbook".to_string(),
            ],
            Scenario::Hardening => vec![
                "Security hardening".to_string(),
                "Harden ssh and firewall".to_string(),
            ],
            Scenario::AppDeploy => vec![
                "Deploy application".to_string(),
                "Application rollout playbook".to_string(),
            ],
            Scenario::Baseline => vec![
                "Base system setup".to_string(),
                "Common server configuration".to_string(),
            ],
            Scenario::NetworkDevice => vec![
                "Network Setup Playbook".to_string(),
                "Configure network devices".to_string(),
            ],
        };
        rng.choice(&options).clone()
    }

    /// A host pattern that suits the scenario.
    fn hosts(&self, rng: &mut Prng) -> &'static str {
        let groups: &[&'static str] = match self {
            Scenario::WebServer => &["webservers", "web", "all"],
            Scenario::Database => &["dbservers", "databases", "all"],
            Scenario::Monitoring => &["monitoring", "all"],
            Scenario::DockerHost => &["workers", "docker", "all"],
            // No rng draw here: keeps the deterministic stream unchanged.
            Scenario::NetworkDevice => return "all",
            _ => HOST_GROUPS,
        };
        rng.pick(groups)
    }
}

/// Generates the task sequence for a scenario, bounded to
/// `[min_tasks, max_tasks]`.
pub fn scenario_tasks(
    scenario: Scenario,
    ctx: &FileCtx,
    rng: &mut Prng,
    min_tasks: usize,
    max_tasks: usize,
) -> Vec<Task> {
    let product = scenario.product(rng);
    let mut tasks = Vec::new();
    for &(kind, p) in scenario.plan() {
        if tasks.len() >= max_tasks {
            break;
        }
        if rng.chance(p) {
            tasks.push(generate_task(kind, product, ctx, rng));
        }
    }
    // Top up from the plan's mandatory-ish kinds if we fell short.
    let mut guard = 0;
    while tasks.len() < min_tasks && guard < 20 {
        let plan = scenario.plan();
        let (kind, _) = plan[rng.range_usize(0, plan.len())];
        tasks.push(generate_task(kind, product, ctx, rng));
        guard += 1;
    }
    tasks.truncate(max_tasks);
    tasks
}

/// Generates a role task file (`tasks/main.yml` content).
pub fn generate_role_file(ctx: &FileCtx, rng: &mut Prng) -> Vec<Task> {
    let scenario = Scenario::pick(rng);
    // Galaxy roles average ~5-7 tasks (Table 5's T+NL→T : NL→T ratio).
    scenario_tasks(scenario, ctx, rng, 3, 8)
}

/// Generates a playbook with a single play of `min..=max` tasks.
pub fn generate_playbook(
    ctx: &FileCtx,
    rng: &mut Prng,
    min_tasks: usize,
    max_tasks: usize,
) -> Playbook {
    let scenario = Scenario::pick(rng);
    let product = scenario.product(rng);
    let tasks = scenario_tasks(scenario, ctx, rng, min_tasks, max_tasks);
    let mut keywords = Mapping::new();
    keywords.insert(
        "hosts".to_string(),
        Value::Str(scenario.hosts(rng).to_string()),
    );
    if scenario == Scenario::NetworkDevice {
        keywords.insert(
            "connection".to_string(),
            Value::Str("ansible.netcommon.network_cli".to_string()),
        );
        keywords.insert("gather_facts".to_string(), Value::Bool(false));
    } else {
        if rng.chance(0.4) {
            keywords.insert("become".to_string(), Value::Bool(true));
        }
        if rng.chance(0.25) {
            keywords.insert("gather_facts".to_string(), Value::Bool(rng.chance(0.5)));
        }
        if rng.chance(0.25) {
            let mut vars = Mapping::new();
            vars.insert(
                "app_port".to_string(),
                Value::Int(i64::from(if product.port == 0 {
                    8080
                } else {
                    product.port
                })),
            );
            vars.insert("app_env".to_string(), Value::Str("production".to_string()));
            keywords.insert("vars".to_string(), Value::Map(vars));
        }
    }
    let play = Play {
        name: Some(scenario.play_name(product, rng)),
        hosts: keywords
            .get("hosts")
            .and_then(|v| v.as_str())
            .map(String::from),
        tasks: tasks.into_iter().map(TaskItem::Task).collect(),
        pre_tasks: Vec::new(),
        post_tasks: Vec::new(),
        handlers: Vec::new(),
        keywords,
    };
    Playbook { plays: vec![play] }
}

/// Emits a role task file as canonical YAML text with a `---` marker.
pub fn emit_task_file(tasks: &[Task]) -> String {
    let value = Value::Seq(tasks.iter().map(Task::to_value).collect());
    wisdom_yaml::EmitOptions {
        start_marker: true,
        ..Default::default()
    }
    .emit(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisdom_ansible::{lint_str, LintTarget};

    #[test]
    fn role_files_are_schema_correct() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..30 {
            let ctx = FileCtx::galaxy(&mut rng);
            let tasks = generate_role_file(&ctx, &mut rng);
            assert!((3..=8).contains(&tasks.len()), "{} tasks", tasks.len());
            let text = emit_task_file(&tasks);
            let violations = lint_str(&text, LintTarget::TaskFile);
            assert!(violations.is_empty(), "{violations:?}\n{text}");
        }
    }

    #[test]
    fn playbooks_are_schema_correct_and_parse() {
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..30 {
            let ctx = FileCtx::galaxy(&mut rng);
            let pb = generate_playbook(&ctx, &mut rng, 1, 2);
            let text = pb.to_yaml();
            let violations = lint_str(&text, LintTarget::Playbook);
            assert!(violations.is_empty(), "{violations:?}\n{text}");
            let back = Playbook::parse(&text).unwrap();
            assert_eq!(back.plays.len(), 1);
            assert!(back.plays[0].flat_tasks().len() <= 2);
        }
    }

    #[test]
    fn large_playbooks_have_more_tasks() {
        let mut rng = Prng::seed_from_u64(3);
        let ctx = FileCtx::galaxy(&mut rng);
        let pb = generate_playbook(&ctx, &mut rng, 3, 6);
        assert!(pb.plays[0].flat_tasks().len() >= 3);
    }

    #[test]
    fn crawled_files_may_violate_schema_but_parse() {
        let mut rng = Prng::seed_from_u64(4);
        let mut violations_seen = 0;
        for _ in 0..40 {
            let ctx = FileCtx::crawled(&mut rng);
            let tasks = generate_role_file(&ctx, &mut rng);
            let text = emit_task_file(&tasks);
            assert!(wisdom_yaml::parse(&text).is_ok(), "must stay valid YAML");
            if !lint_str(&text, LintTarget::TaskFile).is_empty() {
                violations_seen += 1;
            }
        }
        assert!(
            violations_seen > 0,
            "crawled content should include historical forms"
        );
    }

    #[test]
    fn determinism() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        let ctx_a = FileCtx::galaxy(&mut a);
        let ctx_b = FileCtx::galaxy(&mut b);
        let fa = emit_task_file(&generate_role_file(&ctx_a, &mut a));
        let fb = emit_task_file(&generate_role_file(&ctx_b, &mut b));
        assert_eq!(fa, fb);
    }

    #[test]
    fn scenario_distribution_covers_all() {
        let mut rng = Prng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(format!("{:?}", Scenario::pick(&mut rng)));
        }
        assert_eq!(seen.len(), SCENARIOS.len());
    }

    #[test]
    fn network_playbooks_use_network_cli() {
        let mut rng = Prng::seed_from_u64(9);
        let ctx = FileCtx::galaxy(&mut rng);
        // Find a network scenario deterministically.
        for _ in 0..200 {
            let pb = generate_playbook(&ctx, &mut rng, 1, 4);
            let kw = &pb.plays[0].keywords;
            if let Some(conn) = kw.get("connection").and_then(|v| v.as_str()) {
                assert_eq!(conn, "ansible.netcommon.network_cli");
                assert_eq!(kw.get("gather_facts"), Some(&Value::Bool(false)));
                return;
            }
        }
        panic!("no network playbook generated in 200 draws");
    }
}
