//! Task generators: produce realistic Ansible tasks with strongly
//! correlated natural-language names, the learnable signal at the heart of
//! the NL→YAML generation problem.

use wisdom_ansible::Task;
use wisdom_prng::Prng;
use wisdom_yaml::{Mapping, Value};

use crate::vocab::{
    name_noise, Platform, Product, DIRECTORIES, DOWNLOAD_URLS, GIT_REPOS, GROUPS, PRODUCTS,
    SYSCTLS, TIMEZONES, USERS, UTIL_PACKAGES,
};

/// Per-file generation context: platform, module spelling style, and
/// source-dependent quirks.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx {
    /// Distro family of the file.
    pub platform: Platform,
    /// Whether modules are written with their FQCN (Galaxy-quality files)
    /// or short aliases (typical raw GitHub content).
    pub use_fqcn: bool,
    /// Probability that a simple task uses legacy `k=v` string arguments
    /// (historical form found in crawled content, normalized away for the
    /// fine-tuning set).
    pub legacy_kv_chance: f64,
    /// Probability of sprinkling extra keywords (`become`, `when`, `tags`).
    pub keyword_chance: f64,
}

impl FileCtx {
    /// Galaxy-style context: FQCN, no legacy forms.
    pub fn galaxy(rng: &mut Prng) -> Self {
        Self {
            platform: Platform::pick(rng),
            use_fqcn: true,
            legacy_kv_chance: 0.0,
            keyword_chance: 0.35,
        }
    }

    /// Raw crawled-content context: mixed spellings and historical forms.
    pub fn crawled(rng: &mut Prng) -> Self {
        Self {
            platform: Platform::pick(rng),
            use_fqcn: rng.chance(0.4),
            legacy_kv_chance: 0.15,
            keyword_chance: 0.3,
        }
    }
}

/// The kinds of tasks the scenario generator can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Install a product's package.
    InstallProduct,
    /// Install a list of utility packages with a loop.
    InstallUtils,
    /// Update the package cache.
    UpdateCache,
    /// Deploy the product's configuration file (template/copy + notify).
    DeployConfig,
    /// Start + enable the product's service.
    EnableService,
    /// Restart the product's service.
    RestartService,
    /// Open the product's port in the firewall.
    OpenFirewall,
    /// Wait for the product's port to come up.
    WaitForPort,
    /// Create an application directory.
    CreateDirectory,
    /// Clone a git repository.
    GitClone,
    /// Download a release artifact.
    Download,
    /// Unpack a downloaded archive.
    Unarchive,
    /// Create a user account.
    CreateUser,
    /// Create a group.
    CreateGroup,
    /// Install an SSH authorized key.
    AuthorizedKey,
    /// Set a sysctl parameter.
    Sysctl,
    /// Edit a config line (lineinfile).
    ConfigLine,
    /// Install a cron job.
    CronJob,
    /// Set the timezone.
    SetTimezone,
    /// Set the hostname.
    SetHostname,
    /// Run a docker container.
    DockerContainer,
    /// Create a database.
    CreateDatabase,
    /// Create a database user.
    CreateDbUser,
    /// Gather facts from a network device.
    NetworkFacts,
    /// Push configuration lines to a network device.
    NetworkConfig,
    /// Print a debug message.
    DebugMsg,
}

/// Deterministically generates one task of the given kind.
pub fn generate_task(kind: TaskKind, product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let mut task = match kind {
        TaskKind::InstallProduct => install_product(product, ctx, rng),
        TaskKind::InstallUtils => install_utils(ctx, rng),
        TaskKind::UpdateCache => update_cache(ctx, rng),
        TaskKind::DeployConfig => deploy_config(product, ctx, rng),
        TaskKind::EnableService => enable_service(product, ctx, rng),
        TaskKind::RestartService => restart_service(product, ctx, rng),
        TaskKind::OpenFirewall => open_firewall(product, ctx, rng),
        TaskKind::WaitForPort => wait_for_port(product, ctx, rng),
        TaskKind::CreateDirectory => create_directory(ctx, rng),
        TaskKind::GitClone => git_clone(ctx, rng),
        TaskKind::Download => download(ctx, rng),
        TaskKind::Unarchive => unarchive(ctx, rng),
        TaskKind::CreateUser => create_user(ctx, rng),
        TaskKind::CreateGroup => create_group(ctx, rng),
        TaskKind::AuthorizedKey => authorized_key(ctx, rng),
        TaskKind::Sysctl => sysctl(ctx, rng),
        TaskKind::ConfigLine => config_line(product, ctx, rng),
        TaskKind::CronJob => cron_job(ctx, rng),
        TaskKind::SetTimezone => set_timezone(ctx, rng),
        TaskKind::SetHostname => set_hostname(ctx, rng),
        TaskKind::DockerContainer => docker_container(ctx, rng),
        TaskKind::CreateDatabase => create_database(product, ctx, rng),
        TaskKind::CreateDbUser => create_db_user(product, ctx, rng),
        TaskKind::NetworkFacts => network_facts(ctx, rng),
        TaskKind::NetworkConfig => network_config(ctx, rng),
        TaskKind::DebugMsg => debug_msg(rng),
    };
    maybe_add_keywords(&mut task, kind, ctx, rng);
    maybe_legacy_kv(&mut task, ctx, rng);
    task
}

fn module_name(short: &str, fqcn: &str, ctx: &FileCtx) -> String {
    if ctx.use_fqcn { fqcn } else { short }.to_string()
}

fn str_val(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

fn map(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Mapping::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Map(m)
}

fn new_task(name: String, module: String, args: Value) -> Task {
    Task {
        name: Some(name),
        module,
        args,
        keywords: Mapping::new(),
    }
}

fn install_product(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let pkg = ctx.platform.package_of(product);
    let templates = [
        format!("Install {}", product.label),
        format!("Install {pkg} package"),
        format!("Ensure {} is installed", product.label),
        format!("Install the latest version of {}", product.label),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let latest = name.contains("latest") || rng.chance(0.2);
    let short = ctx.platform.package_module(rng);
    let fqcn = format!("ansible.builtin.{short}");
    let mut pairs = vec![
        ("name", str_val(pkg)),
        ("state", str_val(if latest { "latest" } else { "present" })),
    ];
    if short == "apt" && rng.chance(0.4) {
        pairs.push(("update_cache", Value::Bool(true)));
    }
    new_task(name, module_name(short, &fqcn, ctx), map(pairs))
}

fn install_utils(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let count = rng.range_usize(2, 5);
    let idx = rng.sample_indices(UTIL_PACKAGES.len(), count);
    let pkgs: Vec<&str> = idx.iter().map(|&i| UTIL_PACKAGES[i]).collect();
    let templates = [
        "Install common packages".to_string(),
        "Install required packages".to_string(),
        format!("Install {} and friends", pkgs[0]),
        "Install base utilities".to_string(),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let short = ctx.platform.package_module(rng);
    let fqcn = format!("ansible.builtin.{short}");
    let args = map(vec![
        (
            "name",
            Value::Seq(pkgs.iter().map(|p| str_val(*p)).collect()),
        ),
        ("state", str_val("present")),
    ]);
    new_task(name, module_name(short, &fqcn, ctx), args)
}

fn update_cache(ctx: &FileCtx, rng: &mut Prng) -> Task {
    match ctx.platform {
        Platform::RedHat => {
            let name = name_noise("Update yum cache", rng);
            new_task(
                name,
                module_name("yum", "ansible.builtin.yum", ctx),
                map(vec![
                    ("name", str_val("*")),
                    ("state", str_val("latest")),
                    ("update_cache", Value::Bool(true)),
                ]),
            )
        }
        _ => {
            let name = name_noise("Update apt cache", rng);
            new_task(
                name,
                module_name("apt", "ansible.builtin.apt", ctx),
                map(vec![
                    ("update_cache", Value::Bool(true)),
                    ("cache_valid_time", Value::Int(3600)),
                    ("name", str_val("*")),
                    ("state", str_val("present")),
                ]),
            )
        }
    }
}

fn deploy_config(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let dest = if product.config_path.is_empty() {
        "/etc/app/app.conf"
    } else {
        product.config_path
    };
    let use_template = rng.chance(0.65);
    let templates = [
        format!("Deploy {} configuration", product.label),
        format!("Copy {} config file", product.label),
        format!("Configure {}", product.label),
        format!("Write the {} config file", product.label),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let base = dest.rsplit('/').next().expect("path has a basename");
    let (short, fqcn, src) = if use_template {
        ("template", "ansible.builtin.template", format!("{base}.j2"))
    } else {
        ("copy", "ansible.builtin.copy", format!("files/{base}"))
    };
    let mut pairs = vec![
        ("src", str_val(src)),
        ("dest", str_val(dest)),
        ("owner", str_val("root")),
        ("group", str_val("root")),
        ("mode", str_val("0644")),
    ];
    if rng.chance(0.3) {
        pairs.push(("backup", Value::Bool(true)));
    }
    let mut t = new_task(name, module_name(short, fqcn, ctx), map(pairs));
    if !product.service.is_empty() && rng.chance(0.7) {
        t.keywords.insert(
            "notify".to_string(),
            str_val(format!("restart {}", product.service)),
        );
    }
    t
}

fn enable_service(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let svc = if product.service.is_empty() {
        "app"
    } else {
        product.service
    };
    let templates = [
        format!("Start {svc} service"),
        format!("Start and enable {svc}"),
        format!("Ensure {svc} is running"),
        format!("Enable and start the {} service", product.label),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let (short, fqcn) = if rng.chance(0.5) {
        ("service", "ansible.builtin.service")
    } else {
        ("systemd", "ansible.builtin.systemd")
    };
    let mut pairs = vec![("name", str_val(svc)), ("state", str_val("started"))];
    if name.to_lowercase().contains("enable") || rng.chance(0.6) {
        pairs.push(("enabled", Value::Bool(true)));
    }
    new_task(name, module_name(short, fqcn, ctx), map(pairs))
}

fn restart_service(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let svc = if product.service.is_empty() {
        "app"
    } else {
        product.service
    };
    let templates = [
        format!("Restart {svc}"),
        format!("Restart {svc} service"),
        format!("Reload {svc} configuration"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let state = if name.to_lowercase().contains("reload") {
        "reloaded"
    } else {
        "restarted"
    };
    let (short, fqcn) = if rng.chance(0.5) {
        ("service", "ansible.builtin.service")
    } else {
        ("systemd", "ansible.builtin.systemd")
    };
    new_task(
        name,
        module_name(short, fqcn, ctx),
        map(vec![("name", str_val(svc)), ("state", str_val(state))]),
    )
}

fn open_firewall(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let port = if product.port == 0 {
        8080
    } else {
        product.port
    };
    let templates = [
        format!("Open port {port} in the firewall"),
        format!("Allow {} traffic", product.label),
        format!("Open firewall for {}", product.label),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    match ctx.platform {
        Platform::RedHat => new_task(
            name,
            module_name("firewalld", "ansible.posix.firewalld", ctx),
            map(vec![
                ("port", str_val(format!("{port}/tcp"))),
                ("permanent", Value::Bool(true)),
                ("immediate", Value::Bool(true)),
                ("state", str_val("enabled")),
            ]),
        ),
        _ => new_task(
            name,
            module_name("ufw", "community.general.ufw", ctx),
            map(vec![
                ("rule", str_val("allow")),
                ("port", Value::Int(i64::from(port))),
                ("proto", str_val("tcp")),
            ]),
        ),
    }
}

fn wait_for_port(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let port = if product.port == 0 {
        8080
    } else {
        product.port
    };
    let templates = [
        format!("Wait for {} to come up", product.label),
        format!("Wait for port {port} to be open"),
        format!("Check that {} is listening", product.label),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("wait_for", "ansible.builtin.wait_for", ctx),
        map(vec![
            ("port", Value::Int(i64::from(port))),
            ("delay", Value::Int(5)),
            ("timeout", Value::Int(120)),
        ]),
    )
}

fn create_directory(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let dir = *rng.choice(DIRECTORIES);
    let templates = [
        format!("Create {dir} directory"),
        format!("Ensure {dir} exists"),
        format!("Create application directory {dir}"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let mut pairs = vec![
        ("path", str_val(dir)),
        ("state", str_val("directory")),
        ("mode", str_val("0755")),
    ];
    if rng.chance(0.4) {
        let user = *rng.choice(USERS);
        pairs.push(("owner", str_val(user)));
        pairs.push(("group", str_val(user)));
    }
    new_task(
        name,
        module_name("file", "ansible.builtin.file", ctx),
        map(pairs),
    )
}

fn git_clone(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let repo = *rng.choice(GIT_REPOS);
    let dest = *rng.choice(&["/opt/app", "/srv/app", "/home/deploy/app"]);
    let short_name = repo
        .rsplit('/')
        .next()
        .and_then(|s| s.strip_suffix(".git"))
        .unwrap_or("repo");
    let templates = [
        format!("Clone {short_name} repository"),
        format!("Checkout {short_name} source code"),
        format!("Clone the {short_name} repo to {dest}"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let mut pairs = vec![("repo", str_val(repo)), ("dest", str_val(dest))];
    if rng.chance(0.5) {
        pairs.push((
            "version",
            str_val(*rng.choice(&["main", "master", "v1.4.2", "stable"])),
        ));
    }
    if rng.chance(0.3) {
        pairs.push(("update", Value::Bool(true)));
    }
    new_task(
        name,
        module_name("git", "ansible.builtin.git", ctx),
        map(pairs),
    )
}

fn download(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let (url, dest) = *rng.choice(DOWNLOAD_URLS);
    let artifact = url.rsplit('/').next().expect("url has a basename");
    let templates = [
        format!("Download {artifact}"),
        format!("Fetch {artifact} release"),
        format!("Download {artifact} to {dest}"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("get_url", "ansible.builtin.get_url", ctx),
        map(vec![
            ("url", str_val(url)),
            ("dest", str_val(dest)),
            ("mode", str_val("0644")),
        ]),
    )
}

fn unarchive(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let (_, src) = *rng.choice(DOWNLOAD_URLS);
    let dest = *rng.choice(&["/opt/app", "/usr/local", "/srv"]);
    let templates = [
        "Extract the release archive".to_string(),
        format!("Unpack archive to {dest}"),
        "Unarchive the downloaded artifact".to_string(),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("unarchive", "ansible.builtin.unarchive", ctx),
        map(vec![
            ("src", str_val(src)),
            ("dest", str_val(dest)),
            ("remote_src", Value::Bool(true)),
        ]),
    )
}

fn create_user(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let user = *rng.choice(USERS);
    let templates = [
        format!("Create {user} user"),
        format!("Add the {user} user account"),
        format!("Ensure user {user} exists"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let mut pairs = vec![("name", str_val(user)), ("state", str_val("present"))];
    if rng.chance(0.6) {
        pairs.push(("shell", str_val("/bin/bash")));
    }
    if rng.chance(0.4) {
        pairs.push(("groups", str_val(*rng.choice(GROUPS))));
        pairs.push(("append", Value::Bool(true)));
    }
    if rng.chance(0.2) {
        pairs.push(("system", Value::Bool(true)));
    }
    new_task(
        name,
        module_name("user", "ansible.builtin.user", ctx),
        map(pairs),
    )
}

fn create_group(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let group = *rng.choice(GROUPS);
    let templates = [
        format!("Create {group} group"),
        format!("Ensure group {group} exists"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("group", "ansible.builtin.group", ctx),
        map(vec![
            ("name", str_val(group)),
            ("state", str_val("present")),
        ]),
    )
}

fn authorized_key(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let user = *rng.choice(USERS);
    let templates = [
        format!("Install SSH key for {user}"),
        format!("Add authorized key for {user}"),
        format!("Deploy {user} public key"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("authorized_key", "ansible.posix.authorized_key", ctx),
        map(vec![
            ("user", str_val(user)),
            (
                "key",
                str_val(format!("{{{{ lookup('file', 'keys/{user}.pub') }}}}")),
            ),
            ("state", str_val("present")),
        ]),
    )
}

fn sysctl(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let (key, value) = *rng.choice(SYSCTLS);
    let templates = [
        format!("Set {key}"),
        format!("Configure sysctl {key}"),
        format!("Set kernel parameter {key} to {value}"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("sysctl", "ansible.posix.sysctl", ctx),
        map(vec![
            ("name", str_val(key)),
            ("value", str_val(value)),
            ("state", str_val("present")),
            ("reload", Value::Bool(true)),
        ]),
    )
}

fn config_line(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let (path, line, regexp) = if product.service == "sshd" || rng.chance(0.4) {
        (
            "/etc/ssh/sshd_config",
            "PermitRootLogin no",
            "^#?PermitRootLogin",
        )
    } else if product.config_path.is_empty() {
        (
            "/etc/app/app.conf",
            "max_connections = 100",
            "^max_connections",
        )
    } else {
        (product.config_path, "log_level = info", "^log_level")
    };
    let templates = [
        format!(
            "Set {} in {path}",
            line.split([' ', '='])
                .next()
                .expect("line has a first word")
        ),
        format!("Update {path}"),
        format!("Ensure {line} is set"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("lineinfile", "ansible.builtin.lineinfile", ctx),
        map(vec![
            ("path", str_val(path)),
            ("regexp", str_val(regexp)),
            ("line", str_val(line)),
            ("state", str_val("present")),
        ]),
    )
}

fn cron_job(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let (job_name, job_cmd, minute, hour) = *rng.choice(&[
        ("nightly backup", "/opt/scripts/backup.sh", "0", "2"),
        ("log rotation", "/opt/scripts/rotate-logs.sh", "30", "1"),
        ("metrics push", "/usr/local/bin/push-metrics", "*/5", "*"),
        (
            "cleanup temp files",
            "find /tmp -mtime +7 -delete",
            "15",
            "3",
        ),
    ]);
    let templates = [
        format!("Schedule {job_name}"),
        format!("Add cron job for {job_name}"),
        format!("Create {job_name} cron entry"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("cron", "ansible.builtin.cron", ctx),
        map(vec![
            ("name", str_val(job_name)),
            ("minute", str_val(minute)),
            ("hour", str_val(hour)),
            ("job", str_val(job_cmd)),
        ]),
    )
}

fn set_timezone(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let tz = *rng.choice(TIMEZONES);
    let templates = [
        format!("Set timezone to {tz}"),
        format!("Configure the system timezone as {tz}"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("timezone", "community.general.timezone", ctx),
        map(vec![("name", str_val(tz))]),
    )
}

fn set_hostname(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let templates = [
        "Set the hostname".to_string(),
        "Update the hostname".to_string(),
        "Configure machine hostname".to_string(),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("hostname", "ansible.builtin.hostname", ctx),
        map(vec![("name", str_val("{{ inventory_hostname }}"))]),
    )
}

fn docker_container(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let (cname, image, port) = *rng.choice(&[
        ("webapp", "example/webapp:1.4", "8080:8080"),
        ("redis-cache", "redis:7-alpine", "6379:6379"),
        ("reverse-proxy", "nginx:stable", "80:80"),
        ("metrics", "prom/prometheus:latest", "9090:9090"),
    ]);
    let templates = [
        format!("Run {cname} container"),
        format!("Start the {cname} docker container"),
        format!("Deploy {image} container"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    new_task(
        name,
        module_name("docker_container", "community.docker.docker_container", ctx),
        map(vec![
            ("name", str_val(cname)),
            ("image", str_val(image)),
            ("state", str_val("started")),
            ("ports", Value::Seq(vec![str_val(port)])),
            ("restart_policy", str_val("always")),
        ]),
    )
}

fn create_database(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let db = *rng.choice(&["appdb", "inventory", "metrics", "users"]);
    let templates = [
        format!("Create {db} database"),
        format!("Ensure the {db} database exists"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    if product.label == "mysql" {
        new_task(
            name,
            module_name("mysql_db", "community.mysql.mysql_db", ctx),
            map(vec![("name", str_val(db)), ("state", str_val("present"))]),
        )
    } else {
        new_task(
            name,
            module_name("postgresql_db", "community.postgresql.postgresql_db", ctx),
            map(vec![("name", str_val(db)), ("state", str_val("present"))]),
        )
    }
}

fn create_db_user(product: &Product, ctx: &FileCtx, rng: &mut Prng) -> Task {
    let user = *rng.choice(&["appuser", "readonly", "svc_metrics"]);
    let templates = [
        format!("Create database user {user}"),
        format!("Add {user} db account"),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    if product.label == "mysql" {
        new_task(
            name,
            module_name("mysql_user", "community.mysql.mysql_user", ctx),
            map(vec![
                ("name", str_val(user)),
                ("password", str_val("{{ vault_db_password }}")),
                ("priv", str_val("appdb.*:ALL")),
                ("state", str_val("present")),
            ]),
        )
    } else {
        new_task(
            name,
            module_name(
                "postgresql_user",
                "community.postgresql.postgresql_user",
                ctx,
            ),
            map(vec![
                ("name", str_val(user)),
                ("password", str_val("{{ vault_db_password }}")),
                ("db", str_val("appdb")),
                ("state", str_val("present")),
            ]),
        )
    }
}

fn network_facts(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let vyos = rng.chance(0.5);
    let templates = if vyos {
        ["Get config for VyOS devices", "Gather VyOS facts"]
    } else {
        ["Collect IOS device facts", "Gather facts from IOS devices"]
    };
    let name = name_noise(rng.choice(&templates), rng);
    let (short, fqcn) = if vyos {
        ("vyos_facts", "vyos.vyos.vyos_facts")
    } else {
        ("ios_facts", "cisco.ios.ios_facts")
    };
    new_task(
        name,
        module_name(short, fqcn, ctx),
        map(vec![("gather_subset", str_val("all"))]),
    )
}

fn network_config(ctx: &FileCtx, rng: &mut Prng) -> Task {
    let vyos = rng.chance(0.5);
    let (short, fqcn, line) = if vyos {
        (
            "vyos_config",
            "vyos.vyos.vyos_config",
            "set system host-name vyos-changed",
        )
    } else {
        ("ios_config", "cisco.ios.ios_config", "hostname core-sw-01")
    };
    let templates = [
        "Update the hostname".to_string(),
        "Push device configuration".to_string(),
        "Apply configuration lines".to_string(),
    ];
    let name = name_noise(rng.choice(&templates), rng);
    let mut pairs = vec![("lines", Value::Seq(vec![str_val(line)]))];
    if rng.chance(0.5) {
        pairs.insert(0, ("backup", Value::Bool(true)));
    }
    new_task(name, module_name(short, fqcn, ctx), map(pairs))
}

fn debug_msg(rng: &mut Prng) -> Task {
    let msg = *rng.choice(&[
        "Deployment finished",
        "Configuration applied",
        "Starting rollout",
    ]);
    let name = name_noise(rng.choice(&["Print status message", "Show progress"]), rng);
    new_task(
        name,
        "ansible.builtin.debug".to_string(),
        map(vec![("msg", str_val(msg))]),
    )
}

fn maybe_add_keywords(task: &mut Task, kind: TaskKind, ctx: &FileCtx, rng: &mut Prng) {
    if !rng.chance(ctx.keyword_chance) {
        return;
    }
    match rng.weighted_index(&[0.35, 0.25, 0.2, 0.2]) {
        0 => {
            if matches!(
                kind,
                TaskKind::InstallProduct
                    | TaskKind::InstallUtils
                    | TaskKind::UpdateCache
                    | TaskKind::EnableService
                    | TaskKind::DeployConfig
            ) {
                task.keywords
                    .insert("become".to_string(), Value::Bool(true));
            }
        }
        1 => {
            let cond = match ctx.platform {
                Platform::Debian => "ansible_os_family == 'Debian'",
                Platform::RedHat => "ansible_os_family == 'RedHat'",
                Platform::Generic => "ansible_facts['os_family'] is defined",
            };
            task.keywords
                .insert("when".to_string(), Value::Str(cond.to_string()));
        }
        2 => {
            let tag = *rng.choice(&["setup", "config", "deploy", "security"]);
            task.keywords
                .insert("tags".to_string(), Value::Seq(vec![str_val(tag)]));
        }
        _ => {
            task.keywords
                .insert("register".to_string(), str_val("result"));
        }
    }
}

/// Occasionally rewrites mapping args into the legacy `k=v` string form
/// (crawled-content quirk, rejected by the strict schema).
fn maybe_legacy_kv(task: &mut Task, ctx: &FileCtx, rng: &mut Prng) {
    if !rng.chance(ctx.legacy_kv_chance) {
        return;
    }
    let Some(args) = task.args.as_map() else {
        return;
    };
    let mut parts = Vec::new();
    for (k, v) in args.iter() {
        let rendered = match v {
            Value::Str(s) if !s.contains(' ') && !s.is_empty() => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Bool(b) => if *b { "yes" } else { "no" }.to_string(),
            _ => return, // lists/maps/spaces don't fit k=v; keep mapping form
        };
        parts.push(format!("{k}={rendered}"));
    }
    if parts.is_empty() {
        return;
    }
    task.args = Value::Str(parts.join(" "));
}

/// Picks a random product suitable for the given scenario family.
pub fn pick_product<'a>(rng: &mut Prng, filter: impl Fn(&Product) -> bool) -> &'a Product {
    let candidates: Vec<&Product> = PRODUCTS.iter().filter(|p| filter(p)).collect();
    assert!(!candidates.is_empty(), "product filter matched nothing");
    candidates[rng.range_usize(0, candidates.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisdom_ansible::{lint_str, LintTarget};

    fn galaxy_ctx(seed: u64) -> (FileCtx, Prng) {
        let mut rng = Prng::seed_from_u64(seed);
        let ctx = FileCtx::galaxy(&mut rng);
        (ctx, rng)
    }

    const ALL_KINDS: &[TaskKind] = &[
        TaskKind::InstallProduct,
        TaskKind::InstallUtils,
        TaskKind::UpdateCache,
        TaskKind::DeployConfig,
        TaskKind::EnableService,
        TaskKind::RestartService,
        TaskKind::OpenFirewall,
        TaskKind::WaitForPort,
        TaskKind::CreateDirectory,
        TaskKind::GitClone,
        TaskKind::Download,
        TaskKind::Unarchive,
        TaskKind::CreateUser,
        TaskKind::CreateGroup,
        TaskKind::AuthorizedKey,
        TaskKind::Sysctl,
        TaskKind::ConfigLine,
        TaskKind::CronJob,
        TaskKind::SetTimezone,
        TaskKind::SetHostname,
        TaskKind::DockerContainer,
        TaskKind::CreateDatabase,
        TaskKind::CreateDbUser,
        TaskKind::NetworkFacts,
        TaskKind::NetworkConfig,
        TaskKind::DebugMsg,
    ];

    #[test]
    fn every_kind_generates_schema_correct_galaxy_tasks() {
        let (ctx, mut rng) = galaxy_ctx(1);
        for (i, &kind) in ALL_KINDS.iter().enumerate() {
            for rep in 0..8 {
                let product = &PRODUCTS[(i + rep) % PRODUCTS.len()];
                let task = generate_task(kind, product, &ctx, &mut rng);
                let doc = wisdom_yaml::emit(&Value::Seq(vec![task.to_value()]));
                let violations = lint_str(&doc, LintTarget::TaskFile);
                assert!(
                    violations.is_empty(),
                    "kind {kind:?} produced invalid task: {violations:?}\n{doc}"
                );
            }
        }
    }

    #[test]
    fn tasks_have_names() {
        let (ctx, mut rng) = galaxy_ctx(2);
        for &kind in ALL_KINDS {
            let t = generate_task(kind, &PRODUCTS[0], &ctx, &mut rng);
            assert!(t.name.as_deref().is_some_and(|n| !n.is_empty()));
        }
    }

    #[test]
    fn name_correlates_with_module_for_installs() {
        let (ctx, mut rng) = galaxy_ctx(3);
        for _ in 0..20 {
            let t = generate_task(TaskKind::InstallProduct, &PRODUCTS[0], &ctx, &mut rng);
            assert!(
                t.fqcn().contains("apt")
                    || t.fqcn().contains("yum")
                    || t.fqcn().contains("dnf")
                    || t.fqcn().contains("package"),
                "install task uses a package module, got {}",
                t.module
            );
        }
    }

    #[test]
    fn crawled_ctx_produces_legacy_forms_sometimes() {
        let mut rng = Prng::seed_from_u64(4);
        let ctx = FileCtx {
            legacy_kv_chance: 1.0,
            ..FileCtx::crawled(&mut rng)
        };
        let mut saw_kv = false;
        for _ in 0..20 {
            let t = generate_task(TaskKind::EnableService, &PRODUCTS[0], &ctx, &mut rng);
            if t.args.as_str().is_some() {
                saw_kv = true;
            }
        }
        assert!(saw_kv, "expected at least one k=v form");
    }

    #[test]
    fn determinism_same_seed_same_task() {
        let (ctx, _) = galaxy_ctx(5);
        let mut a = Prng::seed_from_u64(99);
        let mut b = Prng::seed_from_u64(99);
        let ta = generate_task(TaskKind::GitClone, &PRODUCTS[2], &ctx, &mut a);
        let tb = generate_task(TaskKind::GitClone, &PRODUCTS[2], &ctx, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn pick_product_honours_filter() {
        let mut rng = Prng::seed_from_u64(6);
        for _ in 0..20 {
            let p = pick_product(&mut rng, |p| p.port == 80);
            assert_eq!(p.port, 80);
        }
    }
}
