//! Fine-tuning/evaluation sample extraction: the four generation types of
//! §4.4.2 (NL→PB, PB+NL→T, NL→T, T+NL→T), the 80/10/10 file split, the
//! sample-level dedup, and the paper's prompt re-formalization (§4.4.3):
//! NL→code becomes code *completion* of a `- name: <intent>` line.

use std::collections::HashSet;
use std::fmt;

use wisdom_ansible::{Playbook, Task, TaskItem};
use wisdom_prng::Prng;
use wisdom_yaml::Value;

/// The four input/output combinations of the fine-tuning dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenType {
    /// Natural language → full playbook (no context).
    NlToPb,
    /// Playbook context + NL → next task.
    PbNlToT,
    /// NL → first task of a role (no context).
    NlToT,
    /// Previous tasks + NL → next task.
    TNlToT,
}

impl GenType {
    /// All types, in the paper's Table 5 order.
    pub const ALL: [GenType; 4] = [
        GenType::NlToPb,
        GenType::NlToT,
        GenType::PbNlToT,
        GenType::TNlToT,
    ];
}

impl fmt::Display for GenType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GenType::NlToPb => "NL->PB",
            GenType::PbNlToT => "PB+NL->T",
            GenType::NlToT => "NL->T",
            GenType::TNlToT => "T+NL->T",
        };
        f.write_str(s)
    }
}

/// How the model input is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PromptStyle {
    /// The paper's re-formalization: context followed by a literal
    /// `- name: <NL>` line that the model completes (Eq. 2).
    #[default]
    NameCompletion,
    /// The ablation baseline ("CodeGen-prefix"): explicit `context code:` /
    /// `prompt:` / `code:` sections.
    Prefix,
}

/// One NL→Ansible sample.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sample {
    /// Which generation type this sample belongs to.
    pub gen_type: GenType,
    /// Preceding file content (empty for the contextless types).
    pub context: String,
    /// The natural-language intent `X` (= the `name` value).
    pub nl: String,
    /// Gold completion: the YAML following the name line, with the
    /// indentation it has inside the file.
    pub expected: String,
    /// Column of the `- name:` dash.
    pub name_indent: usize,
    /// Column of the body keys (module etc.).
    pub body_indent: usize,
}

impl Sample {
    /// Builds the model input text under the chosen prompt style.
    pub fn prompt_text(&self, style: PromptStyle) -> String {
        match style {
            PromptStyle::NameCompletion => format!(
                "{}{}- name: {}\n",
                self.context,
                " ".repeat(self.name_indent),
                self.nl
            ),
            PromptStyle::Prefix => format!(
                "context code:\n{}prompt: {}\ncode:\n",
                self.context, self.nl
            ),
        }
    }

    /// Reconstructs a standalone, parseable YAML document from a completion
    /// body (the gold `expected` or a model output): de-indents the body to
    /// top level and prepends the name line. Tasks become one-task files,
    /// playbooks become one-play playbooks — ready for Schema Correct and
    /// Ansible Aware scoring.
    pub fn scoring_document(&self, body: &str) -> String {
        let shift = self.body_indent.saturating_sub(2);
        let mut out = format!("- name: {}\n", self.nl);
        for line in body.lines() {
            if line.trim().is_empty() {
                out.push('\n');
                continue;
            }
            let indent = line.len() - line.trim_start_matches(' ').len();
            let new_indent = indent.saturating_sub(shift);
            out.push_str(&" ".repeat(new_indent));
            out.push_str(line.trim_start_matches(' '));
            out.push('\n');
        }
        out
    }

    /// The full file text this sample came from, reconstructed with `body`
    /// in place of the expected completion.
    pub fn full_text(&self, body: &str) -> String {
        format!(
            "{}{}- name: {}\n{}",
            self.context,
            " ".repeat(self.name_indent),
            self.nl,
            body
        )
    }
}

/// 80/10/10 split of files (the paper's Galaxy split), then per-split sample
/// extraction and cross-split exact-match dedup.
#[derive(Debug, Clone, Default)]
pub struct SplitSamples {
    /// Training samples.
    pub train: Vec<Sample>,
    /// Validation samples (checkpoint selection).
    pub valid: Vec<Sample>,
    /// Test samples (all reported metrics).
    pub test: Vec<Sample>,
    /// Sample-level duplicates removed across splits.
    pub duplicates_removed: usize,
}

impl SplitSamples {
    /// Builds the three sample sets from Galaxy files.
    pub fn build(galaxy_files: &[String], seed: u64) -> SplitSamples {
        let mut rng = Prng::seed_from_u64(seed ^ 0x51a9);
        let mut order: Vec<usize> = (0..galaxy_files.len()).collect();
        rng.shuffle(&mut order);
        let n = order.len();
        let train_end = n * 8 / 10;
        let valid_end = n * 9 / 10;
        let mut out = SplitSamples::default();
        let mut seen: HashSet<Sample> = HashSet::new();
        for (rank, &file_idx) in order.iter().enumerate() {
            let samples = extract_samples(&galaxy_files[file_idx]);
            let bucket = if rank < train_end {
                &mut out.train
            } else if rank < valid_end {
                &mut out.valid
            } else {
                &mut out.test
            };
            for s in samples {
                if seen.insert(s.clone()) {
                    bucket.push(s);
                } else {
                    out.duplicates_removed += 1;
                }
            }
        }
        out
    }

    /// Test samples of one generation type.
    pub fn test_of(&self, gen_type: GenType) -> Vec<&Sample> {
        self.test
            .iter()
            .filter(|s| s.gen_type == gen_type)
            .collect()
    }
}

/// Extracts every sample a file yields.
///
/// * Task files: the first named task becomes NL→T; each subsequent named
///   task becomes T+NL→T with the preceding tasks as context.
/// * Playbooks with ≤2 tasks: one NL→PB sample (prompt = play name plus task
///   names combined, per §4.4.3).
/// * Playbooks with >2 tasks: PB+NL→T samples (context = playbook truncated
///   before the target task).
///
/// Files that fail to parse, use blocks, or lack names yield fewer (possibly
/// zero) samples.
pub fn extract_samples(file_text: &str) -> Vec<Sample> {
    let Ok(value) = wisdom_yaml::parse(file_text) else {
        return Vec::new();
    };
    match wisdom_ansible::detect_target(&value) {
        wisdom_ansible::LintTarget::Playbook => extract_from_playbook(&value).unwrap_or_default(),
        _ => extract_from_task_file(&value).unwrap_or_default(),
    }
}

fn plain_tasks(items: &[TaskItem]) -> Option<Vec<&Task>> {
    items
        .iter()
        .map(|item| match item {
            TaskItem::Task(t) => Some(t),
            TaskItem::Block(_) => None,
        })
        .collect()
}

/// Emits a sequence value with the document marker, as files are stored.
fn emit_doc(value: &Value) -> String {
    wisdom_yaml::EmitOptions {
        start_marker: true,
        ..Default::default()
    }
    .emit(value)
}

/// The body of a task: its canonical emission minus the `- name:` first
/// line, re-indented by `extra_indent`.
fn task_body(task: &Task, extra_indent: usize) -> Option<String> {
    task.name.as_ref()?;
    let text = wisdom_yaml::emit(&Value::Seq(vec![task.to_value()]));
    let mut body = String::new();
    for line in text.lines().skip(1) {
        body.push_str(&" ".repeat(extra_indent));
        body.push_str(line);
        body.push('\n');
    }
    if body.is_empty() {
        None
    } else {
        Some(body)
    }
}

fn extract_from_task_file(value: &Value) -> Option<Vec<Sample>> {
    let items = value.as_seq()?;
    let parsed: Vec<TaskItem> = items
        .iter()
        .enumerate()
        .map(|(i, v)| TaskItem::from_value(v, &format!("tasks[{i}]")))
        .collect::<Result<_, _>>()
        .ok()?;
    let tasks = plain_tasks(&parsed)?;
    let mut out = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        let Some(name) = task.name.clone() else {
            continue;
        };
        let Some(body) = task_body(task, 0) else {
            continue;
        };
        if i == 0 {
            out.push(Sample {
                gen_type: GenType::NlToT,
                context: String::new(),
                nl: name,
                expected: body,
                name_indent: 0,
                body_indent: 2,
            });
        } else {
            let prefix: Vec<Value> = tasks[..i].iter().map(|t| t.to_value()).collect();
            out.push(Sample {
                gen_type: GenType::TNlToT,
                context: emit_doc(&Value::Seq(prefix)),
                nl: name,
                expected: body,
                name_indent: 0,
                body_indent: 2,
            });
        }
    }
    Some(out)
}

fn extract_from_playbook(value: &Value) -> Option<Vec<Sample>> {
    let playbook = Playbook::from_value(value).ok()?;
    // Single-play playbooks only (the dominant Galaxy shape).
    if playbook.plays.len() != 1 {
        return None;
    }
    let play = &playbook.plays[0];
    if !play.pre_tasks.is_empty() || !play.post_tasks.is_empty() || !play.handlers.is_empty() {
        return None;
    }
    let tasks = plain_tasks(&play.tasks)?;
    let play_name = play.name.clone()?;
    if tasks.iter().any(|t| t.name.is_none()) {
        return None;
    }
    let mut out = Vec::new();
    if tasks.len() <= 2 {
        // NL→PB: prompt combines the play name and task names (§4.4.3).
        let mut combined = vec![play_name];
        combined.extend(tasks.iter().map(|t| t.name.clone().expect("checked above")));
        let nl = combined.join(" and then ");
        // Expected output: the play body after the name line.
        let text = emit_doc(&playbook.to_value());
        let mut lines = text.lines();
        let _marker = lines.next()?; // ---
        let _name_line = lines.next()?; // - name: <play name>
        let mut expected = String::new();
        for line in lines {
            expected.push_str(line);
            expected.push('\n');
        }
        if expected.is_empty() {
            return None;
        }
        out.push(Sample {
            gen_type: GenType::NlToPb,
            context: String::new(),
            nl,
            expected,
            name_indent: 0,
            body_indent: 2,
        });
    } else {
        // PB+NL→T: predict task i given the playbook truncated before it.
        for (i, task) in tasks.iter().enumerate().skip(1) {
            let name = task.name.clone().expect("checked above");
            let Some(body) = task_body(task, 4) else {
                continue;
            };
            let mut truncated = play.clone();
            truncated.tasks = play.tasks[..i].to_vec();
            let context = emit_doc(
                &Playbook {
                    plays: vec![truncated],
                }
                .to_value(),
            );
            out.push(Sample {
                gen_type: GenType::PbNlToT,
                context,
                nl: name,
                expected: body,
                name_indent: 4,
                body_indent: 6,
            });
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filegen::{emit_task_file, generate_playbook, generate_role_file};
    use crate::taskgen::FileCtx;

    const TASK_FILE: &str = "---\n- name: Ensure apache is at the latest version\n  ansible.builtin.yum:\n    name: httpd\n    state: latest\n- name: Write the apache config file\n  ansible.builtin.template:\n    src: /srv/httpd.j2\n    dest: /etc/httpd.conf\n";

    #[test]
    fn paper_figure_2cd_task_file_extraction() {
        let samples = extract_samples(TASK_FILE);
        assert_eq!(samples.len(), 2);
        // Fig. 2d: NL→T for the first task.
        assert_eq!(samples[0].gen_type, GenType::NlToT);
        assert_eq!(samples[0].nl, "Ensure apache is at the latest version");
        assert!(samples[0].context.is_empty());
        assert_eq!(
            samples[0].expected,
            "  ansible.builtin.yum:\n    name: httpd\n    state: latest\n"
        );
        // Fig. 2c: T+NL→T for the second.
        assert_eq!(samples[1].gen_type, GenType::TNlToT);
        assert!(samples[1].context.contains("ansible.builtin.yum"));
        assert!(samples[1].expected.contains("ansible.builtin.template"));
    }

    #[test]
    fn prompt_text_is_name_completion() {
        let samples = extract_samples(TASK_FILE);
        let p = samples[1].prompt_text(PromptStyle::NameCompletion);
        assert!(p.ends_with("- name: Write the apache config file\n"), "{p}");
        assert!(p.starts_with("---\n- name: Ensure apache"), "{p}");
    }

    #[test]
    fn prefix_prompt_style() {
        let samples = extract_samples(TASK_FILE);
        let p = samples[1].prompt_text(PromptStyle::Prefix);
        assert!(p.starts_with("context code:\n"));
        assert!(p.contains("prompt: Write the apache config file\n"));
        assert!(p.ends_with("code:\n"));
    }

    #[test]
    fn small_playbook_yields_nl_to_pb() {
        let src = "---\n- name: Network Setup Playbook\n  hosts: all\n  tasks:\n    - name: Get config for VyOS devices\n      vyos.vyos.vyos_facts:\n        gather_subset: all\n    - name: Update the hostname\n      vyos.vyos.vyos_config:\n        backup: true\n        lines:\n          - set system host-name vyos-changed\n";
        let samples = extract_samples(src);
        assert_eq!(samples.len(), 1);
        let s = &samples[0];
        assert_eq!(s.gen_type, GenType::NlToPb);
        assert!(s.nl.contains("Network Setup Playbook"));
        assert!(s.nl.contains("Update the hostname"));
        assert!(s.expected.starts_with("  hosts: all\n"));
        assert!(s.expected.contains("vyos.vyos.vyos_config"));
    }

    #[test]
    fn large_playbook_yields_pb_nl_to_t() {
        let mut rng = Prng::seed_from_u64(3);
        let ctx = FileCtx::galaxy(&mut rng);
        let pb = generate_playbook(&ctx, &mut rng, 4, 6);
        let text = pb.to_yaml();
        let samples = extract_samples(&text);
        let n_tasks = pb.plays[0].flat_tasks().len();
        assert_eq!(samples.len(), n_tasks - 1);
        for s in &samples {
            assert_eq!(s.gen_type, GenType::PbNlToT);
            assert_eq!(s.name_indent, 4);
            assert!(s.context.starts_with("---\n"));
            // Context + prompt + expected must re-assemble into the file.
            let full = s.full_text(&s.expected);
            assert!(
                text.starts_with(&full) || full == text,
                "reassembly mismatch\nfile:\n{text}\nreassembled:\n{full}"
            );
        }
    }

    #[test]
    fn task_file_reassembly_is_exact() {
        let mut rng = Prng::seed_from_u64(4);
        let ctx = FileCtx::galaxy(&mut rng);
        let tasks = generate_role_file(&ctx, &mut rng);
        let text = emit_task_file(&tasks);
        let samples = extract_samples(&text);
        let last = samples.last().expect("role file yields samples");
        assert_eq!(last.full_text(&last.expected), text);
    }

    #[test]
    fn scoring_document_deindents_playbook_tasks() {
        let mut rng = Prng::seed_from_u64(5);
        let ctx = FileCtx::galaxy(&mut rng);
        let pb = generate_playbook(&ctx, &mut rng, 4, 6);
        let samples = extract_samples(&pb.to_yaml());
        let s = &samples[0];
        let doc = s.scoring_document(&s.expected);
        assert!(doc.starts_with("- name: "));
        let violations = wisdom_ansible::lint_str(&doc, wisdom_ansible::LintTarget::TaskFile);
        assert!(violations.is_empty(), "{violations:?}\n{doc}");
    }

    #[test]
    fn unparseable_files_yield_nothing() {
        assert!(extract_samples("not: [valid").is_empty());
        assert!(extract_samples("").is_empty());
    }

    #[test]
    fn split_proportions_and_dedup() {
        let mut rng = Prng::seed_from_u64(6);
        let mut files = Vec::new();
        for _ in 0..50 {
            let ctx = FileCtx::galaxy(&mut rng);
            files.push(emit_task_file(&generate_role_file(&ctx, &mut rng)));
        }
        // Inject a duplicate file: its samples must be dropped once.
        files.push(files[0].clone());
        let split = SplitSamples::build(&files, 7);
        let total = split.train.len() + split.valid.len() + split.test.len();
        assert!(total > 100, "expected many samples, got {total}");
        assert!(split.duplicates_removed > 0);
        // Roughly 80/10/10 by construction.
        assert!(split.train.len() > split.valid.len());
        assert!(split.train.len() > split.test.len());
        // No cross-split duplicates.
        let mut seen = HashSet::new();
        for s in split.train.iter().chain(&split.valid).chain(&split.test) {
            assert!(seen.insert(s.clone()));
        }
    }

    #[test]
    fn test_of_filters_by_type() {
        let mut rng = Prng::seed_from_u64(8);
        let mut files = Vec::new();
        for _ in 0..40 {
            let ctx = FileCtx::galaxy(&mut rng);
            match rng.range_usize(0, 3) {
                0 => files.push(generate_playbook(&ctx, &mut rng, 1, 2).to_yaml()),
                1 => files.push(generate_playbook(&ctx, &mut rng, 3, 5).to_yaml()),
                _ => files.push(emit_task_file(&generate_role_file(&ctx, &mut rng))),
            }
        }
        let split = SplitSamples::build(&files, 9);
        let all: Vec<GenType> = split.test.iter().map(|s| s.gen_type).collect();
        for gt in GenType::ALL {
            let filtered = split.test_of(gt);
            assert_eq!(filtered.len(), all.iter().filter(|&&g| g == gt).count());
        }
    }
}
