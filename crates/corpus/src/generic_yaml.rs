//! Generators for non-Ansible "generic YAML": CI pipelines, Kubernetes
//! manifests, docker-compose files and application configs — the 2.2M-file
//! generic channel of Table 1. Generic YAML teaches the models indentation,
//! key/value and list syntax that transfers to Ansible.

use wisdom_prng::Prng;
use wisdom_yaml::{EmitOptions, Mapping, Value};

fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

fn m(pairs: Vec<(&str, Value)>) -> Value {
    let mut out = Mapping::new();
    for (k, v) in pairs {
        out.insert(k.to_string(), v);
    }
    Value::Map(out)
}

/// The kind of generic YAML document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenericKind {
    /// GitHub-Actions-style CI workflow.
    CiWorkflow,
    /// Kubernetes Deployment/Service manifest.
    K8sManifest,
    /// docker-compose file.
    DockerCompose,
    /// Flat application configuration.
    AppConfig,
}

/// Generates one generic YAML document.
pub fn generate_generic(rng: &mut Prng) -> String {
    let kind = match rng.weighted_index(&[0.3, 0.3, 0.2, 0.2]) {
        0 => GenericKind::CiWorkflow,
        1 => GenericKind::K8sManifest,
        2 => GenericKind::DockerCompose,
        _ => GenericKind::AppConfig,
    };
    generate_generic_of(kind, rng)
}

/// Generates a generic document of a specific kind.
pub fn generate_generic_of(kind: GenericKind, rng: &mut Prng) -> String {
    let value = match kind {
        GenericKind::CiWorkflow => ci_workflow(rng),
        GenericKind::K8sManifest => k8s_manifest(rng),
        GenericKind::DockerCompose => docker_compose(rng),
        GenericKind::AppConfig => app_config(rng),
    };
    EmitOptions {
        start_marker: true,
        ..Default::default()
    }
    .emit(&value)
}

fn ci_workflow(rng: &mut Prng) -> Value {
    let lang = *rng.choice(&["node", "python", "go", "rust"]);
    let (setup, build, test) = match lang {
        "node" => ("actions/setup-node@v3", "npm ci", "npm test"),
        "python" => (
            "actions/setup-python@v4",
            "pip install -r requirements.txt",
            "pytest",
        ),
        "go" => ("actions/setup-go@v4", "go build ./...", "go test ./..."),
        _ => (
            "actions-rs/toolchain@v1",
            "cargo build --release",
            "cargo test",
        ),
    };
    let mut steps = vec![
        m(vec![("uses", s("actions/checkout@v3"))]),
        m(vec![("uses", s(setup))]),
        m(vec![("name", s("Build")), ("run", s(build))]),
        m(vec![("name", s("Test")), ("run", s(test))]),
    ];
    if rng.chance(0.3) {
        steps.push(m(vec![
            ("name", s("Upload artifacts")),
            ("uses", s("actions/upload-artifact@v3")),
            ("with", m(vec![("path", s("dist/"))])),
        ]));
    }
    m(vec![
        ("name", s(format!("{lang} CI"))),
        (
            "on",
            m(vec![
                ("push", m(vec![("branches", Value::Seq(vec![s("main")]))])),
                ("pull_request", Value::Map(Mapping::new())),
            ]),
        ),
        (
            "jobs",
            m(vec![(
                "build",
                m(vec![
                    ("runs-on", s("ubuntu-latest")),
                    ("steps", Value::Seq(steps)),
                ]),
            )]),
        ),
    ])
}

fn k8s_manifest(rng: &mut Prng) -> Value {
    let app = *rng.choice(&["web", "api", "worker", "frontend", "cache"]);
    let image = *rng.choice(&["nginx:1.25", "redis:7", "example/api:2.3.1", "postgres:15"]);
    let replicas = *rng.choice(&[1i64, 2, 3, 5]);
    let port = *rng.choice(&[80i64, 8080, 5432, 6379]);
    m(vec![
        ("apiVersion", s("apps/v1")),
        ("kind", s("Deployment")),
        (
            "metadata",
            m(vec![("name", s(app)), ("labels", m(vec![("app", s(app))]))]),
        ),
        (
            "spec",
            m(vec![
                ("replicas", Value::Int(replicas)),
                (
                    "selector",
                    m(vec![("matchLabels", m(vec![("app", s(app))]))]),
                ),
                (
                    "template",
                    m(vec![
                        ("metadata", m(vec![("labels", m(vec![("app", s(app))]))])),
                        (
                            "spec",
                            m(vec![(
                                "containers",
                                Value::Seq(vec![m(vec![
                                    ("name", s(app)),
                                    ("image", s(image)),
                                    (
                                        "ports",
                                        Value::Seq(vec![m(vec![(
                                            "containerPort",
                                            Value::Int(port),
                                        )])]),
                                    ),
                                ])]),
                            )]),
                        ),
                    ]),
                ),
            ]),
        ),
    ])
}

fn docker_compose(rng: &mut Prng) -> Value {
    let mut services = Mapping::new();
    let n = rng.range_usize(1, 4);
    let choices = [
        ("web", "nginx:stable", "80:80"),
        ("app", "example/app:latest", "8080:8080"),
        ("db", "postgres:15", "5432:5432"),
        ("cache", "redis:7-alpine", "6379:6379"),
    ];
    let idx = rng.sample_indices(choices.len(), n);
    for i in idx {
        let (name, image, ports) = choices[i];
        let mut svc = vec![
            ("image", s(image)),
            ("restart", s("unless-stopped")),
            ("ports", Value::Seq(vec![s(ports)])),
        ];
        if rng.chance(0.4) {
            svc.push(("environment", m(vec![("APP_ENV", s("production"))])));
        }
        services.insert(name.to_string(), m(svc));
    }
    m(vec![
        ("version", s("3.8")),
        ("services", Value::Map(services)),
    ])
}

fn app_config(rng: &mut Prng) -> Value {
    let level = *rng.choice(&["info", "debug", "warning"]);
    let port = *rng.choice(&[8000i64, 8080, 9000, 3000]);
    m(vec![
        (
            "server",
            m(vec![
                ("host", s("0.0.0.0")),
                ("port", Value::Int(port)),
                ("workers", Value::Int(*rng.choice(&[2i64, 4, 8]))),
            ]),
        ),
        (
            "logging",
            m(vec![
                ("level", s(level)),
                ("file", s("/var/log/app/app.log")),
            ]),
        ),
        (
            "features",
            Value::Seq(vec![s("metrics"), s("tracing"), s("healthcheck")]),
        ),
        ("debug", Value::Bool(level == "debug")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_produce_valid_yaml() {
        let mut rng = Prng::seed_from_u64(1);
        for kind in [
            GenericKind::CiWorkflow,
            GenericKind::K8sManifest,
            GenericKind::DockerCompose,
            GenericKind::AppConfig,
        ] {
            for _ in 0..10 {
                let text = generate_generic_of(kind, &mut rng);
                wisdom_yaml::parse(&text)
                    .unwrap_or_else(|e| panic!("{kind:?} invalid: {e}\n{text}"));
            }
        }
    }

    #[test]
    fn generic_docs_are_not_ansible() {
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..20 {
            let text = generate_generic(&mut rng);
            assert!(!text.contains("ansible.builtin"), "{text}");
        }
    }

    #[test]
    fn k8s_manifests_have_expected_keys() {
        let mut rng = Prng::seed_from_u64(3);
        let text = generate_generic_of(GenericKind::K8sManifest, &mut rng);
        assert!(text.contains("apiVersion: apps/v1"));
        assert!(text.contains("kind: Deployment"));
    }

    #[test]
    fn deterministic() {
        let mut a = Prng::seed_from_u64(4);
        let mut b = Prng::seed_from_u64(4);
        assert_eq!(generate_generic(&mut a), generate_generic(&mut b));
    }
}
