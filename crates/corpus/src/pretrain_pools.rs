//! Stand-ins for the CodeGen pre-training corpora: natural language (the
//! Pile), multi-language source code (BigQuery), and Python (BigPython).
//!
//! These pools exist so the CodeGen-NL / -Multi / -Mono baselines can be
//! reproduced: a model pre-trained only on `pile_document`s has seen some
//! YAML (the Pile contains ~25K Ansible and ~600K generic YAML files), one
//! that adds `code_document`s learns more about structured syntax, etc.

use wisdom_prng::Prng;

use crate::filegen::{emit_task_file, generate_role_file};
use crate::generic_yaml::generate_generic;
use crate::taskgen::FileCtx;

static SUBJECTS: &[&str] = &[
    "the server",
    "our team",
    "the deployment",
    "this module",
    "the operator",
    "a user",
    "the cluster",
    "the database",
    "the pipeline",
    "the service",
];
static VERBS: &[&str] = &[
    "restarts",
    "configures",
    "monitors",
    "updates",
    "deploys",
    "validates",
    "schedules",
    "provisions",
    "scales",
    "backs up",
];
static OBJECTS: &[&str] = &[
    "the application",
    "every node",
    "the firewall rules",
    "its configuration",
    "the staging environment",
    "all containers",
    "the web tier",
    "incoming requests",
    "the build artifacts",
    "the access logs",
];
static CONNECTIVES: &[&str] = &[
    "Afterwards,",
    "In practice,",
    "However,",
    "As a result,",
    "Meanwhile,",
    "Note that",
];

/// Generates one natural-language document (a short paragraph).
pub fn nl_document(rng: &mut Prng) -> String {
    let sentences = rng.range_usize(3, 8);
    let mut out = String::new();
    for i in 0..sentences {
        if i > 0 && rng.chance(0.4) {
            out.push_str(rng.pick(CONNECTIVES));
            out.push(' ');
        }
        let subj = rng.choice(SUBJECTS);
        let verb = rng.choice(VERBS);
        let obj = rng.choice(OBJECTS);
        let mut sentence = format!("{subj} {verb} {obj}");
        if rng.chance(0.3) {
            sentence.push_str(" every night");
        }
        sentence.push('.');
        let mut chars = sentence.chars();
        let first = chars.next().expect("non-empty sentence").to_uppercase();
        out.push_str(&format!("{}{} ", first, chars.as_str()));
    }
    out.trim_end().to_string()
}

static FUNC_NAMES: &[&str] = &[
    "parse_config",
    "send_request",
    "update_cache",
    "compute_hash",
    "load_settings",
    "restart_service",
    "validate_input",
    "merge_results",
];
static VAR_NAMES: &[&str] = &[
    "result", "config", "client", "data", "path", "count", "buffer",
];

/// Generates one source-code document in a brace-style language
/// (the BigQuery multi-language pool).
pub fn code_document(rng: &mut Prng) -> String {
    let lang = rng.range_usize(0, 3); // c-ish, java-ish, js-ish
    let funcs = rng.range_usize(1, 4);
    let mut out = String::new();
    for _ in 0..funcs {
        let name = rng.choice(FUNC_NAMES);
        let var = rng.choice(VAR_NAMES);
        let arg = rng.choice(VAR_NAMES);
        match lang {
            0 => {
                out.push_str(&format!(
                    "int {name}(const char *{arg}) {{\n    int {var} = 0;\n    if ({arg} != NULL) {{\n        {var} = process({arg});\n    }}\n    return {var};\n}}\n\n"
                ));
            }
            1 => {
                out.push_str(&format!(
                    "public static String {name}(String {arg}) {{\n    String {var} = \"\";\n    if ({arg} != null) {{\n        {var} = helper.process({arg});\n    }}\n    return {var};\n}}\n\n"
                ));
            }
            _ => {
                out.push_str(&format!(
                    "function {name}({arg}) {{\n  const {var} = [];\n  for (const item of {arg}) {{\n    {var}.push(transform(item));\n  }}\n  return {var};\n}}\n\n"
                ));
            }
        }
    }
    out
}

/// Generates one Python document (the BigPython pool).
pub fn python_document(rng: &mut Prng) -> String {
    let funcs = rng.range_usize(1, 4);
    let mut out = String::new();
    for _ in 0..funcs {
        let name = rng.choice(FUNC_NAMES);
        let var = rng.choice(VAR_NAMES);
        let arg = rng.choice(VAR_NAMES);
        out.push_str(&format!(
            "def {name}({arg}):\n    {var} = []\n    for item in {arg}:\n        if item is not None:\n            {var}.append(item)\n    return {var}\n\n\n"
        ));
    }
    out
}

/// Builds a Pile-style pool: mostly natural language with a small YAML
/// admixture (`yaml_fraction` of documents, split ~4% Ansible / 96% generic
/// like the 25K/600K ratio the paper quotes).
pub fn pile_pool(rng: &mut Prng, docs: usize, yaml_fraction: f64) -> Vec<String> {
    let mut out = Vec::with_capacity(docs);
    for _ in 0..docs {
        if rng.chance(yaml_fraction) {
            if rng.chance(0.04) {
                let ctx = FileCtx::crawled(rng);
                out.push(emit_task_file(&generate_role_file(&ctx, rng)));
            } else {
                out.push(generate_generic(rng));
            }
        } else {
            out.push(nl_document(rng));
        }
    }
    out
}

/// Builds a BigQuery-style multi-language code pool.
pub fn bigquery_pool(rng: &mut Prng, docs: usize) -> Vec<String> {
    (0..docs).map(|_| code_document(rng)).collect()
}

/// Builds a BigPython-style pool.
pub fn bigpython_pool(rng: &mut Prng, docs: usize) -> Vec<String> {
    (0..docs).map(|_| python_document(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nl_documents_look_like_prose() {
        let mut rng = Prng::seed_from_u64(1);
        let doc = nl_document(&mut rng);
        assert!(doc.ends_with('.'));
        assert!(doc.split('.').count() >= 3);
        assert!(!doc.contains(':'), "prose should not look like YAML: {doc}");
    }

    #[test]
    fn code_documents_have_braces() {
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..10 {
            let doc = code_document(&mut rng);
            assert!(doc.contains('{') && doc.contains('}'));
        }
    }

    #[test]
    fn python_documents_are_indentation_based() {
        let mut rng = Prng::seed_from_u64(3);
        let doc = python_document(&mut rng);
        assert!(doc.contains("def "));
        assert!(!doc.contains('{'));
    }

    #[test]
    fn pile_pool_contains_some_yaml() {
        let mut rng = Prng::seed_from_u64(4);
        let pool = pile_pool(&mut rng, 300, 0.1);
        assert_eq!(pool.len(), 300);
        let yaml_docs = pool.iter().filter(|d| d.starts_with("---")).count();
        assert!(yaml_docs > 5, "expected YAML admixture, got {yaml_docs}");
        assert!(
            yaml_docs < 100,
            "YAML should be a minority, got {yaml_docs}"
        );
    }

    #[test]
    fn pools_are_deterministic() {
        let mut a = Prng::seed_from_u64(5);
        let mut b = Prng::seed_from_u64(5);
        assert_eq!(pile_pool(&mut a, 20, 0.1), pile_pool(&mut b, 20, 0.1));
    }
}
