//! Corpus statistics: byte/line/estimated-token volumes per channel — the
//! counterpart of the paper's "about 1.1 billion training tokens in total"
//! accounting for the YAML pre-training set.

use crate::dataset::Corpus;

/// Aggregate statistics for one document pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of documents.
    pub documents: usize,
    /// Total bytes.
    pub bytes: usize,
    /// Total lines.
    pub lines: usize,
    /// Rough token estimate (bytes / 3 — close to our BPE's compression on
    /// YAML; exact counts depend on the trained tokenizer).
    pub approx_tokens: usize,
}

impl PoolStats {
    /// Computes stats over a document pool.
    pub fn of<'a, I>(docs: I) -> PoolStats
    where
        I: IntoIterator<Item = &'a String>,
    {
        let mut s = PoolStats::default();
        for d in docs {
            s.documents += 1;
            s.bytes += d.len();
            s.lines += d.lines().count();
        }
        s.approx_tokens = s.bytes / 3;
        s
    }
}

/// Per-channel corpus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    /// Channel label + stats, in report order.
    pub pools: Vec<(&'static str, PoolStats)>,
}

impl CorpusStats {
    /// Computes statistics for every channel of a corpus.
    pub fn of(corpus: &Corpus) -> CorpusStats {
        CorpusStats {
            pools: vec![
                ("galaxy (FT)", PoolStats::of(&corpus.galaxy)),
                ("gitlab ansible (PT)", PoolStats::of(&corpus.gitlab)),
                (
                    "github+gbq ansible (PT)",
                    PoolStats::of(&corpus.github_ansible),
                ),
                ("generic yaml (PT)", PoolStats::of(&corpus.generic)),
                ("pile stand-in", PoolStats::of(&corpus.pile)),
                ("bigquery stand-in", PoolStats::of(&corpus.bigquery)),
                ("bigpython stand-in", PoolStats::of(&corpus.bigpython)),
            ],
        }
    }

    /// Total approximate tokens across the YAML pre-training channels — the
    /// figure the paper quotes as ~1.1 B tokens at full scale.
    pub fn yaml_pretrain_tokens(&self) -> usize {
        self.pools
            .iter()
            .filter(|(name, _)| name.contains("(PT)"))
            .map(|(_, s)| s.approx_tokens)
            .sum()
    }

    /// Renders a text report.
    pub fn report(&self) -> String {
        let mut out = String::from("Corpus volume per channel\n");
        out.push_str(&format!(
            "{:<26} {:>7} {:>10} {:>8} {:>10}\n",
            "Channel", "Docs", "Bytes", "Lines", "~Tokens"
        ));
        for (name, s) in &self.pools {
            out.push_str(&format!(
                "{:<26} {:>7} {:>10} {:>8} {:>10}\n",
                name, s.documents, s.bytes, s.lines, s.approx_tokens
            ));
        }
        out.push_str(&format!(
            "YAML pre-training total: ~{} tokens (paper: ~1.1B at 1:1 scale)\n",
            self.yaml_pretrain_tokens()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;

    fn corpus() -> Corpus {
        Corpus::build(&CorpusSpec {
            seed: 3,
            galaxy_files: 10,
            gitlab_files: 5,
            github_ansible_files: 10,
            generic_files: 8,
            pile_docs: 10,
            pile_yaml_fraction: 0.1,
            bigquery_docs: 5,
            bigpython_docs: 5,
        })
    }

    #[test]
    fn stats_count_documents() {
        let stats = CorpusStats::of(&corpus());
        let galaxy = stats.pools[0].1;
        assert_eq!(galaxy.documents, 10);
        assert!(galaxy.bytes > 100);
        assert!(galaxy.lines > 20);
        assert_eq!(galaxy.approx_tokens, galaxy.bytes / 3);
    }

    #[test]
    fn yaml_pretrain_total_covers_pt_channels_only() {
        let stats = CorpusStats::of(&corpus());
        let manual: usize = stats.pools[1].1.approx_tokens
            + stats.pools[2].1.approx_tokens
            + stats.pools[3].1.approx_tokens;
        assert_eq!(stats.yaml_pretrain_tokens(), manual);
    }

    #[test]
    fn report_mentions_every_channel() {
        let report = CorpusStats::of(&corpus()).report();
        for needle in [
            "galaxy",
            "gitlab",
            "github+gbq",
            "generic",
            "pile",
            "bigquery",
            "bigpython",
        ] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
    }

    #[test]
    fn empty_pool_stats() {
        let s = PoolStats::of(std::iter::empty());
        assert_eq!(s, PoolStats::default());
    }
}
