//! Dataset construction for the Ansible Wisdom reproduction.
//!
//! The paper crawls GitHub/GitLab/BigQuery/Galaxy; offline, this crate
//! *synthesizes* the equivalent corpus with the same pipeline semantics:
//! per-source channels with source-specific quirks ([`dataset`]),
//! validation and formatting standardization for the Galaxy fine-tuning
//! channel, exact-match dedup, 80/10/10 splits, extraction of the four
//! generation types, and the paper's name-completion prompt formulation
//! ([`samples`]).
//!
//! The generators put real learnable structure into the data — package ↔
//! service ↔ port correlations, scenario-level task orderings, natural
//! language name templates with noise — so that language models trained on
//! it reproduce the paper's qualitative results.
//!
//! # Examples
//!
//! ```
//! use wisdom_corpus::{Corpus, CorpusSpec, SplitSamples};
//!
//! let spec = CorpusSpec { galaxy_files: 20, ..CorpusSpec::scaled(7, 4000) };
//! let corpus = Corpus::build(&spec);
//! assert_eq!(corpus.galaxy.len(), 20);
//! let split = SplitSamples::build(&corpus.galaxy, 7);
//! assert!(!split.train.is_empty());
//! ```

mod dataset;
mod filegen;
mod generic_yaml;
mod pretrain_pools;
mod samples;
mod stats;
mod taskgen;
mod vocab;

pub use dataset::{Corpus, CorpusSpec, Source, SourceStats};
pub use filegen::{
    emit_task_file, generate_playbook, generate_role_file, scenario_tasks, Scenario, SCENARIOS,
};
pub use generic_yaml::{generate_generic, generate_generic_of, GenericKind};
pub use pretrain_pools::{
    bigpython_pool, bigquery_pool, code_document, nl_document, pile_pool, python_document,
};
pub use samples::{extract_samples, GenType, PromptStyle, Sample, SplitSamples};
pub use stats::{CorpusStats, PoolStats};
pub use taskgen::{generate_task, pick_product, FileCtx, TaskKind};
pub use vocab::{name_noise, Platform, Product, PRODUCTS};
