//! The evaluation runner: prompts a model over test samples, post-processes
//! the generations the way the paper does (first-task truncation for task
//! generation, no truncation for playbooks, greedy decoding), scores all
//! four metrics, and aggregates per generation type.

use wisdom_corpus::{GenType, PromptStyle, Sample};
use wisdom_metrics::{score_sample, MetricsAccumulator, MetricsSummary, SampleScores};
use wisdom_model::{GenerationOptions, Strategy, TextGenerator};
use wisdom_prng::Prng;

/// How many samples to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleCap {
    /// At most this many samples in total (type mix preserved by shuffling).
    Total(usize),
    /// At most this many samples of each generation type (for Table 5).
    PerType(usize),
}

/// Evaluation settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSettings {
    /// Prompt layout (name-completion vs prefix ablation).
    pub style: PromptStyle,
    /// Prepend the literal `Ansible\n` before contextless prompts — the
    /// trick the paper found helps CodeGen/Codex but not Wisdom models.
    pub ansible_marker: bool,
    /// Generation budget per sample.
    pub max_new_tokens: usize,
    /// Sample cap.
    pub cap: SampleCap,
    /// Shuffle seed for sub-sampling.
    pub seed: u64,
}

impl EvalSettings {
    /// Default settings for a profile-sized run.
    pub fn for_profile(profile: &crate::profile::Profile) -> Self {
        Self {
            style: PromptStyle::NameCompletion,
            ansible_marker: false,
            max_new_tokens: profile.max_new_tokens,
            cap: SampleCap::Total(profile.eval_max_samples),
            seed: profile.seed,
        }
    }
}

/// Per-type and overall results of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Metrics over every scored sample.
    pub overall: MetricsSummary,
    /// Metrics per generation type, in [`GenType::ALL`] order (absent types
    /// have `count == 0`).
    pub by_type: Vec<(GenType, MetricsSummary)>,
}

/// Evaluates `model` on `samples` and aggregates the four metrics.
pub fn evaluate(
    model: &dyn TextGenerator,
    samples: &[&Sample],
    settings: &EvalSettings,
) -> EvalResult {
    let selected = select(samples, settings);
    let scored: Vec<(GenType, SampleScores)> = run_all(model, &selected, settings);
    aggregate(&scored)
}

fn select<'a>(samples: &[&'a Sample], settings: &EvalSettings) -> Vec<&'a Sample> {
    let mut rng = Prng::seed_from_u64(settings.seed ^ 0xE7A1);
    match settings.cap {
        SampleCap::Total(cap) => {
            let mut idx: Vec<usize> = (0..samples.len()).collect();
            rng.shuffle(&mut idx);
            idx.truncate(cap);
            idx.sort_unstable(); // deterministic order for scoring
            idx.into_iter().map(|i| samples[i]).collect()
        }
        SampleCap::PerType(cap) => {
            let mut out = Vec::new();
            for gt in GenType::ALL {
                let of_type: Vec<&Sample> = samples
                    .iter()
                    .copied()
                    .filter(|s| s.gen_type == gt)
                    .collect();
                let mut idx: Vec<usize> = (0..of_type.len()).collect();
                rng.shuffle(&mut idx);
                idx.truncate(cap);
                idx.sort_unstable();
                out.extend(idx.into_iter().map(|i| of_type[i]));
            }
            out
        }
    }
}

fn run_all(
    model: &dyn TextGenerator,
    samples: &[&Sample],
    settings: &EvalSettings,
) -> Vec<(GenType, SampleScores)> {
    // Generation goes through `complete_batch` so transformer models share
    // batched decode steps across samples; scoring stays chunk-parallel.
    let prompts: Vec<String> = samples.iter().map(|s| build_prompt(s, settings)).collect();
    let opts = GenerationOptions {
        max_new_tokens: settings.max_new_tokens,
        strategy: Strategy::Greedy,
        seed: settings.seed,
    };
    let raw = model.complete_batch(&prompts, &opts);
    assert_eq!(raw.len(), samples.len(), "one completion per sample");
    let pairs: Vec<(&Sample, String)> = samples.iter().copied().zip(raw).collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(pairs.len().max(1));
    if workers <= 1 {
        return pairs
            .iter()
            .map(|(s, raw)| (s.gen_type, score_one(s, raw)))
            .collect();
    }
    let chunk = pairs.len().div_ceil(workers);
    let mut results: Vec<Vec<(GenType, SampleScores)>> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    part.iter()
                        .map(|(s, raw)| (s.gen_type, score_one(s, raw)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("evaluation worker panicked"));
        }
    })
    .expect("crossbeam scope");
    results.into_iter().flatten().collect()
}

fn build_prompt(sample: &Sample, settings: &EvalSettings) -> String {
    let prompt = sample.prompt_text(settings.style);
    if settings.ansible_marker && sample.context.is_empty() {
        return format!("Ansible\n{prompt}");
    }
    prompt
}

fn score_one(sample: &Sample, raw: &str) -> SampleScores {
    let processed = postprocess(sample, raw);
    score_sample(
        &sample.expected,
        &processed,
        &sample.scoring_document(&sample.expected),
        &sample.scoring_document(&processed),
    )
}

/// Output post-processing per §5.2: "in the case of Ansible task
/// generations, we truncated the models output predictions to keep only the
/// first generated task. For playbook generation we did not apply any
/// truncation." Also strips special-token text and anything after a
/// document marker.
pub fn postprocess(sample: &Sample, raw: &str) -> String {
    let mut text = raw;
    for marker in ["<|endoftext|>", "<|sep|>", "<|pad|>"] {
        if let Some(pos) = text.find(marker) {
            text = &text[..pos];
        }
    }
    let mut out = String::new();
    for line in text.lines() {
        let trimmed = line.trim_end();
        if trimmed.trim() == "---" {
            break;
        }
        if trimmed.trim().is_empty() {
            out.push('\n');
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start_matches(' ').len();
        if sample.gen_type != GenType::NlToPb && indent <= sample.name_indent {
            // A dedent to (or above) the task's own level starts the next
            // task — stop here.
            break;
        }
        out.push_str(trimmed);
        out.push('\n');
    }
    // Drop trailing blank lines.
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

fn aggregate(scored: &[(GenType, SampleScores)]) -> EvalResult {
    let mut overall = MetricsAccumulator::new();
    let mut per: Vec<(GenType, MetricsAccumulator)> = GenType::ALL
        .iter()
        .map(|&g| (g, MetricsAccumulator::new()))
        .collect();
    for (gt, s) in scored {
        overall.add(s);
        for (g, acc) in per.iter_mut() {
            if g == gt {
                acc.add(s);
            }
        }
    }
    EvalResult {
        overall: overall.summary(),
        by_type: per.into_iter().map(|(g, a)| (g, a.summary())).collect(),
    }
}

/// A perfect oracle "model" that replays the gold completion — used to
/// validate the whole pipeline end to end (it must score ~100 everywhere).
#[derive(Debug, Clone)]
pub struct Oracle {
    samples: Vec<Sample>,
}

impl Oracle {
    /// Builds an oracle over the given samples.
    pub fn new(samples: &[&Sample]) -> Oracle {
        Oracle {
            samples: samples.iter().map(|&s| s.clone()).collect(),
        }
    }
}

impl TextGenerator for Oracle {
    fn complete(&self, prompt: &str, _opts: &GenerationOptions) -> String {
        for s in &self.samples {
            if prompt.ends_with(&s.prompt_text(PromptStyle::NameCompletion))
                || prompt.ends_with(&s.prompt_text(PromptStyle::Prefix))
            {
                return s.expected.clone();
            }
        }
        String::new()
    }

    fn model_name(&self) -> String {
        "oracle".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisdom_corpus::extract_samples;

    const TASK_FILE: &str = "---\n- name: Ensure apache is at the latest version\n  ansible.builtin.yum:\n    name: httpd\n    state: latest\n- name: Write the apache config file\n  ansible.builtin.template:\n    src: /srv/httpd.j2\n    dest: /etc/httpd.conf\n";

    fn settings() -> EvalSettings {
        EvalSettings {
            style: PromptStyle::NameCompletion,
            ansible_marker: false,
            max_new_tokens: 64,
            cap: SampleCap::Total(100),
            seed: 1,
        }
    }

    #[test]
    fn oracle_scores_perfectly() {
        let samples = extract_samples(TASK_FILE);
        let refs: Vec<&Sample> = samples.iter().collect();
        let oracle = Oracle::new(&refs);
        let result = evaluate(&oracle, &refs, &settings());
        assert_eq!(result.overall.count, 2);
        assert!((result.overall.exact_match - 100.0).abs() < 1e-9);
        assert!((result.overall.bleu - 100.0).abs() < 1e-6);
        assert!((result.overall.ansible_aware - 100.0).abs() < 1e-6);
        assert!((result.overall.schema_correct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn postprocess_truncates_to_first_task() {
        let samples = extract_samples(TASK_FILE);
        let s = &samples[0];
        let raw = "  ansible.builtin.yum:\n    name: httpd\n    state: latest\n- name: Next task\n  ping: {}\n";
        let cut = postprocess(s, raw);
        assert_eq!(
            cut,
            "  ansible.builtin.yum:\n    name: httpd\n    state: latest\n"
        );
    }

    #[test]
    fn postprocess_stops_at_document_marker() {
        let samples = extract_samples(TASK_FILE);
        let s = &samples[0];
        let raw = "  ansible.builtin.yum:\n    name: httpd\n---\nunrelated: 1\n";
        let cut = postprocess(s, raw);
        assert!(!cut.contains("unrelated"));
    }

    #[test]
    fn postprocess_strips_special_tokens() {
        let samples = extract_samples(TASK_FILE);
        let s = &samples[0];
        let raw = "  ansible.builtin.yum:\n    name: httpd\n<|endoftext|>garbage";
        let cut = postprocess(s, raw);
        assert!(!cut.contains("garbage"));
        assert!(!cut.contains("endoftext"));
    }

    #[test]
    fn playbook_outputs_not_truncated() {
        let pb = "---\n- name: P\n  hosts: all\n  tasks:\n    - name: a\n      ansible.builtin.ping: {}\n";
        let samples = extract_samples(pb);
        assert_eq!(samples[0].gen_type, GenType::NlToPb);
        let raw = "  hosts: all\n  tasks:\n    - name: a\n      ansible.builtin.ping: {}\n";
        let cut = postprocess(&samples[0], raw);
        assert!(cut.contains("tasks:"), "{cut}");
        assert!(cut.contains("ping"), "{cut}");
    }

    #[test]
    fn total_cap_limits_samples() {
        let samples = extract_samples(TASK_FILE);
        let refs: Vec<&Sample> = samples.iter().collect();
        let oracle = Oracle::new(&refs);
        let mut st = settings();
        st.cap = SampleCap::Total(1);
        let result = evaluate(&oracle, &refs, &st);
        assert_eq!(result.overall.count, 1);
    }

    #[test]
    fn per_type_cap_keeps_each_type() {
        let pb = "---\n- name: P\n  hosts: all\n  tasks:\n    - name: a\n      ansible.builtin.ping: {}\n";
        let mut samples = extract_samples(TASK_FILE);
        samples.extend(extract_samples(pb));
        let refs: Vec<&Sample> = samples.iter().collect();
        let oracle = Oracle::new(&refs);
        let mut st = settings();
        st.cap = SampleCap::PerType(1);
        let result = evaluate(&oracle, &refs, &st);
        // one NL->T + one T+NL->T + one NL->PB = 3
        assert_eq!(result.overall.count, 3);
        let with_data = result.by_type.iter().filter(|(_, m)| m.count > 0).count();
        assert_eq!(with_data, 3);
    }

    #[test]
    fn empty_prediction_scores_zero() {
        #[derive(Debug)]
        struct Silent;
        impl TextGenerator for Silent {
            fn complete(&self, _: &str, _: &GenerationOptions) -> String {
                String::new()
            }
            fn model_name(&self) -> String {
                "silent".into()
            }
        }
        let samples = extract_samples(TASK_FILE);
        let refs: Vec<&Sample> = samples.iter().collect();
        let result = evaluate(&Silent, &refs, &settings());
        assert_eq!(result.overall.exact_match, 0.0);
        assert_eq!(result.overall.bleu, 0.0);
        assert_eq!(result.overall.ansible_aware, 0.0);
        assert_eq!(result.overall.schema_correct, 0.0);
    }

    #[test]
    fn ansible_marker_only_prepended_without_context() {
        let samples = extract_samples(TASK_FILE);
        // Capture the prompt a model actually receives.
        #[derive(Debug)]
        struct Capture(std::sync::Mutex<Vec<String>>);
        impl TextGenerator for Capture {
            fn complete(&self, prompt: &str, _: &GenerationOptions) -> String {
                self.0.lock().expect("lock").push(prompt.to_string());
                String::new()
            }
            fn model_name(&self) -> String {
                "capture".into()
            }
        }
        let capture = Capture(std::sync::Mutex::new(Vec::new()));
        let refs: Vec<&Sample> = samples.iter().collect();
        let mut st = settings();
        st.ansible_marker = true;
        let _ = evaluate(&capture, &refs, &st);
        let prompts = capture.0.lock().expect("lock");
        let contextless: Vec<&String> = prompts
            .iter()
            .filter(|p| p.starts_with("Ansible\n"))
            .collect();
        assert_eq!(contextless.len(), 1, "{prompts:?}");
    }
}
