//! The model zoo: Table 2's model ↔ pre-training-dataset matrix, built and
//! cached on demand.

use std::collections::HashMap;
use std::sync::Arc;

use wisdom_corpus::{Corpus, PromptStyle, SplitSamples};
use wisdom_model::{
    finetune_with_epochs, pack_documents, pretrain, FinetuneConfig, LmTextGenerator, ModelConfig,
    PretrainConfig, ProgressFn, RetrievalModel, SftSample, TransformerLm,
};
use wisdom_prng::Prng;
use wisdom_tokenizer::BpeTokenizer;

use crate::profile::Profile;

/// Scaled stand-ins for the paper's parameter counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// CodeGen 350M (the production choice).
    S350m,
    /// CodeGen 2.7B.
    S2_7b,
    /// CodeGen 6B.
    S6b,
}

impl SizeClass {
    /// Display label matching the paper's Size column.
    pub fn label(&self) -> &'static str {
        match self {
            SizeClass::S350m => "350M",
            SizeClass::S2_7b => "2.7B",
            SizeClass::S6b => "6B",
        }
    }

    /// The architecture for this class.
    pub fn config(&self, vocab_size: usize, context_window: usize) -> ModelConfig {
        match self {
            SizeClass::S350m => ModelConfig::size_350m(vocab_size, context_window),
            SizeClass::S2_7b => ModelConfig::size_2_7b(vocab_size, context_window),
            SizeClass::S6b => ModelConfig::size_6b(vocab_size, context_window),
        }
    }
}

/// Which pre-training pools a model sees (the checkmarks of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PoolSelection {
    /// The Pile (NL + a little YAML).
    pub pile: bool,
    /// BigQuery multi-language code.
    pub bigquery: bool,
    /// BigPython.
    pub bigpython: bool,
    /// Ansible YAML (this work).
    pub ansible: bool,
    /// Generic YAML (this work).
    pub generic: bool,
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZooModelSpec {
    /// Model name as printed in the tables.
    pub name: &'static str,
    /// Parameter-count class.
    pub size: SizeClass,
    /// Pre-training data.
    pub pools: PoolSelection,
    /// Whether pre-training continues from the CodeGen-Multi checkpoint
    /// (the Wisdom-*-Multi models) rather than from scratch.
    pub from_multi_checkpoint: bool,
    /// Paper-scale context window used at few-shot inference.
    pub fewshot_ctx: usize,
}

const PILE: PoolSelection = PoolSelection {
    pile: true,
    bigquery: false,
    bigpython: false,
    ansible: false,
    generic: false,
};
const PILE_BQ: PoolSelection = PoolSelection {
    pile: true,
    bigquery: true,
    bigpython: false,
    ansible: false,
    generic: false,
};
const PILE_BQ_PY: PoolSelection = PoolSelection {
    pile: true,
    bigquery: true,
    bigpython: true,
    ansible: false,
    generic: false,
};
const ANSIBLE: PoolSelection = PoolSelection {
    pile: false,
    bigquery: false,
    bigpython: false,
    ansible: true,
    generic: false,
};
const ANSIBLE_GENERIC: PoolSelection = PoolSelection {
    pile: false,
    bigquery: false,
    bigpython: false,
    ansible: true,
    generic: true,
};

/// Table 2: every pre-trained model of the paper.
pub static TABLE2: &[ZooModelSpec] = &[
    ZooModelSpec {
        name: "CodeGen-NL",
        size: SizeClass::S350m,
        pools: PILE,
        from_multi_checkpoint: false,
        fewshot_ctx: 2048,
    },
    ZooModelSpec {
        name: "CodeGen-Mono",
        size: SizeClass::S350m,
        pools: PILE_BQ_PY,
        from_multi_checkpoint: false,
        fewshot_ctx: 2048,
    },
    ZooModelSpec {
        name: "CodeGen-Multi",
        size: SizeClass::S350m,
        pools: PILE_BQ,
        from_multi_checkpoint: false,
        fewshot_ctx: 2048,
    },
    ZooModelSpec {
        name: "CodeGen-Multi",
        size: SizeClass::S2_7b,
        pools: PILE_BQ,
        from_multi_checkpoint: false,
        fewshot_ctx: 2048,
    },
    ZooModelSpec {
        name: "CodeGen-Multi",
        size: SizeClass::S6b,
        pools: PILE_BQ,
        from_multi_checkpoint: false,
        fewshot_ctx: 2048,
    },
    ZooModelSpec {
        name: "Wisdom-Ansible",
        size: SizeClass::S350m,
        pools: ANSIBLE,
        from_multi_checkpoint: false,
        fewshot_ctx: 1024,
    },
    ZooModelSpec {
        name: "Wisdom-Yaml",
        size: SizeClass::S350m,
        pools: ANSIBLE_GENERIC,
        from_multi_checkpoint: false,
        fewshot_ctx: 1024,
    },
    ZooModelSpec {
        name: "Wisdom-Ansible-Multi",
        size: SizeClass::S350m,
        pools: ANSIBLE,
        from_multi_checkpoint: true,
        fewshot_ctx: 1024,
    },
    ZooModelSpec {
        name: "Wisdom-Yaml-Multi",
        size: SizeClass::S350m,
        pools: ANSIBLE_GENERIC,
        from_multi_checkpoint: true,
        fewshot_ctx: 1024,
    },
];

/// Finds a Table 2 spec by name and size.
pub fn spec(name: &str, size: SizeClass) -> Option<&'static ZooModelSpec> {
    TABLE2.iter().find(|s| s.name == name && s.size == size)
}

/// The model zoo: corpus, splits, shared tokenizer, and a cache of
/// pre-trained checkpoints.
pub struct Zoo {
    /// The active profile.
    pub profile: Profile,
    /// The assembled corpus (Table 1).
    pub corpus: Corpus,
    /// Galaxy fine-tuning samples (80/10/10).
    pub split: SplitSamples,
    /// The shared BPE tokenizer (the paper reuses the CodeGen tokenizer for
    /// all models).
    pub tokenizer: Arc<BpeTokenizer>,
    pretrained: HashMap<String, TransformerLm>,
    encoded_pools: HashMap<&'static str, Vec<Vec<u32>>>,
}

impl Zoo {
    /// Builds corpus, splits and tokenizer for a profile. Models are
    /// pre-trained lazily by [`Zoo::pretrained`].
    pub fn build(profile: Profile) -> Zoo {
        let corpus = Corpus::build(&profile.corpus_spec());
        let split = SplitSamples::build(&corpus.galaxy, profile.seed);
        // Tokenizer training sees a slice of every pool, mirroring the reuse
        // of one tokenizer across all models.
        let mut tok_texts: Vec<&str> = Vec::new();
        for s in corpus.pile.iter().take(200) {
            tok_texts.push(s);
        }
        for s in corpus.bigquery.iter().take(150) {
            tok_texts.push(s);
        }
        for s in corpus.bigpython.iter().take(100) {
            tok_texts.push(s);
        }
        for s in corpus.galaxy.iter().take(200) {
            tok_texts.push(s);
        }
        for s in corpus.github_ansible.iter().take(200) {
            tok_texts.push(s);
        }
        for s in corpus.generic.iter().take(150) {
            tok_texts.push(s);
        }
        let tokenizer = Arc::new(BpeTokenizer::train(
            tok_texts.iter().copied(),
            profile.vocab_size,
        ));
        Zoo {
            profile,
            corpus,
            split,
            tokenizer,
            pretrained: HashMap::new(),
            encoded_pools: HashMap::new(),
        }
    }

    fn encoded_pool(&mut self, key: &'static str) -> &Vec<Vec<u32>> {
        if !self.encoded_pools.contains_key(key) {
            let docs: Vec<&String> = match key {
                "pile" => self.corpus.pile.iter().collect(),
                "bigquery" => self.corpus.bigquery.iter().collect(),
                "bigpython" => self.corpus.bigpython.iter().collect(),
                "ansible" => self
                    .corpus
                    .gitlab
                    .iter()
                    .chain(self.corpus.github_ansible.iter())
                    .collect(),
                "generic" => self.corpus.generic.iter().collect(),
                other => panic!("unknown pool {other}"),
            };
            let encoded: Vec<Vec<u32>> = docs.iter().map(|d| self.tokenizer.encode(d)).collect();
            self.encoded_pools.insert(key, encoded);
        }
        &self.encoded_pools[key]
    }

    /// The packed pre-training stream for a pool selection.
    pub fn stream_for(&mut self, pools: PoolSelection) -> Vec<u32> {
        let sep = self.tokenizer.sep();
        let mut docs: Vec<Vec<u32>> = Vec::new();
        if pools.pile {
            docs.extend(self.encoded_pool("pile").iter().cloned());
        }
        if pools.bigquery {
            docs.extend(self.encoded_pool("bigquery").iter().cloned());
        }
        if pools.bigpython {
            docs.extend(self.encoded_pool("bigpython").iter().cloned());
        }
        if pools.ansible {
            docs.extend(self.encoded_pool("ansible").iter().cloned());
        }
        if pools.generic {
            docs.extend(self.encoded_pool("generic").iter().cloned());
        }
        // Shuffle document order deterministically so pools interleave.
        let mut rng = Prng::seed_from_u64(self.profile.seed ^ 0x9a37);
        rng.shuffle(&mut docs);
        pack_documents(&docs, sep)
    }

    fn cache_key(spec: &ZooModelSpec) -> String {
        format!("{}-{}", spec.name, spec.size.label())
    }

    /// Returns the pre-trained checkpoint for a Table 2 row, training it on
    /// first use (cached afterwards). `progress` receives
    /// `(step, total, loss)` during training.
    pub fn pretrained(
        &mut self,
        spec: &ZooModelSpec,
        mut progress: Option<ProgressFn<'_>>,
    ) -> TransformerLm {
        let key = Self::cache_key(spec);
        if let Some(m) = self.pretrained.get(&key) {
            return m.clone();
        }
        // Local forwarder sidesteps `&mut dyn` invariance so the callback
        // can be handed to both the recursive base build and `pretrain`.
        let mut forward = |step: usize, total: usize, loss: f32| {
            if let Some(cb) = progress.as_deref_mut() {
                cb(step, total, loss);
            }
        };
        let ctx = self.profile.ctx(spec.fewshot_ctx);
        let mut rng = Prng::seed_from_u64(self.profile.seed ^ hash_name(&key));
        let mut model = if spec.from_multi_checkpoint {
            // Continue from the CodeGen-Multi checkpoint of the same size.
            let base_spec = *crate::zoo::spec("CodeGen-Multi", spec.size)
                .expect("CodeGen-Multi exists at every size");
            let mut base = self.pretrained(&base_spec, Some(&mut forward));
            base.resize_context(ctx, &mut rng);
            base
        } else {
            TransformerLm::new(spec.size.config(self.tokenizer.vocab_size(), ctx), &mut rng)
        };
        let stream = self.stream_for(spec.pools);
        let cfg = PretrainConfig {
            epochs: self.profile.pretrain_epochs,
            batch_size: self.profile.pretrain_batch,
            lr: self.profile.pretrain_lr,
            max_grad_norm: 1.0,
            seed: self.profile.seed ^ hash_name(&key),
        };
        pretrain(&mut model, &stream, &cfg, Some(&mut forward));
        self.pretrained.insert(key, model.clone());
        model
    }

    /// Wraps a pre-trained checkpoint as a text generator under its table
    /// display name.
    pub fn fewshot_generator(
        &mut self,
        spec: &ZooModelSpec,
        progress: Option<ProgressFn<'_>>,
    ) -> LmTextGenerator {
        let model = self.pretrained(spec, progress);
        LmTextGenerator::new(
            format!("{} {}", spec.name, spec.size.label()),
            model,
            Arc::clone(&self.tokenizer),
        )
    }

    /// The Codex-Davinci-002 stand-in: retrieval over a pool that includes
    /// crawled Ansible *and roughly half of the Galaxy files* — the
    /// deliberate contamination that reproduces Codex's outlier few-shot
    /// Exact Match ("Codex likely saw large portions of our Galaxy
    /// dataset").
    pub fn codex(&self) -> RetrievalModel {
        let galaxy_leak = self
            .corpus
            .galaxy
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, f)| f.as_str());
        let docs: Vec<&str> = self
            .corpus
            .github_ansible
            .iter()
            .map(String::as_str)
            .chain(self.corpus.gitlab.iter().map(String::as_str))
            .chain(galaxy_leak)
            .collect();
        RetrievalModel::build("Codex-Davinci-002", docs)
    }

    /// Number of checkpoints currently cached.
    pub fn cached_models(&self) -> usize {
        self.pretrained.len()
    }

    /// Encodes a fine-tuning sample under a prompt style.
    pub fn encode_sft(&self, sample: &wisdom_corpus::Sample, style: PromptStyle) -> SftSample {
        SftSample {
            prompt: self.tokenizer.encode(&sample.prompt_text(style)),
            completion: self.tokenizer.encode(&sample.expected),
        }
    }

    /// Returns the fine-tuned checkpoint for `(base model, context window,
    /// prompt style, data fraction)`, training it on first use.
    ///
    /// Follows the paper's recipe: resize the context window, fine-tune on
    /// the Galaxy training samples with a cosine schedule, and keep the
    /// epoch checkpoint with the best validation BLEU.
    pub fn finetuned(
        &mut self,
        base: &ZooModelSpec,
        ft_ctx_paper: usize,
        style: PromptStyle,
        data_fraction: f64,
        mut progress: Option<ProgressFn<'_>>,
    ) -> TransformerLm {
        let key = format!(
            "{}-{}-ctx{}-{:?}-{:.2}",
            base.name,
            base.size.label(),
            ft_ctx_paper,
            style,
            data_fraction
        );
        if let Some(m) = self.pretrained.get(&key) {
            return m.clone();
        }
        let mut forward = |step: usize, total: usize, loss: f32| {
            if let Some(cb) = progress.as_deref_mut() {
                cb(step, total, loss);
            }
        };
        let ctx = self.profile.ctx(ft_ctx_paper);
        let mut rng = Prng::seed_from_u64(self.profile.seed ^ hash_name(&key));
        let mut model = self.pretrained(base, Some(&mut forward));
        model.resize_context(ctx, &mut rng);

        // Data fraction (the Table 4 ablation rows -50 / -20 / -10).
        let mut train_idx: Vec<usize> = (0..self.split.train.len()).collect();
        rng.shuffle(&mut train_idx);
        let keep = ((self.split.train.len() as f64) * data_fraction).round() as usize;
        train_idx.truncate(keep.max(1));
        let sft: Vec<SftSample> = train_idx
            .iter()
            .map(|&i| self.encode_sft(&self.split.train[i], style))
            .collect();

        // Validation subset for checkpoint selection by BLEU.
        let val: Vec<wisdom_corpus::Sample> = self.split.valid.iter().take(12).cloned().collect();
        let tokenizer = Arc::clone(&self.tokenizer);
        let max_new = self.profile.max_new_tokens;
        let mut best: Option<(f64, TransformerLm)> = None;
        let mut on_epoch = |_epoch: usize, m: &TransformerLm| {
            let bleu = validation_bleu(m, &tokenizer, &val, style, max_new);
            if best.as_ref().map(|(b, _)| bleu > *b).unwrap_or(true) {
                best = Some((bleu, m.clone()));
            }
        };
        let cfg = FinetuneConfig {
            epochs: self.profile.finetune_epochs,
            batch_size: self.profile.finetune_batch,
            lr: self.profile.finetune_lr,
            max_grad_norm: 1.0,
            seed: self.profile.seed ^ hash_name(&key),
            ..Default::default()
        };
        finetune_with_epochs(
            &mut model,
            &sft,
            self.tokenizer.eot(),
            self.tokenizer.pad(),
            &cfg,
            Some(&mut forward),
            Some(&mut on_epoch),
        );
        let model = best.map(|(_, m)| m).unwrap_or(model);
        self.pretrained.insert(key, model.clone());
        model
    }

    /// Wraps a fine-tuned checkpoint as a named text generator.
    #[allow(clippy::too_many_arguments)]
    pub fn finetuned_generator(
        &mut self,
        label: &str,
        base: &ZooModelSpec,
        ft_ctx_paper: usize,
        style: PromptStyle,
        data_fraction: f64,
        progress: Option<ProgressFn<'_>>,
    ) -> LmTextGenerator {
        let model = self.finetuned(base, ft_ctx_paper, style, data_fraction, progress);
        LmTextGenerator::new(label, model, Arc::clone(&self.tokenizer))
    }
}

/// Mean sentence BLEU of greedy completions over validation samples.
fn validation_bleu(
    model: &TransformerLm,
    tokenizer: &Arc<BpeTokenizer>,
    val: &[wisdom_corpus::Sample],
    style: PromptStyle,
    max_new: usize,
) -> f64 {
    use wisdom_model::TextGenerator;
    if val.is_empty() {
        return 0.0;
    }
    let lm = LmTextGenerator::new("val", model.clone(), Arc::clone(tokenizer));
    let opts = wisdom_model::GenerationOptions {
        max_new_tokens: max_new,
        ..Default::default()
    };
    let mut total = 0.0;
    for s in val {
        let raw = lm.complete(&s.prompt_text(style), &opts);
        let processed = crate::runner::postprocess(s, &raw);
        total += wisdom_metrics::sentence_bleu(&s.expected, &processed);
    }
    total / val.len() as f64
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_matrix() {
        assert_eq!(TABLE2.len(), 9);
        let nl = spec("CodeGen-NL", SizeClass::S350m).unwrap();
        assert!(nl.pools.pile && !nl.pools.bigquery && !nl.pools.ansible);
        let mono = spec("CodeGen-Mono", SizeClass::S350m).unwrap();
        assert!(mono.pools.bigpython);
        let wam = spec("Wisdom-Ansible-Multi", SizeClass::S350m).unwrap();
        assert!(wam.from_multi_checkpoint && wam.pools.ansible && !wam.pools.generic);
        let wym = spec("Wisdom-Yaml-Multi", SizeClass::S350m).unwrap();
        assert!(wym.pools.generic);
        assert!(spec("CodeGen-Multi", SizeClass::S6b).is_some());
        assert!(spec("CodeGen-NL", SizeClass::S6b).is_none());
    }

    #[test]
    fn zoo_builds_and_pretrains_tiny_model() {
        let mut zoo = Zoo::build(Profile::test());
        assert!(!zoo.split.train.is_empty());
        let s = spec("Wisdom-Ansible", SizeClass::S350m).unwrap();
        let model = zoo.pretrained(s, None);
        assert_eq!(model.config().context_window, zoo.profile.ctx(1024));
        assert_eq!(zoo.cached_models(), 1);
        // Second call hits the cache (no retraining).
        let again = zoo.pretrained(s, None);
        assert_eq!(again.config(), model.config());
        assert_eq!(zoo.cached_models(), 1);
    }

    #[test]
    fn checkpoint_init_builds_base_first() {
        let mut zoo = Zoo::build(Profile::test());
        let s = spec("Wisdom-Ansible-Multi", SizeClass::S350m).unwrap();
        let _ = zoo.pretrained(s, None);
        // Both the base CodeGen-Multi and the continued model are cached.
        assert_eq!(zoo.cached_models(), 2);
    }

    #[test]
    fn streams_differ_by_pool_selection() {
        let mut zoo = Zoo::build(Profile::test());
        let a = zoo.stream_for(ANSIBLE);
        let p = zoo.stream_for(PILE);
        assert_ne!(a, p);
        let both = zoo.stream_for(PoolSelection {
            pile: true,
            ansible: true,
            ..Default::default()
        });
        assert!(both.len() > a.len().max(p.len()));
    }

    #[test]
    fn codex_pool_contains_galaxy_leak() {
        let zoo = Zoo::build(Profile::test());
        let codex = zoo.codex();
        assert!(!codex.is_empty());
    }
}
