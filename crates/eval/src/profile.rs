//! Scale profiles: the paper's experiments at GPU scale, shrunk to CPU
//! budgets while preserving every ratio that matters (data-source mix,
//! context-window grid, model-size ordering).

use wisdom_corpus::CorpusSpec;

/// All scale knobs for one reproduction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Master seed.
    pub seed: u64,
    /// Divisor applied to the paper's Table 1 file counts.
    pub corpus_scale: usize,
    /// BPE vocabulary size.
    pub vocab_size: usize,
    /// Divisor applied to the paper's context windows (8 maps 2048→256).
    pub ctx_scale: usize,
    /// Pre-training epochs (the paper used 9).
    pub pretrain_epochs: usize,
    /// Pre-training batch size.
    pub pretrain_batch: usize,
    /// Pre-training peak LR.
    pub pretrain_lr: f32,
    /// Fine-tuning epochs (the paper used 8).
    pub finetune_epochs: usize,
    /// Fine-tuning batch size.
    pub finetune_batch: usize,
    /// Fine-tuning peak LR.
    pub finetune_lr: f32,
    /// Cap on evaluated test samples (the paper scores all 50 580).
    pub eval_max_samples: usize,
    /// Generation budget per sample.
    pub max_new_tokens: usize,
}

impl Profile {
    /// Tiny sizes for unit/integration tests (seconds, debug builds).
    pub fn test() -> Profile {
        Profile {
            seed: 0xA11CE,
            corpus_scale: 16_000,
            vocab_size: 420,
            ctx_scale: 32,
            pretrain_epochs: 1,
            pretrain_batch: 4,
            pretrain_lr: 3e-3,
            finetune_epochs: 2,
            finetune_batch: 4,
            finetune_lr: 2e-3,
            eval_max_samples: 10,
            max_new_tokens: 48,
        }
    }

    /// Default for examples: minutes per table in release builds.
    pub fn quick() -> Profile {
        Profile {
            seed: 0xA11CE,
            corpus_scale: 2_000,
            vocab_size: 800,
            ctx_scale: 8,
            pretrain_epochs: 4,
            pretrain_batch: 8,
            pretrain_lr: 3e-3,
            finetune_epochs: 12,
            finetune_batch: 8,
            finetune_lr: 2e-3,
            eval_max_samples: 80,
            max_new_tokens: 120,
        }
    }

    /// The largest CPU-feasible sizes (used for EXPERIMENTS.md numbers).
    pub fn paper() -> Profile {
        Profile {
            seed: 0xA11CE,
            corpus_scale: 1_000,
            vocab_size: 1_000,
            ctx_scale: 8,
            pretrain_epochs: 5,
            pretrain_batch: 8,
            pretrain_lr: 3e-3,
            finetune_epochs: 16,
            finetune_batch: 8,
            finetune_lr: 2e-3,
            eval_max_samples: 200,
            max_new_tokens: 140,
        }
    }

    /// A trimmed variant of [`Profile::quick`] for the fine-tuning-heavy
    /// tables: smaller pre-training pools (fine-tuning dominates those
    /// results) and fewer fine-tuning epochs.
    pub fn fast() -> Profile {
        Profile {
            seed: 0xA11CE,
            corpus_scale: 4_000,
            vocab_size: 800,
            ctx_scale: 8,
            pretrain_epochs: 3,
            pretrain_batch: 8,
            pretrain_lr: 3e-3,
            finetune_epochs: 6,
            finetune_batch: 8,
            finetune_lr: 2e-3,
            eval_max_samples: 60,
            max_new_tokens: 120,
        }
    }

    /// Parses `"test"`, `"fast"`, `"quick"`, or `"paper"`.
    pub fn by_name(name: &str) -> Option<Profile> {
        match name {
            "test" => Some(Profile::test()),
            "fast" => Some(Profile::fast()),
            "quick" => Some(Profile::quick()),
            "paper" => Some(Profile::paper()),
            _ => None,
        }
    }

    /// Maps a paper-scale context window to this profile's scale
    /// (minimum 32).
    pub fn ctx(&self, paper_ctx: usize) -> usize {
        (paper_ctx / self.ctx_scale).max(32)
    }

    /// The corpus specification for this profile.
    ///
    /// The Galaxy fine-tuning channel is scaled at most 1:1000 regardless of
    /// `corpus_scale`: it is tiny in absolute terms but every fine-tuning
    /// and evaluation sample comes from it, so shrinking it further starves
    /// the splits.
    pub fn corpus_spec(&self) -> CorpusSpec {
        let mut spec = CorpusSpec::scaled(self.seed, self.corpus_scale);
        spec.galaxy_files = spec.galaxy_files.max(112_000 / self.corpus_scale.min(500));
        spec
    }
}

impl Default for Profile {
    fn default() -> Self {
        Profile::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_mapping_preserves_grid_ordering() {
        let p = Profile::quick();
        let c512 = p.ctx(512);
        let c1024 = p.ctx(1024);
        let c2048 = p.ctx(2048);
        assert!(c512 < c1024 && c1024 < c2048);
        assert_eq!(c1024, 128);
    }

    #[test]
    fn ctx_floor_applies() {
        let p = Profile::test();
        assert_eq!(p.ctx(512), 32);
    }

    #[test]
    fn by_name_resolves() {
        assert!(Profile::by_name("test").is_some());
        assert!(Profile::by_name("quick").is_some());
        assert!(Profile::by_name("paper").is_some());
        assert!(Profile::by_name("huge").is_none());
    }

    #[test]
    fn corpus_spec_uses_profile_seed() {
        let p = Profile::test();
        assert_eq!(p.corpus_spec().seed, p.seed);
    }
}
