//! Plain-text renderers for the paper's tables.

use crate::experiments::{
    BatchingPoint, CurationResult, GrammarResult, PrefixCachePoint, QuantResult, Row,
    ServingResult, SpeculativePoint, TelemetryOverhead, ThroughputResult, TypeRow,
};
use crate::zoo::TABLE2;

fn check(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        " "
    }
}

/// Renders Table 2 (model ↔ pre-training-dataset matrix).
pub fn table2_text() -> String {
    let mut out = String::new();
    out.push_str("Table 2: Model names and their associated pre-training datasets\n");
    out.push_str(&format!(
        "{:<22} {:>5} {:>5} {:>9} {:>12} {:>12}\n",
        "Model", "Pile", "BigQ", "BigPython", "Ansible YAML", "Generic YAML"
    ));
    for s in TABLE2 {
        // Checkpoint-initialized models inherit their base's datasets.
        let (pile, bq) = if s.from_multi_checkpoint {
            (true, true)
        } else {
            (s.pools.pile, s.pools.bigquery)
        };
        out.push_str(&format!(
            "{:<22} {:>5} {:>5} {:>9} {:>12} {:>12}\n",
            format!("{} {}", s.name, s.size.label()),
            check(pile),
            check(bq),
            check(s.pools.bigpython),
            check(s.pools.ansible),
            check(s.pools.generic),
        ));
    }
    out
}

fn metric_header() -> String {
    format!(
        "{:<24} {:>5} {:>8} {:>7} {:>6} {:>7} {:>8}\n",
        "Model", "Size", "Context", "Schema", "EM", "BLEU", "Aware"
    )
}

fn metric_row(r: &Row) -> String {
    format!(
        "{:<24} {:>5} {:>8} {:>7.2} {:>6.2} {:>7.2} {:>8.2}\n",
        r.model,
        r.size,
        r.ctx,
        r.metrics.schema_correct,
        r.metrics.exact_match,
        r.metrics.bleu,
        r.metrics.ansible_aware
    )
}

/// Renders Table 3 (few-shot results).
pub fn table3_text(rows: &[Row]) -> String {
    let mut out = String::from("Table 3: Few-shot evaluation (greedy decoding)\n");
    out.push_str(&metric_header());
    for (i, r) in rows.iter().enumerate() {
        // Blank separators between the paper's three sections.
        if i == 5 || i == 6 {
            out.push('\n');
        }
        out.push_str(&metric_row(r));
    }
    out
}

/// Renders Table 4 (fine-tuned results).
pub fn table4_text(rows: &[Row]) -> String {
    let mut out = String::from("Table 4: Fine-tuned evaluation\n");
    out.push_str(&metric_header());
    for (i, r) in rows.iter().enumerate() {
        if i == 4 || i == 5 || i == 9 {
            out.push('\n');
        }
        out.push_str(&metric_row(r));
    }
    out
}

/// Renders Table 5 (per-generation-type breakdown).
pub fn table5_text(rows: &[TypeRow]) -> String {
    let mut out =
        String::from("Table 5: Metrics per generation type (fine-tuned CodeGen-Multi, ctx 1024)\n");
    out.push_str(&format!(
        "{:<12} {:>7} {:>7} {:>6} {:>7} {:>8} {:>10}\n",
        "Type", "Count", "Schema", "EM", "BLEU", "Aware", "(scored)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7} {:>7.2} {:>6.2} {:>7.2} {:>8.2} {:>10}\n",
            r.label,
            r.count,
            r.metrics.schema_correct,
            r.metrics.exact_match,
            r.metrics.bleu,
            r.metrics.ansible_aware,
            r.metrics.count
        ));
    }
    out
}

/// Renders the throughput figure (§4.3).
pub fn throughput_text(r: &ThroughputResult) -> String {
    format!(
        "Generation throughput (single CPU stream, KV-cache greedy-path):\n  \
         decode  350M-class: {:>8.1} tokens/s\n  \
         decode  2.7B-class: {:>8.1} tokens/s\n  \
         decode speedup:     {:>8.2}x  (paper: ~1.9x on one GPU)\n  \
         prefill 350M-class: {:>8.1} tokens/s (batched)\n  \
         prefill 2.7B-class: {:>8.1} tokens/s (batched) vs {:.1} tokens/s (sequential)\n  \
         prefill speedup:    {:>8.2}x  (batched vs step loop, 2.7B-class)\n",
        r.small_tps,
        r.large_tps,
        r.speedup(),
        r.small_prefill_tps,
        r.large_prefill_tps,
        r.large_prefill_seq_tps,
        r.prefill_speedup()
    )
}

/// Renders the continuous-batching decode scaling curve.
pub fn decode_batching_text(points: &[BatchingPoint]) -> String {
    let mut out =
        String::from("Continuous-batching decode: aggregate greedy tokens/s vs batch size\n");
    out.push_str(&format!(
        "{:<6} {:>16} {:>16} {:>10} {:>14}\n",
        "Batch", "350M tok/s", "2.7B tok/s", "2.7B x", "2.7B ms/req"
    ));
    let base = points.first().map_or(1.0, |p| p.large_tps).max(1e-9);
    for p in points {
        out.push_str(&format!(
            "{:<6} {:>16.1} {:>16.1} {:>9.2}x {:>14.1}\n",
            p.batch,
            p.small_tps,
            p.large_tps,
            p.large_tps / base,
            p.large_latency_ms
        ));
    }
    out
}

/// Renders the telemetry-overhead comparison.
pub fn telemetry_text(r: &TelemetryOverhead) -> String {
    format!(
        "Telemetry overhead (batched greedy decode, {} seqs thru batch {} x {} tokens, 350M-class):\n  \
         plain        : {:>8.1} tokens/s\n  \
         instrumented : {:>8.1} tokens/s\n  \
         overhead     : {:>8.2}%  (target: <1%)\n  \
         identical out: {}\n",
        r.batch * 4,
        r.batch,
        r.tokens,
        r.plain_tps,
        r.instrumented_tps,
        r.overhead() * 100.0,
        r.identical_output
    )
}

/// Renders the prefix-cache cold-vs-warm prefill table.
pub fn prefix_cache_text(points: &[PrefixCachePoint]) -> String {
    let mut out =
        String::from("Radix prefix KV cache: full-window prefill, cold vs warm (suffix-only)\n");
    out.push_str(&format!(
        "{:<14} {:>13} {:>13} {:>8} {:>13} {:>13} {:>8}\n",
        "Shared",
        "350M cold ms",
        "350M warm ms",
        "350M x",
        "2.7B cold ms",
        "2.7B warm ms",
        "2.7B x"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<14} {:>13.1} {:>13.1} {:>7.2}x {:>13.1} {:>13.1} {:>7.2}x\n",
            format!("{}/{} tok", p.shared, p.total),
            p.small_cold_ms,
            p.small_warm_ms,
            p.small_speedup(),
            p.large_cold_ms,
            p.large_warm_ms,
            p.large_speedup()
        ));
    }
    out
}

/// Renders the speculative-decoding tok/s and acceptance curve.
pub fn speculative_text(points: &[SpeculativePoint]) -> String {
    let mut out = String::from(
        "Speculative decoding: greedy tokens/s and accepted draft tokens per verify vs k\n\
         (order-4 n-gram drafter warmed on the model's own greedy stream; k=0 = plain loop)\n",
    );
    out.push_str(&format!(
        "{:<6} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10}\n",
        "k", "350M tok/s", "350M x", "350M acc", "2.7B tok/s", "2.7B x", "2.7B acc"
    ));
    let small_base = points.first().map_or(1.0, |p| p.small_tps).max(1e-9);
    let large_base = points.first().map_or(1.0, |p| p.large_tps).max(1e-9);
    for p in points {
        out.push_str(&format!(
            "{:<6} {:>12.1} {:>9.2}x {:>10.2} {:>12.1} {:>9.2}x {:>10.2}\n",
            p.k,
            p.small_tps,
            p.small_tps / small_base,
            p.small_accepted,
            p.large_tps,
            p.large_tps / large_base,
            p.large_accepted
        ));
    }
    out
}

/// Renders the quantization experiment: per-size-class decode speed and
/// the quality deltas on the Table 5 harness.
pub fn quant_text(r: &QuantResult) -> String {
    let mut out = String::from(
        "Quantized int8 inference: single-stream greedy decode, f32 vs int8-packed weights\n",
    );
    out.push_str(&format!(
        "{:<6} {:>11} {:>12} {:>9} {:>11} {:>12} {:>7}\n",
        "Size", "f32 tok/s", "int8 tok/s", "speedup", "f32 MB", "int8 MB", "pack"
    ));
    for s in &r.speed {
        out.push_str(&format!(
            "{:<6} {:>11.1} {:>12.1} {:>8.2}x {:>11.2} {:>12.2} {:>6.2}x\n",
            s.label,
            s.f32_tps,
            s.int8_tps,
            s.speedup(),
            s.f32_weight_bytes as f64 / 1e6,
            s.int8_weight_bytes as f64 / 1e6,
            s.compression()
        ));
    }
    out.push_str("Quality on the Table 5 harness (fine-tuned CodeGen-Multi, ctx 1024):\n");
    out.push_str(&format!(
        "{:<8} {:>7} {:>6} {:>7} {:>8}\n",
        "Weights", "Schema", "EM", "BLEU", "Aware"
    ));
    for (label, m) in [("f32", &r.f32_metrics), ("int8", &r.int8_metrics)] {
        out.push_str(&format!(
            "{:<8} {:>7.2} {:>6.2} {:>7.2} {:>8.2}\n",
            label, m.schema_correct, m.exact_match, m.bleu, m.ansible_aware
        ));
    }
    out.push_str(&format!(
        "{:<8} {:>+7.2} {:>+6.2} {:>+7.2} {:>+8.2}\n",
        "delta",
        r.schema_delta(),
        r.exact_delta(),
        r.bleu_delta(),
        r.aware_delta()
    ));
    out
}

/// Renders the grammar-constrained decoding experiment: per-generation-type
/// quality with and without the automaton, plus the correctness audit.
pub fn grammar_text(r: &GrammarResult) -> String {
    let mut out = format!(
        "Grammar-constrained decoding: fine-tuned CodeGen-Multi (ctx 1024), greedy decode \
         plain vs `{}` automaton, Table 5 harness\n",
        r.constraint
    );
    out.push_str(&format!(
        "{:<12} {:>5} {:>12} {:>12} {:>8} {:>11} {:>11} {:>8} {:>7}\n",
        "Type", "n", "Schema", "Schema[g]", "dSchema", "Aware", "Aware[g]", "dAware", "dBLEU"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:<12} {:>5} {:>12.2} {:>12.2} {:>+8.2} {:>11.2} {:>11.2} {:>+8.2} {:>+7.2}\n",
            row.label,
            row.count,
            row.unconstrained.schema_correct,
            row.constrained.schema_correct,
            row.schema_delta(),
            row.unconstrained.ansible_aware,
            row.constrained.ansible_aware,
            row.aware_delta(),
            row.bleu_delta()
        ));
    }
    out.push_str(&format!(
        "Correctness audit over constrained completions: {}/{} parse, {}/{} lint clean\n",
        r.parsed, r.completions, r.lint_clean, r.completions
    ));
    out
}

/// Renders the multi-replica serving replay (SLO view).
pub fn serving_text(r: &ServingResult) -> String {
    let mut out = format!(
        "Multi-replica serving replay: {} sessions x {} resends, {}-token session prefix \
         (+{}/resend), {} new tokens/request, 2.7B-class\n\
         Per-replica prefix-cache budget {:.2} MB (~60% of the aggregate KV working set: \
         replicas scale cache capacity, not CPU)\n",
        r.sessions,
        r.resends,
        r.prefix_tokens,
        r.growth_tokens,
        r.max_new,
        r.replica_budget_bytes as f64 / 1e6,
    );
    out.push_str(&format!(
        "{:<20} {:>10} {:>10} {:>10} {:>13} {:>10} {:>6} {:>9}\n",
        "Arm", "tok/s", "TTFT p50", "TTFT p99", "warm TTFT p50", "token p50", "shed", "cache hit"
    ));
    for a in &r.arms {
        out.push_str(&format!(
            "{:<20} {:>10.1} {:>8.1}ms {:>8.1}ms {:>11.1}ms {:>8.2}ms {:>6} {:>8.0}%\n",
            a.label,
            a.aggregate_tps,
            a.ttft_p50_ms,
            a.ttft_p99_ms,
            a.warm_ttft_p50_ms,
            a.token_p50_ms,
            a.shed_retries,
            a.cache_hit_rate * 100.0
        ));
    }
    out.push_str(&format!(
        "scale-out: {:.2}x aggregate tok/s (2x affinity vs 1x)   \
         warm TTFT p50: affinity {:.2}x faster than round-robin at 2x\n",
        r.scaleout(),
        r.affinity_warm_ttft_gain()
    ));
    out
}

/// Renders the corpus-curation experiment (throughput sweep, selectivity,
/// recall probe, drafter warming).
pub fn curation_text(r: &CurationResult) -> String {
    let mut out = format!(
        "Corpus curation: {} docs / {:.2} MB in -> {} kept ({} shards, {:.2} MB)\n\
         drops: {} parse, {} quality, {} exact-dup ({:.1}%), {} near-dup ({:.1}%)\n",
        r.ingested,
        r.ingested_bytes as f64 / 1e6,
        r.kept,
        r.shards,
        r.shard_bytes as f64 / 1e6,
        r.parse_failed,
        r.quality_rejected,
        r.exact_dups,
        r.exact_dup_rate * 100.0,
        r.near_dups,
        r.near_dup_rate * 100.0,
    );
    out.push_str("quality histogram (kept docs, bins of 0.1):");
    for c in r.quality_hist {
        out.push_str(&format!(" {c}"));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<9} {:>12} {:>12} {:>10}\n",
        "workers", "docs/s", "MB/s", "identical"
    ));
    for p in &r.scale {
        out.push_str(&format!(
            "{:<9} {:>12.0} {:>12.2} {:>10}\n",
            p.workers,
            p.docs_per_sec,
            p.bytes_per_sec / 1e6,
            if p.identical { "yes" } else { "NO" }
        ));
    }
    out.push_str(&format!(
        "near-dup recall probe: {}/{} injected mutants caught ({:.1}%)\n",
        r.injected_caught,
        r.injected,
        r.recall() * 100.0
    ));
    out.push_str(&format!(
        "drafter warming (CodeGen-Multi 350M ft, k=8): warm {:.1} tok/s ({:.2} acc/verify) vs \
         cold {:.1} tok/s ({:.2} acc/verify) vs plain {:.1} tok/s -> {:.2}x warm-over-cold\n",
        r.warm_tps,
        r.warm_accepted,
        r.cold_tps,
        r.cold_accepted,
        r.baseline_tps,
        r.warm_speedup()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisdom_metrics::MetricsSummary;

    fn row(model: &str) -> Row {
        Row {
            model: model.to_string(),
            size: "350M".to_string(),
            ctx: 1024,
            metrics: MetricsSummary {
                count: 10,
                schema_correct: 90.0,
                exact_match: 10.0,
                bleu: 45.5,
                ansible_aware: 50.25,
            },
        }
    }

    #[test]
    fn table2_lists_every_model_with_checkmarks() {
        let t = table2_text();
        assert!(t.contains("CodeGen-NL 350M"));
        assert!(t.contains("Wisdom-Yaml-Multi 350M"));
        // Wisdom-Ansible-Multi inherits Pile+BigQuery checkmarks.
        let line = t
            .lines()
            .find(|l| l.starts_with("Wisdom-Ansible-Multi"))
            .unwrap();
        assert_eq!(line.matches('x').count(), 3, "{line}");
    }

    #[test]
    fn table3_renders_rows() {
        let rows: Vec<Row> = (0..7).map(|i| row(&format!("M{i}"))).collect();
        let t = table3_text(&rows);
        assert!(t.contains("M0"));
        assert!(t.contains("45.50"));
        assert!(t.contains("BLEU"));
    }

    #[test]
    fn table5_renders_counts() {
        let rows = vec![TypeRow {
            label: "ALL".to_string(),
            count: 123,
            metrics: row("x").metrics,
        }];
        let t = table5_text(&rows);
        assert!(t.contains("ALL"));
        assert!(t.contains("123"));
    }

    #[test]
    fn throughput_text_shows_speedup() {
        let t = throughput_text(&crate::experiments::ThroughputResult {
            small_tps: 200.0,
            large_tps: 100.0,
            small_prefill_tps: 900.0,
            large_prefill_tps: 600.0,
            large_prefill_seq_tps: 150.0,
        });
        assert!(t.contains("2.00x"));
        assert!(t.contains("4.00x"), "prefill speedup column: {t}");
        assert!(t.contains("600.0"));
    }

    #[test]
    fn decode_batching_text_shows_scaling() {
        let t = decode_batching_text(&[
            crate::experiments::BatchingPoint {
                batch: 1,
                small_tps: 400.0,
                large_tps: 100.0,
                large_latency_ms: 50.0,
            },
            crate::experiments::BatchingPoint {
                batch: 8,
                small_tps: 1600.0,
                large_tps: 250.0,
                large_latency_ms: 160.0,
            },
        ]);
        assert!(t.contains("2.50x"), "{t}");
        assert!(t.contains("1600.0"), "{t}");
        assert!(t.contains("160.0"), "{t}");
    }

    #[test]
    fn speculative_text_shows_acceptance_and_speedup() {
        let t = speculative_text(&[
            crate::experiments::SpeculativePoint {
                k: 0,
                small_tps: 100.0,
                small_accepted: 0.0,
                large_tps: 40.0,
                large_accepted: 0.0,
            },
            crate::experiments::SpeculativePoint {
                k: 4,
                small_tps: 250.0,
                small_accepted: 3.5,
                large_tps: 100.0,
                large_accepted: 3.25,
            },
        ]);
        assert!(t.contains("2.50x"), "{t}");
        assert!(t.contains("3.50"), "{t}");
        assert!(t.contains("3.25"), "{t}");
    }

    #[test]
    fn quant_text_shows_speedup_and_deltas() {
        let f32_metrics = row("x").metrics;
        let int8_metrics = MetricsSummary {
            bleu: 44.0,
            ..f32_metrics
        };
        let t = quant_text(&crate::experiments::QuantResult {
            speed: vec![crate::experiments::QuantSpeed {
                label: "2.7B".to_string(),
                f32_tps: 100.0,
                int8_tps: 250.0,
                f32_weight_bytes: 4_000_000,
                int8_weight_bytes: 1_000_000,
            }],
            f32_metrics,
            int8_metrics,
        });
        assert!(t.contains("2.50x"), "{t}");
        assert!(t.contains("4.00x"), "{t}");
        assert!(t.contains("-1.50"), "BLEU delta: {t}");
        assert!(t.contains("+0.00"), "unchanged deltas print signed: {t}");
    }

    #[test]
    fn serving_text_shows_scaleout_and_slo_columns() {
        let arm = |label: &str, replicas: usize, policy: &str, tps: f64, warm: f64| {
            crate::experiments::ServingArm {
                label: label.to_string(),
                replicas,
                policy: policy.to_string(),
                aggregate_tps: tps,
                ttft_p50_ms: 40.0,
                ttft_p99_ms: 90.0,
                warm_ttft_p50_ms: warm,
                token_p50_ms: 8.25,
                requests: 40,
                shed_retries: 0,
                cache_hit_rate: 0.5,
                cache_hit_tokens: 1000,
            }
        };
        let t = serving_text(&crate::experiments::ServingResult {
            sessions: 8,
            resends: 5,
            prefix_tokens: 96,
            growth_tokens: 4,
            max_new: 8,
            replica_budget_bytes: 2_850_000,
            arms: vec![
                arm("1x prefix-affinity", 1, "prefix-affinity", 100.0, 60.0),
                arm("2x prefix-affinity", 2, "prefix-affinity", 200.0, 20.0),
                arm("2x round-robin", 2, "round-robin", 110.0, 50.0),
            ],
        });
        assert!(t.contains("2.00x aggregate"), "{t}");
        assert!(t.contains("2.50x faster"), "{t}");
        assert!(t.contains("8 sessions x 5 resends"), "{t}");
        assert!(t.contains("8.25ms"), "{t}");
    }

    #[test]
    fn prefix_cache_text_shows_speedups() {
        let t = prefix_cache_text(&[crate::experiments::PrefixCachePoint {
            shared: 96,
            total: 128,
            small_cold_ms: 80.0,
            small_warm_ms: 40.0,
            large_cold_ms: 400.0,
            large_warm_ms: 100.0,
        }]);
        assert!(t.contains("96/128 tok"), "{t}");
        assert!(t.contains("2.00x"), "{t}");
        assert!(t.contains("4.00x"), "{t}");
    }
}
