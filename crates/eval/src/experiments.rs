//! The paper's experiments, one function per table/figure.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wisdom_corpus::{GenType, PromptStyle, Sample};
use wisdom_metrics::MetricsSummary;
use wisdom_model::{
    BatchConfig, Constraint, DecodeRequest, GenerationOptions, LmTextGenerator, ModelConfig,
    Precision, ReplicaPool, Strategy, TransformerLm,
};
use wisdom_prng::Prng;
use wisdom_server::{RoutePolicy, Router, RouterConfig};

use crate::profile::Profile;
use crate::runner::{evaluate, EvalSettings, SampleCap};
use crate::zoo::{spec, SizeClass, Zoo};

/// One table row: model identity plus the four metric columns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model display name.
    pub model: String,
    /// Size column ("350M", "2.7B", "6B", "175B").
    pub size: String,
    /// Paper-scale context window column.
    pub ctx: usize,
    /// The four metrics.
    pub metrics: MetricsSummary,
}

/// Progress callback: `(phase, step, total)`.
pub type Progress<'a> = Option<&'a mut dyn FnMut(&str, usize, usize)>;

fn phase(progress: &mut Progress<'_>, label: &str) {
    if let Some(cb) = progress.as_deref_mut() {
        cb(label, 0, 0);
    }
}

/// Table 3: few-shot evaluation of every pre-trained model plus the Codex
/// stand-in, in the paper's row order.
pub fn run_table3(zoo: &mut Zoo, mut progress: Progress<'_>) -> Vec<Row> {
    let test_refs: Vec<&Sample> = zoo.split.test.iter().collect();
    // The borrow checker requires cloning sample refs per evaluation since
    // zoo is borrowed mutably while building generators; evaluate on owned
    // clones instead.
    let test: Vec<Sample> = test_refs.into_iter().cloned().collect();
    let order: [(&str, SizeClass); 9] = [
        ("CodeGen-NL", SizeClass::S350m),
        ("CodeGen-Mono", SizeClass::S350m),
        ("CodeGen-Multi", SizeClass::S350m),
        ("CodeGen-Multi", SizeClass::S2_7b),
        ("CodeGen-Multi", SizeClass::S6b),
        ("Wisdom-Ansible-Multi", SizeClass::S350m),
        ("Wisdom-Yaml-Multi", SizeClass::S350m),
        ("Wisdom-Ansible", SizeClass::S350m),
        ("Wisdom-Yaml", SizeClass::S350m),
    ];
    let mut rows = Vec::new();
    for (name, size) in order {
        let s = *spec(name, size).expect("row exists in TABLE2");
        phase(
            &mut progress,
            &format!("pretrain {} {}", name, size.label()),
        );
        let generator = zoo.fewshot_generator(&s, None);
        let settings = EvalSettings {
            // "adding the string Ansible\n prior to the prompt improved the
            // performances of CodeGen models" — not used for Wisdom.
            ansible_marker: name.starts_with("CodeGen"),
            ..EvalSettings::for_profile(&zoo.profile)
        };
        phase(
            &mut progress,
            &format!("evaluate {} {}", name, size.label()),
        );
        let refs: Vec<&Sample> = test.iter().collect();
        let result = evaluate(&generator, &refs, &settings);
        rows.push(Row {
            model: name.to_string(),
            size: size.label().to_string(),
            ctx: s.fewshot_ctx,
            metrics: result.overall,
        });
        // Insert the Codex row after the CodeGen section, like the paper.
        if rows.len() == 5 {
            phase(&mut progress, "evaluate Codex-Davinci-002");
            let codex = zoo.codex();
            let settings = EvalSettings {
                ansible_marker: true,
                ..EvalSettings::for_profile(&zoo.profile)
            };
            let refs: Vec<&Sample> = test.iter().collect();
            let result = evaluate(&codex, &refs, &settings);
            rows.push(Row {
                model: "Codex-Davinci-002".to_string(),
                size: "175B".to_string(),
                ctx: 2048,
                metrics: result.overall,
            });
        }
    }
    rows
}

/// A Table 4 fine-tuning row request.
#[derive(Debug, Clone)]
struct FtRow {
    label: &'static str,
    base: (&'static str, SizeClass),
    ctx: usize,
    style: PromptStyle,
    fraction: f64,
}

/// Table 4: fine-tuned models — context-window grid, the prefix-prompt
/// ablation, the Wisdom variants, and the data-fraction ablation.
pub fn run_table4(zoo: &mut Zoo, mut progress: Progress<'_>) -> Vec<Row> {
    let rows: Vec<FtRow> = vec![
        FtRow {
            label: "CodeGen-Multi",
            base: ("CodeGen-Multi", SizeClass::S350m),
            ctx: 512,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "CodeGen-Multi",
            base: ("CodeGen-Multi", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "CodeGen-Multi",
            base: ("CodeGen-Multi", SizeClass::S350m),
            ctx: 2048,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "CodeGen-Multi",
            base: ("CodeGen-Multi", SizeClass::S2_7b),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "CodeGen-Multi-prefix",
            base: ("CodeGen-Multi", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::Prefix,
            fraction: 1.0,
        },
        FtRow {
            label: "Wisdom-Ansible-Multi",
            base: ("Wisdom-Ansible-Multi", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "Wisdom-Yaml-Multi",
            base: ("Wisdom-Yaml-Multi", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "Wisdom-Ansible",
            base: ("Wisdom-Ansible", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "Wisdom-Yaml",
            base: ("Wisdom-Yaml", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 1.0,
        },
        FtRow {
            label: "Wisdom-Ansible-Multi -50",
            base: ("Wisdom-Ansible-Multi", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 0.5,
        },
        FtRow {
            label: "Wisdom-Ansible-Multi -20",
            base: ("Wisdom-Ansible-Multi", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 0.2,
        },
        FtRow {
            label: "Wisdom-Ansible-Multi -10",
            base: ("Wisdom-Ansible-Multi", SizeClass::S350m),
            ctx: 1024,
            style: PromptStyle::NameCompletion,
            fraction: 0.1,
        },
    ];
    let test: Vec<Sample> = zoo.split.test.clone();
    let mut out = Vec::new();
    for r in rows {
        let base = *spec(r.base.0, r.base.1).expect("base in TABLE2");
        phase(
            &mut progress,
            &format!(
                "finetune {} ctx{} ({}%)",
                r.label,
                r.ctx,
                (r.fraction * 100.0) as u32
            ),
        );
        let generator = zoo.finetuned_generator(r.label, &base, r.ctx, r.style, r.fraction, None);
        let settings = EvalSettings {
            style: r.style,
            ..EvalSettings::for_profile(&zoo.profile)
        };
        phase(&mut progress, &format!("evaluate {} ctx{}", r.label, r.ctx));
        let refs: Vec<&Sample> = test.iter().collect();
        let result = evaluate(&generator, &refs, &settings);
        out.push(Row {
            model: r.label.to_string(),
            size: r.base.1.label().to_string(),
            ctx: r.ctx,
            metrics: result.overall,
        });
    }
    out
}

/// One Table 5 row: a generation type, its full test count, and metrics.
#[derive(Debug, Clone)]
pub struct TypeRow {
    /// "ALL" or the generation-type label.
    pub label: String,
    /// Number of test samples of this type (before capping).
    pub count: usize,
    /// Metrics on the evaluated subset.
    pub metrics: MetricsSummary,
}

/// Table 5: per-generation-type breakdown of the fine-tuned CodeGen-Multi
/// (350M, ctx 1024) — the paper's reference fine-tuned model.
pub fn run_table5(zoo: &mut Zoo, mut progress: Progress<'_>) -> Vec<TypeRow> {
    let base = *spec("CodeGen-Multi", SizeClass::S350m).expect("base exists");
    phase(&mut progress, "finetune CodeGen-Multi ctx1024");
    let generator = zoo.finetuned_generator(
        "CodeGen-Multi",
        &base,
        1024,
        PromptStyle::NameCompletion,
        1.0,
        None,
    );
    let per_type_cap = (zoo.profile.eval_max_samples / 3).max(8);
    let settings = EvalSettings {
        cap: SampleCap::PerType(per_type_cap),
        ..EvalSettings::for_profile(&zoo.profile)
    };
    phase(&mut progress, "evaluate per generation type");
    let test: Vec<Sample> = zoo.split.test.clone();
    let refs: Vec<&Sample> = test.iter().collect();
    let result = evaluate(&generator, &refs, &settings);
    let mut rows = vec![TypeRow {
        label: "ALL".to_string(),
        count: zoo.split.test.len(),
        metrics: result.overall,
    }];
    for (gt, m) in result.by_type {
        rows.push(TypeRow {
            label: gt.to_string(),
            count: zoo.split.test.iter().filter(|s| s.gen_type == gt).count(),
            metrics: m,
        });
    }
    rows
}

/// Decoding-strategy ablation — the paper's "we would expect some
/// improvement by using random sampling or beam search decoding" (§5.2),
/// actually measured: the fine-tuned reference model evaluated with greedy,
/// beam-search, and top-k decoding.
pub fn run_decoding_ablation(zoo: &mut Zoo, mut progress: Progress<'_>) -> Vec<Row> {
    use wisdom_model::TextGenerator;

    let base = *spec("CodeGen-Multi", SizeClass::S350m).expect("base exists");
    phase(&mut progress, "finetune CodeGen-Multi ctx1024");
    let generator = zoo.finetuned_generator(
        "CodeGen-Multi",
        &base,
        1024,
        PromptStyle::NameCompletion,
        1.0,
        None,
    );
    let strategies: [(&str, Strategy); 3] = [
        ("greedy", Strategy::Greedy),
        ("beam-4", Strategy::Beam { width: 4 }),
        (
            "top-k (k=40, T=0.8)",
            Strategy::TopK {
                k: 40,
                temperature: 0.8,
            },
        ),
    ];
    let test: Vec<Sample> = zoo.split.test.clone();
    let mut rows = Vec::new();
    for (label, strategy) in strategies {
        phase(&mut progress, &format!("evaluate decoding={label}"));
        // Wrap the generator so every completion uses the ablated strategy.
        struct Forced<'a> {
            inner: &'a dyn TextGenerator,
            strategy: Strategy,
        }
        impl TextGenerator for Forced<'_> {
            fn complete(&self, prompt: &str, opts: &GenerationOptions) -> String {
                self.inner.complete(
                    prompt,
                    &GenerationOptions {
                        strategy: self.strategy,
                        ..*opts
                    },
                )
            }
            fn model_name(&self) -> String {
                self.inner.model_name()
            }
        }
        let forced = Forced {
            inner: &generator,
            strategy,
        };
        let settings = EvalSettings {
            cap: SampleCap::Total(zoo.profile.eval_max_samples.min(40)),
            ..EvalSettings::for_profile(&zoo.profile)
        };
        let refs: Vec<&Sample> = test.iter().collect();
        let result = evaluate(&forced, &refs, &settings);
        rows.push(Row {
            model: format!("CodeGen-Multi [{label}]"),
            size: "350M".to_string(),
            ctx: 1024,
            metrics: result.overall,
        });
    }
    rows
}

/// The §4.3 throughput comparison: single-stream greedy decode speed of the
/// 350M-class vs the 2.7B-class architecture (the paper measured ~1.9×),
/// plus prompt-prefill throughput (batched forward vs the sequential
/// step-loop baseline) on a context-window-length prompt.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Decode tokens/second for the 350M-class model.
    pub small_tps: f64,
    /// Decode tokens/second for the 2.7B-class model.
    pub large_tps: f64,
    /// Batched-prefill tokens/second for the 350M-class model.
    pub small_prefill_tps: f64,
    /// Batched-prefill tokens/second for the 2.7B-class model.
    pub large_prefill_tps: f64,
    /// Sequential (one step per token) prefill tokens/second for the
    /// 2.7B-class model — the baseline the batched pass is judged against.
    pub large_prefill_seq_tps: f64,
}

impl ThroughputResult {
    /// Decode speedup of the small model over the large one.
    pub fn speedup(&self) -> f64 {
        self.small_tps / self.large_tps
    }

    /// Speedup of batched prefill over the sequential step loop on the
    /// 2.7B-class model.
    pub fn prefill_speedup(&self) -> f64 {
        self.large_prefill_tps / self.large_prefill_seq_tps
    }
}

/// Measures generation and prefill throughput for the two size classes.
pub fn run_throughput(profile: &Profile, tokens: usize) -> ThroughputResult {
    let ctx = profile.ctx(1024);
    let vocab = profile.vocab_size;
    let mut rng = Prng::seed_from_u64(profile.seed);
    let small = TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng);
    let large = TransformerLm::new(ModelConfig::size_2_7b(vocab, ctx), &mut rng);
    ThroughputResult {
        small_tps: measure_tps(&small, tokens),
        large_tps: measure_tps(&large, tokens),
        small_prefill_tps: measure_prefill_tps(&small, true),
        large_prefill_tps: measure_prefill_tps(&large, true),
        large_prefill_seq_tps: measure_prefill_tps(&large, false),
    }
}

/// Prefill tokens/second over a context-window-length prompt, via the
/// batched pass (`batched`) or the sequential step loop.
fn measure_prefill_tps(model: &TransformerLm, batched: bool) -> f64 {
    let ctx = model.config().context_window;
    let vocab = model.config().vocab_size as u32;
    let window: Vec<u32> = (0..ctx as u32).map(|i| (i * 31 + 3) % vocab).collect();
    let run = |w: &[u32]| {
        if batched {
            model.prefill(w)
        } else {
            model.prefill_sequential(w)
        }
    };
    let _ = run(&window); // warm-up
                          // Best of three: a single timed region is at the mercy of transient
                          // scheduler contention (e.g. the parallel test harness).
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let _ = std::hint::black_box(run(&window));
        best = best.min(start.elapsed().as_secs_f64());
    }
    ctx as f64 / best.max(1e-9)
}

fn measure_tps(model: &TransformerLm, tokens: usize) -> f64 {
    let opts = GenerationOptions {
        max_new_tokens: tokens,
        strategy: Strategy::TopK {
            k: 50,
            temperature: 1.0,
        },
        seed: 7,
    };
    let prompt: Vec<u32> = (3..11).collect();
    // Warm-up.
    let _ = model.generate(
        &prompt,
        &[],
        &GenerationOptions {
            max_new_tokens: 8,
            ..opts
        },
    );
    // Best of two: robust against transient scheduler contention.
    let mut best = 0.0f64;
    for _ in 0..2 {
        let start = Instant::now();
        let out = model.generate(&prompt, &[], &opts);
        let elapsed = start.elapsed().as_secs_f64();
        best = best.max(out.len() as f64 / elapsed.max(1e-9));
    }
    best
}

/// Aggregate decode throughput at one batch size, for one size class.
#[derive(Debug, Clone, Copy)]
pub struct BatchingPoint {
    /// Concurrent sequences decoded together.
    pub batch: usize,
    /// Aggregate decode tokens/second, 350M-class model.
    pub small_tps: f64,
    /// Aggregate decode tokens/second, 2.7B-class model.
    pub large_tps: f64,
    /// Per-request wall-clock milliseconds at this batch size (2.7B-class):
    /// the latency a single request pays for riding the batch.
    pub large_latency_ms: f64,
}

/// The continuous-batching scaling curve: aggregate greedy-decode
/// tokens/second (and per-request latency) as the decode batch grows, for
/// the 350M- and 2.7B-class architectures. Batch size 1 is the solo
/// `generate` loop every request paid before the scheduler existed.
pub fn run_decode_batching(
    profile: &Profile,
    tokens: usize,
    sizes: &[usize],
) -> Vec<BatchingPoint> {
    let ctx = profile.ctx(1024);
    let vocab = profile.vocab_size;
    let mut rng = Prng::seed_from_u64(profile.seed);
    let small = TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng);
    let large = TransformerLm::new(ModelConfig::size_2_7b(vocab, ctx), &mut rng);
    sizes
        .iter()
        .map(|&batch| {
            let (small_tps, _) = measure_batched_tps(&small, batch, tokens);
            let (large_tps, large_latency_ms) = measure_batched_tps(&large, batch, tokens);
            BatchingPoint {
                batch,
                small_tps,
                large_tps,
                large_latency_ms,
            }
        })
        .collect()
}

/// Aggregate `(tokens/second, per-request latency ms)` decoding `batch`
/// concurrent sequences of `tokens` greedy tokens each through
/// [`wisdom_model::generate_batch`].
fn measure_batched_tps(model: &TransformerLm, batch: usize, tokens: usize) -> (f64, f64) {
    use wisdom_model::{generate_batch, DecodeRequest};
    let vocab = model.config().vocab_size as u32;
    let opts = GenerationOptions {
        max_new_tokens: tokens,
        ..Default::default()
    };
    let requests = |n: usize| -> Vec<DecodeRequest> {
        (0..n)
            .map(|i| DecodeRequest {
                // Distinct prompts so per-sequence caches differ like real
                // traffic; no stop tokens so every sequence runs the full
                // budget and the token count is exact.
                prompt: (0..8u32)
                    .map(|j| (i as u32 * 13 + j * 31 + 3) % vocab)
                    .collect(),
                stops: Vec::new(),
                opts,
                grammar: None,
            })
            .collect()
    };
    let _ = generate_batch(model, requests(batch.min(2)), batch); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        let out = std::hint::black_box(generate_batch(model, requests(batch), batch));
        let elapsed = start.elapsed().as_secs_f64();
        debug_assert_eq!(out.iter().map(Vec::len).sum::<usize>(), batch * tokens);
        best = best.min(elapsed);
    }
    let total = (batch * tokens) as f64;
    (total / best.max(1e-9), best * 1000.0)
}

/// Cold vs warm prefill latency through the radix prefix KV cache at one
/// shared-prefix length, for both size classes.
#[derive(Debug, Clone, Copy)]
pub struct PrefixCachePoint {
    /// Tokens of the window covered by the cached shared prefix.
    pub shared: usize,
    /// Total window length (the profile's 1024-class context).
    pub total: usize,
    /// Cold full-window prefill milliseconds, 350M-class model.
    pub small_cold_ms: f64,
    /// Warm (cache-hit, suffix-only) prefill milliseconds, 350M-class.
    pub small_warm_ms: f64,
    /// Cold full-window prefill milliseconds, 2.7B-class model.
    pub large_cold_ms: f64,
    /// Warm (cache-hit, suffix-only) prefill milliseconds, 2.7B-class.
    pub large_warm_ms: f64,
}

impl PrefixCachePoint {
    /// Warm-over-cold prefill speedup for the 350M-class model.
    pub fn small_speedup(&self) -> f64 {
        self.small_cold_ms / self.small_warm_ms.max(1e-9)
    }

    /// Warm-over-cold prefill speedup for the 2.7B-class model.
    pub fn large_speedup(&self) -> f64 {
        self.large_cold_ms / self.large_warm_ms.max(1e-9)
    }
}

/// The repeated-context workload behind the radix prefix cache: many
/// requests share a long context (playbook so far) and differ only in a
/// short task suffix. For each shared fraction, measures a cold full-window
/// prefill against a warm one that splices the cached prefix and computes
/// only the suffix.
pub fn run_prefix_cache(profile: &Profile, shares: &[f64]) -> Vec<PrefixCachePoint> {
    let ctx = profile.ctx(1024);
    let vocab = profile.vocab_size;
    let mut rng = Prng::seed_from_u64(profile.seed);
    let small = TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng);
    let large = TransformerLm::new(ModelConfig::size_2_7b(vocab, ctx), &mut rng);
    shares
        .iter()
        .map(|&share| {
            // Keep at least one suffix token: the final position's logits
            // are never served from cache.
            let shared = ((ctx as f64 * share) as usize).min(ctx - 1);
            let (small_cold_ms, small_warm_ms) = measure_prefix_prefill(&small, shared);
            let (large_cold_ms, large_warm_ms) = measure_prefix_prefill(&large, shared);
            PrefixCachePoint {
                shared,
                total: ctx,
                small_cold_ms,
                small_warm_ms,
                large_cold_ms,
                large_warm_ms,
            }
        })
        .collect()
}

/// `(cold_ms, warm_ms)` full-window prefill where warm runs hit a radix
/// cache seeded by a sibling prompt sharing exactly `shared` tokens.
fn measure_prefix_prefill(model: &TransformerLm, shared: usize) -> (f64, f64) {
    use wisdom_model::PrefixKvCache;
    let ctx = model.config().context_window;
    let vocab = model.config().vocab_size as u32;
    let prefix: Vec<u32> = (0..shared as u32).map(|i| (i * 31 + 3) % vocab).collect();
    // Family member `tag`: the shared prefix plus a tag-distinct suffix, so
    // each warm run below hits exactly the prefix, never a sibling's tail.
    let window = |tag: u32| -> Vec<u32> {
        let mut w = prefix.clone();
        w.extend((0..(ctx - shared) as u32).map(|j| (tag * 97 + j * 13 + 5) % vocab));
        w
    };
    let _ = model.prefill(&window(0)); // warm-up
    let mut cold = f64::INFINITY;
    for tag in 1..3 {
        let w = window(tag);
        let start = Instant::now();
        let _ = std::hint::black_box(model.prefill(&w));
        cold = cold.min(start.elapsed().as_secs_f64());
    }
    let cache = PrefixKvCache::default();
    let _ = cache.prefill(model, &window(100)); // seed the shared prefix
    let mut warm = f64::INFINITY;
    for tag in 101..103 {
        let w = window(tag);
        let start = Instant::now();
        let _ = std::hint::black_box(cache.prefill(model, &w));
        warm = warm.min(start.elapsed().as_secs_f64());
    }
    (cold * 1000.0, warm * 1000.0)
}

/// Decode throughput with and without telemetry instrumentation, plus proof
/// the instrumented run produced identical tokens.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryOverhead {
    /// Engine batch width; 4× this many sequences flow through per round.
    pub batch: usize,
    /// Greedy tokens decoded per sequence.
    pub tokens: usize,
    /// Aggregate decode tokens/second, telemetry disabled (the seed path).
    pub plain_tps: f64,
    /// Aggregate decode tokens/second with every histogram, counter, and
    /// gauge of the scheduler family live.
    pub instrumented_tps: f64,
    /// Median of per-round `instrumented_time / plain_time` ratios. Each
    /// ratio pairs two back-to-back runs, so transient machine load hits
    /// both sides of a pair and cancels — unlike best-of throughput, which
    /// a load burst during either side's best round skews by several
    /// percent.
    pub median_ratio: f64,
    /// Whether plain and instrumented runs emitted bit-identical tokens.
    pub identical_output: bool,
}

impl TelemetryOverhead {
    /// Fractional throughput cost of instrumentation; positive means the
    /// instrumented path is slower.
    pub fn overhead(&self) -> f64 {
        self.median_ratio - 1.0
    }
}

/// Measures what [`wisdom_model::BatchTelemetry`] costs the decode hot
/// loop: the same batched greedy workload through the plain and the
/// instrumented engine, run back-to-back 12 times; the overhead estimate is
/// the median per-pair time ratio so machine-load drift hits both sides of
/// a pair and cancels. The instrumented side records into a real
/// [`wisdom_telemetry::Registry`] — queue-wait/TTFT/per-token histograms,
/// occupancy gauge, admission counters — exactly what the serving stack
/// wires up.
pub fn run_telemetry_overhead(profile: &Profile, batch: usize, tokens: usize) -> TelemetryOverhead {
    use wisdom_model::{
        generate_batch, generate_batch_instrumented, BatchTelemetry, DecodeRequest,
    };
    use wisdom_telemetry::Registry;

    let ctx = profile.ctx(1024);
    let vocab = profile.vocab_size;
    let mut rng = Prng::seed_from_u64(profile.seed);
    let model = TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng);
    let vocab = vocab as u32;
    let opts = GenerationOptions {
        max_new_tokens: tokens,
        ..Default::default()
    };
    // 4 waves of sequences through a `batch`-wide engine: long enough per
    // round for the timer to resolve sub-percent deltas, and the later
    // waves exercise the mid-stream admission path telemetry hooks into.
    let sequences = batch * 4;
    let requests = || -> Vec<DecodeRequest> {
        (0..sequences)
            .map(|i| DecodeRequest {
                prompt: (0..8u32)
                    .map(|j| (i as u32 * 13 + j * 31 + 3) % vocab)
                    .collect(),
                stops: Vec::new(),
                opts,
                grammar: None,
            })
            .collect()
    };
    let registry = Registry::new();
    let telemetry = BatchTelemetry::register(&registry);

    let run_plain = || {
        let start = Instant::now();
        let out = std::hint::black_box(generate_batch(&model, requests(), batch));
        (out, start.elapsed().as_secs_f64())
    };
    let run_instrumented = || {
        let start = Instant::now();
        let out = std::hint::black_box(generate_batch_instrumented(
            &model,
            requests(),
            batch,
            None,
            telemetry.clone(),
        ));
        (out, start.elapsed().as_secs_f64())
    };
    let _ = generate_batch(&model, requests(), batch); // warm-up
    let mut plain_best = f64::INFINITY;
    let mut instrumented_best = f64::INFINITY;
    let mut ratios = Vec::new();
    let mut identical_output = true;
    for round in 0..16 {
        // Alternate which side goes first so cache warm-up and frequency
        // drift cannot systematically favor one side of the pair.
        let (plain, plain_secs, instrumented, instrumented_secs) = if round % 2 == 0 {
            let (p, ps) = run_plain();
            let (i, is) = run_instrumented();
            (p, ps, i, is)
        } else {
            let (i, is) = run_instrumented();
            let (p, ps) = run_plain();
            (p, ps, i, is)
        };
        plain_best = plain_best.min(plain_secs);
        instrumented_best = instrumented_best.min(instrumented_secs);
        ratios.push(instrumented_secs / plain_secs.max(1e-12));
        identical_output &= plain == instrumented;
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = (ratios[ratios.len() / 2] + ratios[(ratios.len() - 1) / 2]) / 2.0;
    let total = (sequences * tokens) as f64;
    TelemetryOverhead {
        batch,
        tokens,
        plain_tps: total / plain_best.max(1e-9),
        instrumented_tps: total / instrumented_best.max(1e-9),
        median_ratio,
        identical_output,
    }
}

/// Speculative greedy decode at one draft length, for both size classes.
#[derive(Debug, Clone, Copy)]
pub struct SpeculativePoint {
    /// Maximum draft tokens per verify pass (`0` = plain greedy baseline).
    pub k: usize,
    /// Decode tokens/second, 350M-class model.
    pub small_tps: f64,
    /// Mean accepted draft tokens per verify pass, 350M-class.
    pub small_accepted: f64,
    /// Decode tokens/second, 2.7B-class model.
    pub large_tps: f64,
    /// Mean accepted draft tokens per verify pass, 2.7B-class.
    pub large_accepted: f64,
}

/// The speculative-decoding curve: single-stream greedy tokens/second and
/// accepted-draft-tokens-per-verify as the draft length `k` grows, for the
/// 350M- and 2.7B-class architectures. `k = 0` is the plain sequential
/// greedy loop every verify pass is judged against. The n-gram drafter is
/// warmed on the model's own greedy stream — the serving-time analogue of
/// warming on previously served playbooks, which is exactly the formulaic
/// regime the paper's Ansible YAML lives in.
pub fn run_speculative(profile: &Profile, tokens: usize, ks: &[usize]) -> Vec<SpeculativePoint> {
    let ctx = profile.ctx(1024);
    let vocab = profile.vocab_size;
    let mut rng = Prng::seed_from_u64(profile.seed);
    let small = TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng);
    let large = TransformerLm::new(ModelConfig::size_2_7b(vocab, ctx), &mut rng);
    ks.iter()
        .map(|&k| {
            let (small_tps, small_accepted) = measure_speculative(&small, tokens, k);
            let (large_tps, large_accepted) = measure_speculative(&large, tokens, k);
            SpeculativePoint {
                k,
                small_tps,
                small_accepted,
                large_tps,
                large_accepted,
            }
        })
        .collect()
}

/// `(tokens/second, accepted per verify)` decoding `tokens` greedy tokens
/// with an order-4 n-gram drafter warmed on the model's own greedy stream.
/// `k == 0` times the plain sequential loop instead.
fn measure_speculative(model: &TransformerLm, tokens: usize, k: usize) -> (f64, f64) {
    use wisdom_model::{NgramSpeculator, SpeculativeConfig, SpeculativeDecoder};
    let vocab = model.config().vocab_size as u32;
    let prompt: Vec<u32> = (0..8u32).map(|j| (j * 31 + 3) % vocab).collect();
    let opts = GenerationOptions {
        max_new_tokens: tokens,
        ..Default::default()
    };
    // No stop tokens: every run decodes the full budget, and this reference
    // doubles as the warm-up pass.
    let reference = model.generate(&prompt, &[], &opts);
    if k == 0 {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let start = Instant::now();
            let out = std::hint::black_box(model.generate(&prompt, &[], &opts));
            best = best.min(start.elapsed().as_secs_f64());
            debug_assert_eq!(out, reference);
        }
        return (reference.len() as f64 / best.max(1e-9), 0.0);
    }
    let mut warm_stream = prompt.clone();
    warm_stream.extend_from_slice(&reference);
    let mut warmed = NgramSpeculator::new(4, model.config().vocab_size, true);
    warmed.warm(&warm_stream);
    let dec = SpeculativeDecoder::new(model, SpeculativeConfig::ngram(k));
    let mut drafter = warmed.clone(); // warm-up, discarding online updates
    let _ = dec.generate_with(&prompt, &[], &opts, &mut drafter);
    let mut best = f64::INFINITY;
    let mut accepted = 0.0;
    for _ in 0..2 {
        // A fresh drafter per run: online adaptation stays within one run,
        // like one sequence through the batched engine.
        let mut drafter = warmed.clone();
        let start = Instant::now();
        let (out, report) =
            std::hint::black_box(dec.generate_with(&prompt, &[], &opts, &mut drafter));
        best = best.min(start.elapsed().as_secs_f64());
        debug_assert_eq!(out, reference);
        accepted = report.accepted_per_verify();
    }
    (reference.len() as f64 / best.max(1e-9), accepted)
}

/// f32 vs int8 single-stream decode speed for one size class.
#[derive(Debug, Clone)]
pub struct QuantSpeed {
    /// Size-class label ("350M", "2.7B").
    pub label: String,
    /// Decode tokens/second with f32 weights.
    pub f32_tps: f64,
    /// Decode tokens/second with int8-packed weights.
    pub int8_tps: f64,
    /// f32 bytes of the quantized weight set (attention + MLP projections
    /// and the lm_head; embeddings stay f32 in both variants).
    pub f32_weight_bytes: usize,
    /// Packed bytes of the same set: int8 values plus per-block
    /// scale/offset tables.
    pub int8_weight_bytes: usize,
}

impl QuantSpeed {
    /// Decode speedup of int8 over f32.
    pub fn speedup(&self) -> f64 {
        self.int8_tps / self.f32_tps.max(1e-9)
    }

    /// Weight-storage compression ratio (f32 bytes over packed bytes).
    pub fn compression(&self) -> f64 {
        self.f32_weight_bytes as f64 / self.int8_weight_bytes.max(1) as f64
    }
}

/// The quantization experiment: per-size-class decode speed plus the
/// quality cost of int8 weights on the Table 5 harness.
#[derive(Debug, Clone)]
pub struct QuantResult {
    /// Decode speed rows (350M-class, 2.7B-class).
    pub speed: Vec<QuantSpeed>,
    /// Table 5 overall metrics for the f32 reference model.
    pub f32_metrics: MetricsSummary,
    /// The same model and harness with int8-packed weights.
    pub int8_metrics: MetricsSummary,
}

impl QuantResult {
    /// BLEU change from quantization (int8 minus f32).
    pub fn bleu_delta(&self) -> f64 {
        self.int8_metrics.bleu - self.f32_metrics.bleu
    }

    /// Ansible Aware change from quantization.
    pub fn aware_delta(&self) -> f64 {
        self.int8_metrics.ansible_aware - self.f32_metrics.ansible_aware
    }

    /// Schema Correct change from quantization.
    pub fn schema_delta(&self) -> f64 {
        self.int8_metrics.schema_correct - self.f32_metrics.schema_correct
    }

    /// Exact Match change from quantization.
    pub fn exact_delta(&self) -> f64 {
        self.int8_metrics.exact_match - self.f32_metrics.exact_match
    }
}

/// Measures single-stream greedy-path decode tokens/second for the 350M-
/// and 2.7B-class architectures with f32 vs int8-packed weights, plus the
/// weight-storage footprint of each.
pub fn run_quant_speed(profile: &Profile, tokens: usize) -> Vec<QuantSpeed> {
    let ctx = profile.ctx(1024);
    let vocab = profile.vocab_size;
    let mut rng = Prng::seed_from_u64(profile.seed);
    let classes: [(&str, ModelConfig); 2] = [
        ("350M", ModelConfig::size_350m(vocab, ctx)),
        ("2.7B", ModelConfig::size_2_7b(vocab, ctx)),
    ];
    classes
        .iter()
        .map(|(label, cfg)| {
            let model = TransformerLm::new(*cfg, &mut rng);
            let quantized = model.clone().with_precision(Precision::Int8);
            let int8_weight_bytes = quantized.quant_weight_bytes();
            let f32_weight_bytes = int8_weight_bytes + quantized.quant_weight_bytes_saved();
            QuantSpeed {
                label: (*label).to_string(),
                f32_tps: measure_tps(&model, tokens),
                int8_tps: measure_tps(&quantized, tokens),
                f32_weight_bytes,
                int8_weight_bytes,
            }
        })
        .collect()
}

/// The full quantization experiment: [`run_quant_speed`] plus the quality
/// side — the paper's reference fine-tuned model (CodeGen-Multi 350M,
/// ctx 1024) evaluated on the Table 5 harness at f32 and again with its
/// weights int8-packed, so the BLEU / Ansible Aware / Schema Correct deltas
/// quantify what per-block int8 costs in output quality.
pub fn run_quant(zoo: &mut Zoo, tokens: usize, mut progress: Progress<'_>) -> QuantResult {
    phase(&mut progress, "decode throughput f32 vs int8");
    let speed = run_quant_speed(&zoo.profile, tokens);

    let base = *spec("CodeGen-Multi", SizeClass::S350m).expect("base exists");
    phase(&mut progress, "finetune CodeGen-Multi ctx1024");
    let model = zoo.finetuned(&base, 1024, PromptStyle::NameCompletion, 1.0, None);
    let per_type_cap = (zoo.profile.eval_max_samples / 3).max(8);
    let settings = EvalSettings {
        cap: SampleCap::PerType(per_type_cap),
        ..EvalSettings::for_profile(&zoo.profile)
    };
    let test: Vec<Sample> = zoo.split.test.clone();
    let refs: Vec<&Sample> = test.iter().collect();

    phase(&mut progress, "evaluate f32 reference");
    let f32_gen = LmTextGenerator::new(
        "CodeGen-Multi [f32]",
        model.clone(),
        Arc::clone(&zoo.tokenizer),
    );
    let f32_metrics = evaluate(&f32_gen, &refs, &settings).overall;

    phase(&mut progress, "evaluate int8-packed model");
    let int8_gen = LmTextGenerator::new(
        "CodeGen-Multi [int8]",
        model.with_precision(Precision::Int8),
        Arc::clone(&zoo.tokenizer),
    );
    let int8_metrics = evaluate(&int8_gen, &refs, &settings).overall;

    QuantResult {
        speed,
        f32_metrics,
        int8_metrics,
    }
}

/// One generation type scored with and without the grammar constraint.
#[derive(Debug, Clone)]
pub struct GrammarTypeRow {
    /// "ALL" or the generation-type label.
    pub label: String,
    /// Number of test samples of this type (before capping).
    pub count: usize,
    /// Metrics for plain (unconstrained) greedy decode.
    pub unconstrained: MetricsSummary,
    /// The same model and harness decoding under the Ansible automaton.
    pub constrained: MetricsSummary,
}

impl GrammarTypeRow {
    /// Schema Correct change from constraining (constrained minus plain).
    pub fn schema_delta(&self) -> f64 {
        self.constrained.schema_correct - self.unconstrained.schema_correct
    }

    /// Ansible Aware change from constraining.
    pub fn aware_delta(&self) -> f64 {
        self.constrained.ansible_aware - self.unconstrained.ansible_aware
    }

    /// BLEU change from constraining.
    pub fn bleu_delta(&self) -> f64 {
        self.constrained.bleu - self.unconstrained.bleu
    }
}

/// The grammar-constrained decoding experiment: Table 5 per-type metrics
/// with and without the automaton, plus the correctness audit over the
/// constrained completions themselves.
#[derive(Debug, Clone)]
pub struct GrammarResult {
    /// The constraint the comparison decodes under (`"ansible"`).
    pub constraint: String,
    /// Per-type rows, `"ALL"` first (the Table 5 shape, doubled).
    pub rows: Vec<GrammarTypeRow>,
    /// Constrained completions audited in the verification pass.
    pub completions: usize,
    /// How many of them parse with `wisdom-yaml`.
    pub parsed: usize,
    /// How many lint clean (strict Schema Correct checker).
    pub lint_clean: usize,
}

/// The grammar experiment: the paper's reference fine-tuned model
/// (CodeGen-Multi 350M, ctx 1024) evaluated on the Table 5 harness twice —
/// plain greedy decode vs the same weights decoding under the compiled
/// Ansible automaton — so the per-generation-type Schema Correct / Ansible
/// Aware deltas quantify what constraint masking buys. A final pass
/// re-generates constrained completions and checks each one parses and
/// lints clean, pinning the subsystem's correctness contract on real
/// harness prompts.
pub fn run_grammar(zoo: &mut Zoo, mut progress: Progress<'_>) -> GrammarResult {
    use wisdom_model::TextGenerator;

    let base = *spec("CodeGen-Multi", SizeClass::S350m).expect("base exists");
    phase(&mut progress, "finetune CodeGen-Multi ctx1024");
    let model = zoo.finetuned(&base, 1024, PromptStyle::NameCompletion, 1.0, None);
    let per_type_cap = (zoo.profile.eval_max_samples / 3).max(8);
    let settings = EvalSettings {
        cap: SampleCap::PerType(per_type_cap),
        ..EvalSettings::for_profile(&zoo.profile)
    };
    let test: Vec<Sample> = zoo.split.test.clone();
    let refs: Vec<&Sample> = test.iter().collect();

    phase(&mut progress, "evaluate unconstrained reference");
    let plain_gen =
        LmTextGenerator::new("CodeGen-Multi", model.clone(), Arc::clone(&zoo.tokenizer));
    let plain = evaluate(&plain_gen, &refs, &settings);

    phase(&mut progress, "evaluate ansible-constrained decode");
    let constrained_gen =
        LmTextGenerator::new("CodeGen-Multi [ansible]", model, Arc::clone(&zoo.tokenizer))
            .with_constraint(Constraint::Ansible);
    let constrained = evaluate(&constrained_gen, &refs, &settings);

    let mut rows = vec![GrammarTypeRow {
        label: "ALL".to_string(),
        count: test.len(),
        unconstrained: plain.overall,
        constrained: constrained.overall,
    }];
    for ((gt, u), (_, c)) in plain.by_type.iter().zip(&constrained.by_type) {
        rows.push(GrammarTypeRow {
            label: gt.to_string(),
            count: test.iter().filter(|s| s.gen_type == *gt).count(),
            unconstrained: *u,
            constrained: *c,
        });
    }

    // Correctness audit: regenerate a per-type slice of constrained
    // completions and check every one parses and lints clean after the
    // harness's own post-processing and document reconstruction.
    phase(&mut progress, "verify constrained completions parse + lint");
    let audit_cap = per_type_cap.min(8);
    let mut audit: Vec<&Sample> = Vec::new();
    for gt in GenType::ALL {
        audit.extend(test.iter().filter(|s| s.gen_type == gt).take(audit_cap));
    }
    let prompts: Vec<String> = audit
        .iter()
        .map(|s| s.prompt_text(settings.style))
        .collect();
    let opts = GenerationOptions {
        max_new_tokens: settings.max_new_tokens,
        strategy: Strategy::Greedy,
        seed: settings.seed,
    };
    let outs = constrained_gen.complete_batch(&prompts, &opts);
    let mut parsed = 0usize;
    let mut lint_clean = 0usize;
    for (sample, raw) in audit.iter().zip(&outs) {
        let doc = sample.scoring_document(&crate::runner::postprocess(sample, raw));
        if wisdom_yaml::parse(&doc).is_ok() {
            parsed += 1;
        }
        if wisdom_metrics::schema_correct(&doc) {
            lint_clean += 1;
        }
    }

    GrammarResult {
        constraint: Constraint::Ansible.to_string(),
        rows,
        completions: audit.len(),
        parsed,
        lint_clean,
    }
}

/// One arm of the multi-replica serving replay: a replica count and a
/// routing policy, measured over the same multi-tenant editor workload.
#[derive(Debug, Clone)]
pub struct ServingArm {
    /// Display label, e.g. `"2x prefix-affinity"`.
    pub label: String,
    /// Replica count behind the router.
    pub replicas: usize,
    /// Routing policy label (`"prefix-affinity"` / `"round-robin"`).
    pub policy: String,
    /// Aggregate generated tokens per wall-clock second across all
    /// sessions (prefill queueing included — this is end-to-end).
    pub aggregate_tps: f64,
    /// Median time-to-first-token over every request, ms (client-side:
    /// submit to first streamed token).
    pub ttft_p50_ms: f64,
    /// p99 time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Median TTFT over warm requests only (resend 2+ of a session, when
    /// its prefix could be cached), ms.
    pub warm_ttft_p50_ms: f64,
    /// Median inter-token gap within streams, ms.
    pub token_p50_ms: f64,
    /// Requests completed (sessions × resends).
    pub requests: usize,
    /// Submissions that bounced with `QueueFull` before eventually being
    /// admitted (the replay retries; a server would shed with 503).
    pub shed_retries: u64,
    /// Prefix-cache lookup hit rate over the whole arm, 0..=1.
    pub cache_hit_rate: f64,
    /// Prompt tokens served from cache instead of recomputed.
    pub cache_hit_tokens: u64,
}

/// The multi-replica serving replay: workload shape plus one
/// [`ServingArm`] per (replica count, policy) configuration.
#[derive(Debug, Clone)]
pub struct ServingResult {
    /// Concurrent editor sessions.
    pub sessions: usize,
    /// Requests per session (the first is cold, the rest resend a grown
    /// prompt sharing the session prefix).
    pub resends: usize,
    /// Tokens in each session's shared prefix.
    pub prefix_tokens: usize,
    /// Tokens appended to the prompt per resend.
    pub growth_tokens: usize,
    /// Generation budget per request.
    pub max_new: usize,
    /// Per-replica prefix-cache byte budget. Sized *below* the aggregate
    /// working set so one replica LRU-thrashes while two affinity-routed
    /// replicas each hold their half warm — on one core the scale-out win
    /// comes from cache capacity, not parallelism.
    pub replica_budget_bytes: usize,
    /// Arms in order: 1× affinity, 2× affinity, 2× round-robin.
    pub arms: Vec<ServingArm>,
}

impl ServingResult {
    /// Aggregate-throughput ratio of 2 affinity replicas over 1.
    pub fn scaleout(&self) -> f64 {
        self.arms[1].aggregate_tps / self.arms[0].aggregate_tps.max(1e-9)
    }

    /// Warm-TTFT-p50 ratio of round-robin over prefix-affinity at 2
    /// replicas (>1 means affinity is faster).
    pub fn affinity_warm_ttft_gain(&self) -> f64 {
        self.arms[2].warm_ttft_p50_ms / self.arms[1].warm_ttft_p50_ms.max(1e-9)
    }
}

/// Deterministic token stream for one simulated session: distinct across
/// sessions (so their KV windows share nothing) and stable across arms
/// (so every arm replays the identical workload).
fn session_token(session: usize, pos: usize, vocab: usize) -> u32 {
    ((session * 131 + pos * 31 + 7) % vocab) as u32
}

/// Nearest-rank percentile of an unsorted sample, in place.
fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx] * 1e3
}

/// Replays the editor workload against one router configuration.
#[allow(clippy::too_many_arguments)]
fn run_serving_arm(
    model: &Arc<TransformerLm>,
    replicas: usize,
    policy: RoutePolicy,
    budget_bytes: usize,
    sessions: usize,
    resends: usize,
    prefix_tokens: usize,
    growth_tokens: usize,
    max_new: usize,
    vocab: usize,
) -> ServingArm {
    let cfg = BatchConfig {
        max_batch_size: 4,
        queue_depth: 2 * sessions.max(1),
        prefix_cache_bytes: budget_bytes,
        ..BatchConfig::default()
    };
    let pool = Arc::new(ReplicaPool::spawn(Arc::clone(model), cfg, replicas));
    let router = Router::new(
        Arc::clone(&pool),
        RouterConfig {
            policy,
            ..RouterConfig::default()
        },
        None,
    );

    // (resend index, ttft secs) per request; inter-token gaps; tokens; shed.
    type SessionLog = (Vec<(usize, f64)>, Vec<f64>, usize, u64);
    let started = Instant::now();
    let logs: Vec<SessionLog> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let router = &router;
                scope.spawn(move || {
                    let mut ttfts = Vec::new();
                    let mut gaps = Vec::new();
                    let mut tokens = 0usize;
                    let mut shed = 0u64;
                    for r in 0..resends {
                        // The editor resends its buffer with a few more
                        // lines typed since last time.
                        let len = prefix_tokens + r * growth_tokens;
                        let prompt: Vec<u32> =
                            (0..len).map(|i| session_token(s, i, vocab)).collect();
                        let req = DecodeRequest {
                            prompt,
                            stops: Vec::new(),
                            opts: GenerationOptions {
                                max_new_tokens: max_new,
                                strategy: Strategy::Greedy,
                                seed: 0,
                            },
                            grammar: None,
                        };
                        let submitted = Instant::now();
                        let stream = loop {
                            match router.submit_streaming(req.clone()) {
                                Ok(stream) => break Some(stream),
                                Err(wisdom_model::SubmitError::QueueFull) => {
                                    shed += 1;
                                    std::thread::sleep(Duration::from_micros(500));
                                }
                                Err(wisdom_model::SubmitError::ShutDown) => break None,
                            }
                        };
                        let Some(stream) = stream else { break };
                        let mut last: Option<Instant> = None;
                        for _token in stream.tokens.iter() {
                            let now = Instant::now();
                            match last {
                                None => ttfts.push((r, (now - submitted).as_secs_f64())),
                                Some(prev) => gaps.push((now - prev).as_secs_f64()),
                            }
                            last = Some(now);
                        }
                        tokens += stream.result.wait().len();
                        // Think time: long enough to interleave sessions,
                        // short enough to keep the replay tight.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    (ttfts, gaps, tokens, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let stats = pool.aggregate();
    pool.shutdown();

    let mut all_ttfts: Vec<f64> = Vec::new();
    let mut warm_ttfts: Vec<f64> = Vec::new();
    let mut all_gaps: Vec<f64> = Vec::new();
    let (mut tokens, mut shed, mut requests) = (0usize, 0u64, 0usize);
    for (ttfts, gaps, t, s) in logs {
        requests += ttfts.len();
        for (resend, secs) in ttfts {
            all_ttfts.push(secs);
            if resend > 0 {
                warm_ttfts.push(secs);
            }
        }
        all_gaps.extend(gaps);
        tokens += t;
        shed += s;
    }
    let (hit_rate, hit_tokens) = stats
        .prefix_cache
        .map(|c| {
            let lookups = (c.hits + c.misses).max(1);
            (c.hits as f64 / lookups as f64, c.hit_tokens)
        })
        .unwrap_or((0.0, 0));
    let policy_label = match policy {
        RoutePolicy::RoundRobin => "round-robin",
        RoutePolicy::Rendezvous => "rendezvous",
        RoutePolicy::PrefixAffinity => "prefix-affinity",
    };
    ServingArm {
        label: format!("{replicas}x {policy_label}"),
        replicas,
        policy: policy_label.to_string(),
        aggregate_tps: tokens as f64 / wall.max(1e-9),
        ttft_p50_ms: percentile_ms(&mut all_ttfts, 0.50),
        ttft_p99_ms: percentile_ms(&mut all_ttfts, 0.99),
        warm_ttft_p50_ms: percentile_ms(&mut warm_ttfts, 0.50),
        token_p50_ms: percentile_ms(&mut all_gaps, 0.50),
        requests,
        shed_retries: shed,
        cache_hit_rate: hit_rate,
        cache_hit_tokens: hit_tokens,
    }
}

/// The multi-replica serving replay (2.7B-class config, streamed greedy
/// decodes): `sessions` simulated editors each resend a growing prompt
/// `resends` times over a shared session prefix, with think time between
/// resends, through a [`Router`] fronting an in-process [`ReplicaPool`].
///
/// The per-replica prefix-cache budget is sized at ~60% of the workload's
/// aggregate KV working set. One replica therefore LRU-thrashes (every
/// session's resend evicts another's prefix before it returns), while two
/// prefix-affinity replicas partition sessions so each half fits warm.
/// Round-robin at two replicas duplicates the full working set on *both*
/// caches and thrashes them both — which is exactly the effect the
/// cache-aware router exists to avoid. On a single-core host this cache
/// capacity, not CPU parallelism, is what replica scale-out buys.
pub fn run_serving(profile: &Profile, sessions: usize, resends: usize) -> ServingResult {
    let ctx = profile.ctx(1024);
    let vocab = profile.vocab_size;
    // 75% of the window is the session prefix; each resend types a little
    // more; the generation budget keeps the grown prompt inside ctx.
    let prefix_tokens = ctx * 3 / 4;
    let growth_tokens = (ctx / 64).max(1);
    let max_new = (ctx / 16).max(4);

    let mcfg = ModelConfig::size_2_7b(vocab, ctx);
    let model = Arc::new(TransformerLm::new(
        mcfg,
        &mut Prng::seed_from_u64(profile.seed),
    ));
    // KV bytes per cached token (K + V per layer, f32) plus the token id.
    let bytes_per_token = mcfg.n_layers * 2 * mcfg.d_model * 4 + 4;
    let session_tokens = prefix_tokens + (resends.saturating_sub(1)) * growth_tokens + max_new;
    let working_set = sessions * session_tokens * bytes_per_token;
    // 60% of the aggregate working set: far below what one replica (or
    // either round-robin replica, which sees every session) needs, and
    // comfortably above the ~50% each affinity-routed replica holds (the
    // deterministic rendezvous split of these session streams is 4/4).
    let budget_bytes = working_set * 3 / 5;

    let arms = vec![
        run_serving_arm(
            &model,
            1,
            RoutePolicy::PrefixAffinity,
            budget_bytes,
            sessions,
            resends,
            prefix_tokens,
            growth_tokens,
            max_new,
            vocab,
        ),
        run_serving_arm(
            &model,
            2,
            RoutePolicy::PrefixAffinity,
            budget_bytes,
            sessions,
            resends,
            prefix_tokens,
            growth_tokens,
            max_new,
            vocab,
        ),
        run_serving_arm(
            &model,
            2,
            RoutePolicy::RoundRobin,
            budget_bytes,
            sessions,
            resends,
            prefix_tokens,
            growth_tokens,
            max_new,
            vocab,
        ),
    ];
    ServingResult {
        sessions,
        resends,
        prefix_tokens,
        growth_tokens,
        max_new,
        replica_budget_bytes: budget_bytes,
        arms,
    }
}

/// One worker-count arm of the curation throughput sweep.
#[derive(Debug, Clone)]
pub struct CurationScalePoint {
    /// Worker threads in the parse/score stage.
    pub workers: usize,
    /// End-to-end curated documents per second.
    pub docs_per_sec: f64,
    /// End-to-end ingested bytes per second.
    pub bytes_per_sec: f64,
    /// Whether shard bytes and manifest match the 1-worker baseline.
    pub identical: bool,
}

/// The curation experiment: pipeline throughput and selectivity, plus the
/// drafter-warming arm.
#[derive(Debug, Clone)]
pub struct CurationResult {
    /// Documents fed to the pipeline.
    pub ingested: usize,
    /// Bytes fed to the pipeline.
    pub ingested_bytes: usize,
    /// Documents surviving every stage.
    pub kept: usize,
    /// Parse failures dropped.
    pub parse_failed: usize,
    /// Quality-threshold rejections.
    pub quality_rejected: usize,
    /// Exact duplicates dropped (content-confirmed).
    pub exact_dups: usize,
    /// MinHash near-duplicates dropped.
    pub near_dups: usize,
    /// Exact-dup fraction of ingested docs.
    pub exact_dup_rate: f64,
    /// Near-dup fraction of ingested docs.
    pub near_dup_rate: f64,
    /// Quality histogram over kept docs, 10 bins across `[0, 1]`.
    pub quality_hist: [usize; 10],
    /// Sealed shard count.
    pub shards: usize,
    /// Total shard bytes.
    pub shard_bytes: usize,
    /// Per-worker-count throughput, 1-worker first.
    pub scale: Vec<CurationScalePoint>,
    /// Near-duplicate mutants injected for the recall probe.
    pub injected: usize,
    /// Injected mutants the near-dedup stage caught.
    pub injected_caught: usize,
    /// Greedy tokens/second with the shard-warmed order-4 n-gram drafter.
    pub warm_tps: f64,
    /// Accepted draft tokens per verify pass, warmed drafter.
    pub warm_accepted: f64,
    /// Tokens/second with a cold (online-only) drafter.
    pub cold_tps: f64,
    /// Accepted per verify, cold drafter.
    pub cold_accepted: f64,
    /// Plain sequential greedy tokens/second (no speculation).
    pub baseline_tps: f64,
}

impl CurationResult {
    /// Injected near-duplicate recall in `[0, 1]`.
    pub fn recall(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.injected_caught as f64 / self.injected as f64
    }

    /// Warm-over-cold drafter speedup.
    pub fn warm_speedup(&self) -> f64 {
        self.warm_tps / self.cold_tps.max(1e-9)
    }
}

/// The curation experiment. Three arms:
///
/// 1. **Throughput sweep** — the full corpus through the streaming pipeline
///    once per worker count, recording docs/sec and bytes/sec and checking
///    shard bytes + manifest stay byte-identical to the 1-worker baseline
///    (the determinism contract under real load).
/// 2. **Recall probe** — parse-safe mutants of kept documents (true shingle
///    Jaccard ≥ 0.8) re-injected; the near-dedup stage must catch them.
/// 3. **Drafter warming** — the paper's reference fine-tune (CodeGen-Multi
///    350M, ctx 1024) decodes test prompts through the speculative engine
///    with an order-4 n-gram drafter warmed on the curated shards vs a cold
///    online-only drafter vs the plain greedy loop. The fine-tuned model's
///    outputs live in the same formulaic YAML register as the curated
///    corpus, so shard warming buys acceptance before the first token.
pub fn run_curation(
    zoo: &mut Zoo,
    worker_counts: &[usize],
    mut progress: Progress<'_>,
) -> CurationResult {
    use wisdom_curation::{
        corpus_docs, curate, jaccard, shingle_set, CurationConfig, DocKind, InputDoc,
    };
    use wisdom_model::{NgramSpeculator, SpeculativeConfig, SpeculativeDecoder};

    let docs = corpus_docs(&zoo.corpus);
    let base_config = CurationConfig {
        seed: zoo.profile.seed,
        ..CurationConfig::default()
    };

    // Arm 1: throughput sweep with determinism cross-check.
    phase(&mut progress, "curation throughput sweep");
    let reference = curate(
        docs.clone(),
        &CurationConfig {
            workers: 1,
            ..base_config.clone()
        },
    );
    let fingerprint = |r: &wisdom_curation::CurationReport| {
        (
            r.shards
                .iter()
                .map(|s| (s.checksum, s.bytes.len()))
                .collect::<Vec<_>>(),
            r.manifest_json(),
        )
    };
    let reference_fp = fingerprint(&reference);
    let mut scale = Vec::new();
    for &workers in worker_counts {
        let config = CurationConfig {
            workers,
            keep_texts: false,
            ..base_config.clone()
        };
        // Warm-up pass, then best-of-2 timing.
        let mut best = f64::INFINITY;
        let mut last = curate(docs.clone(), &config);
        for _ in 0..2 {
            let start = Instant::now();
            last = std::hint::black_box(curate(docs.clone(), &config));
            best = best.min(start.elapsed().as_secs_f64());
        }
        scale.push(CurationScalePoint {
            workers,
            docs_per_sec: last.ingested as f64 / best.max(1e-9),
            bytes_per_sec: last.ingested_bytes as f64 / best.max(1e-9),
            identical: fingerprint(&last) == reference_fp,
        });
    }

    // Arm 2: injected near-duplicate recall on real kept documents.
    phase(&mut progress, "near-dup recall probe");
    let mut rng = Prng::seed_from_u64(zoo.profile.seed ^ 0xcafe);
    let mut probe_docs = docs.clone();
    let mut injected = 0usize;
    for (i, (_, text)) in reference.kept_docs.iter().enumerate() {
        let base_set = shingle_set(text, base_config.shingle_k);
        if base_set.len() < 40 {
            continue;
        }
        let mut mutant = text.replace("state: present", "state: latest");
        mutant.push_str(&format!("# replica {i} tag {}\n", rng.range_usize(10, 99)));
        if jaccard(&base_set, &shingle_set(&mutant, base_config.shingle_k)) < 0.8 {
            continue;
        }
        probe_docs.push(InputDoc {
            source: "injected".to_string(),
            kind: DocKind::Ansible,
            text: mutant,
        });
        injected += 1;
        if injected == 32 {
            break;
        }
    }
    let probe = curate(probe_docs, &base_config);
    let injected_caught = probe
        .per_source
        .iter()
        .find(|(s, _)| s == "injected")
        .map(|(_, c)| c.ingested - c.kept)
        .unwrap_or(0);

    // Arm 3: drafter warming from curated shards.
    let base = *spec("CodeGen-Multi", SizeClass::S350m).expect("base exists");
    phase(&mut progress, "finetune CodeGen-Multi ctx1024");
    let model = zoo.finetuned(&base, 1024, PromptStyle::NameCompletion, 1.0, None);

    phase(&mut progress, "warm drafter from curated shards");
    let mut warmed = NgramSpeculator::new(4, model.config().vocab_size, true);
    for (_, text) in reference
        .kept_docs
        .iter()
        .take(zoo.profile.eval_max_samples.max(16))
    {
        warmed.warm(&zoo.tokenizer.encode(text));
    }

    phase(&mut progress, "decode test prompts warm vs cold");
    let opts = GenerationOptions {
        max_new_tokens: zoo.profile.max_new_tokens,
        strategy: Strategy::Greedy,
        seed: zoo.profile.seed,
    };
    let prompts: Vec<Vec<u32>> = zoo
        .split
        .test
        .iter()
        .take(4)
        .map(|s| {
            zoo.tokenizer
                .encode(&s.prompt_text(PromptStyle::NameCompletion))
        })
        .collect();
    let dec = SpeculativeDecoder::new(&model, SpeculativeConfig::ngram(8));
    let stops = [zoo.tokenizer.eot()];
    let arm = |drafter_of: &dyn Fn() -> NgramSpeculator| {
        // One warm-up prompt, then best-of-2 over the prompt set.
        let mut d = drafter_of();
        let _ = dec.generate_with(&prompts[0], &stops, &opts, &mut d);
        let mut best = f64::INFINITY;
        let mut toks = 0usize;
        let mut accepted = 0.0;
        for _ in 0..2 {
            let start = Instant::now();
            let mut run_toks = 0usize;
            let mut acc_sum = 0.0;
            for p in &prompts {
                let mut d = drafter_of();
                let (out, report) =
                    std::hint::black_box(dec.generate_with(p, &stops, &opts, &mut d));
                run_toks += out.len();
                acc_sum += report.accepted_per_verify();
            }
            let dt = start.elapsed().as_secs_f64();
            if dt < best {
                best = dt;
                toks = run_toks;
                accepted = acc_sum / prompts.len() as f64;
            }
        }
        (toks as f64 / best.max(1e-9), accepted)
    };
    let (warm_tps, warm_accepted) = arm(&|| warmed.clone());
    let (cold_tps, cold_accepted) =
        arm(&|| NgramSpeculator::new(4, model.config().vocab_size, true));

    // Plain sequential greedy reference.
    let mut best = f64::INFINITY;
    let mut toks = 0usize;
    for _ in 0..2 {
        let start = Instant::now();
        let mut run_toks = 0usize;
        for p in &prompts {
            run_toks += std::hint::black_box(model.generate(p, &stops, &opts)).len();
        }
        let dt = start.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
            toks = run_toks;
        }
    }
    let baseline_tps = toks as f64 / best.max(1e-9);

    CurationResult {
        ingested: reference.ingested,
        ingested_bytes: reference.ingested_bytes,
        kept: reference.kept,
        parse_failed: reference.parse_failed,
        quality_rejected: reference.quality_rejected,
        exact_dups: reference.exact_dups,
        near_dups: reference.near_dups,
        exact_dup_rate: reference.exact_dup_rate(),
        near_dup_rate: reference.near_dup_rate(),
        quality_hist: reference.quality_hist,
        shards: reference.shards.len(),
        shard_bytes: reference.shards.iter().map(|s| s.bytes.len()).sum(),
        scale,
        injected,
        injected_caught,
        warm_tps,
        warm_accepted,
        cold_tps,
        cold_accepted,
        baseline_tps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_small_beats_large() {
        let r = run_throughput(&Profile::test(), 24);
        assert!(r.small_tps > 0.0 && r.large_tps > 0.0);
        assert!(
            r.speedup() > 1.2,
            "350M-class should decode faster: {:.1} vs {:.1} tok/s",
            r.small_tps,
            r.large_tps
        );
        assert!(r.small_prefill_tps > 0.0 && r.large_prefill_tps > 0.0);
        assert!(
            r.prefill_speedup() > 1.2,
            "batched prefill should beat the step loop: {:.1} vs {:.1} tok/s",
            r.large_prefill_tps,
            r.large_prefill_seq_tps
        );
    }

    #[test]
    fn prefix_cache_warm_prefill_beats_cold() {
        let points = run_prefix_cache(&Profile::test(), &[0.75]);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.shared > 0 && p.shared < p.total);
        assert!(p.small_cold_ms > 0.0 && p.large_warm_ms > 0.0);
        // Conservative bound for a loaded CI box; the release-build numbers
        // recorded in EXPERIMENTS.md clear 2x at 75% shared prefix.
        assert!(
            p.large_speedup() > 1.2,
            "warm prefill should beat cold at 75% shared prefix: {:.2}ms vs {:.2}ms",
            p.large_warm_ms,
            p.large_cold_ms
        );
    }

    #[test]
    fn telemetry_overhead_is_small_and_output_identical() {
        let r = run_telemetry_overhead(&Profile::test(), 4, 12);
        assert!(r.plain_tps > 0.0 && r.instrumented_tps > 0.0);
        assert!(
            r.identical_output,
            "telemetry must never change the decoded tokens"
        );
        // Very loose bound for a loaded debug-build CI box; the release-run
        // numbers recorded in EXPERIMENTS.md stay under 1%.
        assert!(
            r.overhead() < 0.5,
            "instrumentation cost out of range: plain {:.1} vs instrumented {:.1} tok/s",
            r.plain_tps,
            r.instrumented_tps
        );
    }

    #[test]
    fn speculative_decode_accepts_draft_runs() {
        let points = run_speculative(&Profile::test(), 24, &[0, 4]);
        assert_eq!(points.len(), 2);
        let baseline = &points[0];
        assert!(baseline.small_tps > 0.0 && baseline.large_tps > 0.0);
        assert_eq!(baseline.small_accepted, 0.0);
        let p = &points[1];
        // The drafter memorized the model's own greedy stream, so verify
        // passes should accept well over one draft token each — the
        // acceptance criterion the release-build EXPERIMENTS.md run records.
        assert!(
            p.large_accepted > 1.0,
            "2.7B-class self-warmed ngram draft should accept >1 token/verify: {p:?}"
        );
        assert!(
            p.small_accepted > 1.0,
            "350M-class self-warmed ngram draft should accept >1 token/verify: {p:?}"
        );
    }

    #[test]
    fn quant_speed_packs_weights_and_measures_decode() {
        let rows = run_quant_speed(&Profile::test(), 24);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "350M");
        assert_eq!(rows[1].label, "2.7B");
        for r in &rows {
            assert!(
                r.f32_tps > 0.0 && r.int8_tps > 0.0,
                "{}: decode must make progress at both precisions",
                r.label
            );
            assert!(
                r.compression() > 3.0,
                "{}: int8 packing should shrink weights well past 3x: {} -> {} bytes",
                r.label,
                r.f32_weight_bytes,
                r.int8_weight_bytes
            );
        }
        // The speed ordering only holds with optimizations — a debug build
        // pays the scalar dequant per element instead of vectorizing it.
        // The release-build `-- quant` run recorded in EXPERIMENTS.md
        // clears 2x on the 2.7B-class config.
        if cfg!(not(debug_assertions)) {
            assert!(
                rows[1].speedup() > 1.2,
                "2.7B-class int8 decode should beat f32: {:.1} vs {:.1} tok/s",
                rows[1].int8_tps,
                rows[1].f32_tps
            );
        }
    }

    #[test]
    fn decode_batching_scales_aggregate_throughput() {
        let points = run_decode_batching(&Profile::test(), 16, &[1, 4]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.small_tps > 0.0 && p.large_tps > 0.0 && p.large_latency_ms > 0.0);
        }
        // Conservative bound for a loaded CI box; the release-build curve
        // recorded in EXPERIMENTS.md clears 2x at batch 8.
        let scaling = points[1].large_tps / points[0].large_tps;
        assert!(
            scaling > 1.2,
            "batch 4 should beat batch 1 in aggregate: {:.1} vs {:.1} tok/s",
            points[1].large_tps,
            points[0].large_tps
        );
    }

    #[test]
    fn serving_replay_measures_all_three_arms() {
        let r = run_serving(&Profile::test(), 3, 2);
        assert_eq!(r.arms.len(), 3);
        assert_eq!(r.arms[0].replicas, 1);
        assert_eq!(r.arms[1].replicas, 2);
        assert_eq!(r.arms[2].policy, "round-robin");
        for arm in &r.arms {
            assert_eq!(arm.requests, 3 * 2, "{}: every resend completes", arm.label);
            assert!(
                arm.aggregate_tps > 0.0 && arm.ttft_p50_ms > 0.0 && arm.warm_ttft_p50_ms > 0.0,
                "{}: {arm:?}",
                arm.label
            );
            assert!(arm.ttft_p99_ms >= arm.ttft_p50_ms, "{}: {arm:?}", arm.label);
        }
        assert!(r.scaleout().is_finite() && r.scaleout() > 0.0);
        // Perf orderings (2x affinity ≥ 1.7x one replica, affinity beating
        // round-robin on warm TTFT) only hold at the quick-profile scale on
        // a release build; the `-- serving` run recorded in EXPERIMENTS.md
        // and BENCH_serving.json is the reference. Here we only check the
        // harness measures and that the workload replays identically.
        assert_eq!(r.arms[0].requests, r.arms[2].requests);
    }

    #[test]
    fn curation_experiment_runs_at_test_scale() {
        let mut zoo = Zoo::build(Profile::test());
        let r = run_curation(&mut zoo, &[1, 2], None);
        assert!(r.kept > 0 && r.kept <= r.ingested);
        assert_eq!(r.scale.len(), 2);
        for p in &r.scale {
            assert!(p.identical, "{} workers diverged from baseline", p.workers);
            assert!(p.docs_per_sec > 0.0 && p.bytes_per_sec > 0.0);
        }
        assert!(r.injected_caught <= r.injected);
        assert!(r.warm_tps > 0.0 && r.cold_tps > 0.0 && r.baseline_tps > 0.0);
        assert!(r.warm_accepted >= 0.0);
        let text = crate::tables::curation_text(&r);
        assert!(text.contains("Corpus curation"));
        assert!(text.contains("drafter warming"));
    }

    #[test]
    fn serving_percentiles_use_nearest_rank() {
        let mut s = vec![0.004, 0.001, 0.005, 0.002, 0.003];
        assert!((percentile_ms(&mut s, 0.50) - 3.0).abs() < 1e-9);
        assert!((percentile_ms(&mut s, 0.99) - 5.0).abs() < 1e-9);
        assert_eq!(percentile_ms(&mut [], 0.5), 0.0);
    }
}
