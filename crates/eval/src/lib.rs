//! The experiment harness: regenerates every table and figure of the paper.
//!
//! * [`Profile`] — scale knobs (test / quick / paper);
//! * [`Zoo`] — Table 2's model matrix with cached pre-training and
//!   fine-tuning;
//! * [`evaluate`] — the scoring runner (greedy decoding, first-task output
//!   truncation, four metrics, per-generation-type breakdown);
//! * [`run_table3`] / [`run_table4`] / [`run_table5`] /
//!   [`run_throughput`] — the experiments;
//! * [`tables`] — plain-text renderers.
//!
//! # Examples
//!
//! Few-shot-evaluate one tiny pre-trained model end to end:
//!
//! ```no_run
//! use wisdom_eval::{evaluate, EvalSettings, Profile, SizeClass, Zoo};
//!
//! let mut zoo = Zoo::build(Profile::test());
//! let spec = *wisdom_eval::spec("Wisdom-Ansible", SizeClass::S350m).expect("in Table 2");
//! let model = zoo.fewshot_generator(&spec, None);
//! let test: Vec<_> = zoo.split.test.iter().collect();
//! let result = evaluate(&model, &test, &EvalSettings::for_profile(&zoo.profile));
//! println!("{}", result.overall);
//! ```

mod experiments;
mod profile;
mod runner;
pub mod tables;
mod zoo;

pub use experiments::{
    run_curation, run_decode_batching, run_decoding_ablation, run_grammar, run_prefix_cache,
    run_quant, run_quant_speed, run_serving, run_speculative, run_table3, run_table4, run_table5,
    run_telemetry_overhead, run_throughput, BatchingPoint, CurationResult, CurationScalePoint,
    GrammarResult, GrammarTypeRow, PrefixCachePoint, Progress, QuantResult, QuantSpeed, Row,
    ServingArm, ServingResult, SpeculativePoint, TelemetryOverhead, ThroughputResult, TypeRow,
};
pub use profile::Profile;
pub use runner::{evaluate, postprocess, EvalResult, EvalSettings, Oracle, SampleCap};
pub use zoo::{spec, PoolSelection, SizeClass, Zoo, ZooModelSpec, TABLE2};
