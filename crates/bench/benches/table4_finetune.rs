//! Table 4: fine-tuned evaluation. Regenerates the table once at bench
//! scale (context-window grid, prefix ablation, data fractions), then
//! benchmarks a fine-tuning step and the prompt-encoding path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wisdom_bench::bench_profile;
use wisdom_corpus::PromptStyle;
use wisdom_eval::{run_table4, spec, tables, SizeClass, Zoo};
use wisdom_model::{finetune, FinetuneConfig, SftSample};

fn bench(c: &mut Criterion) {
    let mut zoo = Zoo::build(bench_profile());
    let rows = run_table4(&mut zoo, None);
    println!("\n{}", tables::table4_text(&rows));

    // Benchmark one full (tiny) fine-tune: the unit Table 4 repeats 12x.
    let model_spec = *spec("CodeGen-Multi", SizeClass::S350m).expect("spec");
    let base = zoo.pretrained(&model_spec, None);
    let sft: Vec<SftSample> = zoo
        .split
        .train
        .iter()
        .take(8)
        .map(|s| zoo.encode_sft(s, PromptStyle::NameCompletion))
        .collect();
    let eot = zoo.tokenizer.eot();
    let pad = zoo.tokenizer.pad();
    c.bench_function("table4/finetune_1_epoch_8_samples", |b| {
        b.iter(|| {
            let mut model = base.clone();
            let losses = finetune(
                &mut model,
                &sft,
                eot,
                pad,
                &FinetuneConfig {
                    epochs: 1,
                    batch_size: 4,
                    ..Default::default()
                },
                None,
            );
            black_box(losses)
        })
    });

    // Benchmark SFT prompt encoding (tokenizer + prompt formulation).
    let sample = zoo.split.train.first().expect("train sample").clone();
    c.bench_function("table4/encode_sft_sample", |b| {
        b.iter(|| black_box(zoo.encode_sft(&sample, PromptStyle::NameCompletion)))
    });
    c.bench_function("table4/encode_sft_sample_prefix_style", |b| {
        b.iter(|| black_box(zoo.encode_sft(&sample, PromptStyle::Prefix)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
