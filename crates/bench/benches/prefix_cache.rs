//! Radix prefix KV cache: cold full-window prefill vs warm prefill that
//! splices the cached shared prefix and computes only the suffix. The
//! acceptance bar is ≥2× warm-over-cold at a 75% shared prefix on the
//! 2.7B-class config (see EXPERIMENTS.md for recorded runs).

use std::cell::Cell;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wisdom_bench::bench_profile;
use wisdom_eval::run_prefix_cache;
use wisdom_model::{ModelConfig, PrefixKvCache, TransformerLm};
use wisdom_prng::Prng;

/// Family member `tag`: `shared` common tokens plus a tag-distinct suffix,
/// so warm lookups hit exactly the shared prefix and never a sibling tail.
fn window(model: &TransformerLm, shared: usize, tag: u32) -> Vec<u32> {
    let ctx = model.config().context_window;
    let vocab = model.config().vocab_size as u32;
    let mut w: Vec<u32> = (0..shared as u32).map(|i| (i * 31 + 3) % vocab).collect();
    w.extend((0..(ctx - shared) as u32).map(|j| (tag * 97 + j * 13 + 5) % vocab));
    w
}

fn bench(c: &mut Criterion) {
    // Regenerate the cold-vs-warm table once.
    let profile = bench_profile();
    let points = run_prefix_cache(&profile, &[0.25, 0.5, 0.75, 0.9375]);
    println!("\n{}", wisdom_eval::tables::prefix_cache_text(&points));

    let vocab = 600;
    let ctx = 96;
    let mut rng = Prng::seed_from_u64(9);
    let models = [
        (
            "350M",
            TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng),
        ),
        (
            "2.7B",
            TransformerLm::new(ModelConfig::size_2_7b(vocab, ctx), &mut rng),
        ),
    ];

    for (label, model) in &models {
        let name = format!("prefix_cache/{label}");
        let mut group = c.benchmark_group(&name);
        // The whole window counts as processed either way: elements/sec is
        // end-to-end prefill throughput, warm or cold.
        group.throughput(Throughput::Elements(ctx as u64));
        group.bench_function("cold", |b| {
            b.iter(|| black_box(model.prefill(&window(model, 72, 0))))
        });
        for shared in [24usize, 48, 72, 90] {
            let cache = PrefixKvCache::default();
            let _ = cache.prefill(model, &window(model, shared, 1_000_000));
            // A fresh suffix per iteration keeps the hit length at exactly
            // `shared`; re-using one window would let the second iteration
            // hit its own tail and measure a near-total cache hit instead.
            let tag = Cell::new(0u32);
            group.bench_with_input(BenchmarkId::new("warm", shared), &shared, |b, &shared| {
                b.iter(|| {
                    tag.set(tag.get() + 1);
                    black_box(cache.prefill(model, &window(model, shared, tag.get())))
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
