//! Table 1: dataset construction. Regenerates the per-source file counts
//! once, then benchmarks corpus building and its pieces (file generation,
//! dedup, standardization).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wisdom_bench::bench_profile;
use wisdom_corpus::{Corpus, FileCtx, SplitSamples};
use wisdom_prng::Prng;

fn regenerate_table1() {
    let corpus = Corpus::build(&bench_profile().corpus_spec());
    println!("\n{}", corpus.table1());
}

fn bench(c: &mut Criterion) {
    regenerate_table1();

    let spec = bench_profile().corpus_spec();
    c.bench_function("table1/corpus_build", |b| {
        b.iter(|| Corpus::build(black_box(&spec)))
    });

    c.bench_function("table1/galaxy_file_generate", |b| {
        let mut rng = Prng::seed_from_u64(1);
        b.iter(|| {
            let ctx = FileCtx::galaxy(&mut rng);
            let tasks = wisdom_corpus::generate_role_file(&ctx, &mut rng);
            black_box(wisdom_corpus::emit_task_file(&tasks))
        })
    });

    c.bench_function("table1/standardize_file", |b| {
        let mut rng = Prng::seed_from_u64(2);
        let ctx = FileCtx::crawled(&mut rng);
        let file =
            wisdom_corpus::emit_task_file(&wisdom_corpus::generate_role_file(&ctx, &mut rng));
        b.iter(|| wisdom_ansible::standardize(black_box(&file)))
    });

    let corpus = Corpus::build(&spec);
    c.bench_function("table1/split_and_extract_samples", |b| {
        b.iter(|| SplitSamples::build(black_box(&corpus.galaxy), 7))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
