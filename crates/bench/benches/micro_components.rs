//! Micro-benchmarks of the substrate components: YAML parse/emit, BPE
//! encode/decode, schema lint, Ansible Aware, and the autograd kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wisdom_corpus::{FileCtx, GenericKind};
use wisdom_metrics::{ansible_aware, sentence_bleu};
use wisdom_model::{ModelConfig, TransformerLm};
use wisdom_prng::Prng;
use wisdom_tensor::kernels::{matmul, matmul_acc_sparse, matmul_acc_threads, matmul_q8};
use wisdom_tensor::QuantMatrix;
use wisdom_tokenizer::BpeTokenizer;

fn bench(c: &mut Criterion) {
    let mut rng = Prng::seed_from_u64(5);
    let ctx = FileCtx::galaxy(&mut rng);
    let file = wisdom_corpus::emit_task_file(&wisdom_corpus::generate_role_file(&ctx, &mut rng));
    let k8s = wisdom_corpus::generate_generic_of(GenericKind::K8sManifest, &mut rng);

    c.bench_function("yaml/parse_role_file", |b| {
        b.iter(|| black_box(wisdom_yaml::parse(&file)))
    });
    let value = wisdom_yaml::parse(&file).expect("valid");
    c.bench_function("yaml/emit_role_file", |b| {
        b.iter(|| black_box(wisdom_yaml::emit(&value)))
    });
    c.bench_function("yaml/parse_k8s_manifest", |b| {
        b.iter(|| black_box(wisdom_yaml::parse(&k8s)))
    });

    c.bench_function("ansible/lint_role_file", |b| {
        b.iter(|| {
            black_box(wisdom_ansible::lint_str(
                &file,
                wisdom_ansible::LintTarget::Auto,
            ))
        })
    });
    c.bench_function("ansible/standardize_role_file", |b| {
        b.iter(|| black_box(wisdom_ansible::standardize(&file)))
    });

    let tok = BpeTokenizer::train([file.as_str(), k8s.as_str()], 500);
    c.bench_function("tokenizer/encode_role_file", |b| {
        b.iter(|| black_box(tok.encode(&file)))
    });
    let ids = tok.encode(&file);
    c.bench_function("tokenizer/decode_role_file", |b| {
        b.iter(|| black_box(tok.decode(&ids)))
    });

    let doc = "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n  notify: restart nginx\n";
    let pred = "- name: x\n  yum:\n    name: nginx\n    state: latest\n";
    c.bench_function("metrics/ansible_aware", |b| {
        b.iter(|| black_box(ansible_aware(doc, pred)))
    });
    c.bench_function("metrics/sentence_bleu", |b| {
        b.iter(|| black_box(sentence_bleu(doc, pred)))
    });

    let m = 128;
    let a = vec![0.5f32; m * m];
    let bm = vec![0.25f32; m * m];
    let mut out = vec![0.0f32; m * m];
    c.bench_function("tensor/matmul_128", |b| {
        b.iter(|| {
            matmul(&a, &bm, m, m, m, &mut out);
            black_box(out[0])
        })
    });
    // Blocked dense kernel vs the former zero-skipping naive kernel, on the
    // same dense operands, single-threaded so only the loop structure
    // differs.
    c.bench_function("tensor/matmul_128_blocked_1thread", |b| {
        b.iter(|| {
            out.fill(0.0);
            matmul_acc_threads(&a, &bm, m, m, m, &mut out, 1);
            black_box(out[0])
        })
    });
    c.bench_function("tensor/matmul_128_naive", |b| {
        b.iter(|| {
            out.fill(0.0);
            matmul_acc_sparse(&a, &bm, m, m, m, &mut out);
            black_box(out[0])
        })
    });

    // f32 GEBP vs the quantized int8 kernel at the three model-config
    // matrix shapes (d_model 64/112/144 = the 350M/2.7B/6B classes): a
    // 32-row activation block through the d×4d MLP projection, the widest
    // weight panel the decode loop streams per layer.
    for d in [64usize, 112, 144] {
        let (mq, k, n) = (32, d, 4 * d);
        let a: Vec<f32> = (0..mq * k)
            .map(|i| ((i * 37 + 11) % 97) as f32 * 0.01 - 0.5)
            .collect();
        let w: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 + 7) % 89) as f32 * 0.01 - 0.4)
            .collect();
        let q = QuantMatrix::quantize(&w, k, n);
        let mut qout = vec![0.0f32; mq * n];
        c.bench_function(&format!("tensor/gebp_f32_d{d}_mlp"), |b| {
            b.iter(|| {
                matmul(&a, &w, mq, k, n, &mut qout);
                black_box(qout[0])
            })
        });
        c.bench_function(&format!("tensor/gebp_int8_d{d}_mlp"), |b| {
            b.iter(|| {
                matmul_q8(&a, &q, mq, &mut qout);
                black_box(qout[0])
            })
        });
    }

    // Batched prompt prefill vs the sequential step loop on the 350M-class
    // architecture with a full-context prompt.
    let cfg = ModelConfig::size_350m(500, 64);
    let model = TransformerLm::new(cfg, &mut rng);
    let window: Vec<u32> = (0..64u32).map(|i| (i * 17 + 3) % 500).collect();
    c.bench_function("model/prefill_batched_ctx64", |b| {
        b.iter(|| black_box(model.prefill(&window)))
    });
    c.bench_function("model/prefill_step_loop_ctx64", |b| {
        b.iter(|| black_box(model.prefill_sequential(&window)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
