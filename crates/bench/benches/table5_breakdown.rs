//! Table 5: per-generation-type breakdown. Regenerates the table once, then
//! benchmarks the scoring path for each generation type (sample extraction,
//! reconstruction, all four metrics).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wisdom_bench::bench_profile;
use wisdom_corpus::{extract_samples, FileCtx, GenType};
use wisdom_eval::{run_table5, tables, Zoo};
use wisdom_metrics::score_sample;
use wisdom_prng::Prng;

fn bench(c: &mut Criterion) {
    let mut zoo = Zoo::build(bench_profile());
    let rows = run_table5(&mut zoo, None);
    println!("\n{}", tables::table5_text(&rows));

    // Per-type scoring micro-benchmarks on generated content.
    let mut rng = Prng::seed_from_u64(3);
    let ctx = FileCtx::galaxy(&mut rng);
    let task_file =
        wisdom_corpus::emit_task_file(&wisdom_corpus::generate_role_file(&ctx, &mut rng));
    let playbook = wisdom_corpus::generate_playbook(&ctx, &mut rng, 1, 2).to_yaml();
    let large_playbook = wisdom_corpus::generate_playbook(&ctx, &mut rng, 4, 6).to_yaml();

    let mut samples = extract_samples(&task_file);
    samples.extend(extract_samples(&playbook));
    samples.extend(extract_samples(&large_playbook));

    for gt in GenType::ALL {
        let Some(sample) = samples.iter().find(|s| s.gen_type == gt) else {
            continue;
        };
        let target_doc = sample.scoring_document(&sample.expected);
        let label = format!("table5/score_{}", gt).replace("->", "_to_");
        c.bench_function(&label, |b| {
            b.iter(|| {
                black_box(score_sample(
                    &sample.expected,
                    &sample.expected,
                    &target_doc,
                    &target_doc,
                ))
            })
        });
    }

    c.bench_function("table5/extract_samples_role_file", |b| {
        b.iter(|| black_box(extract_samples(&task_file)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
