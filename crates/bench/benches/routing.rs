//! Multi-replica router: per-request placement cost for each policy. The
//! prefix-affinity probe walks every replica's radix tree under its cache
//! lock, so this is the number that bounds router throughput; rendezvous
//! and round-robin are the cheap fallbacks it degrades to on cold pools.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wisdom_model::{
    BatchConfig, DecodeRequest, GenerationOptions, ModelConfig, ReplicaPool, Strategy,
    TransformerLm,
};
use wisdom_prng::Prng;
use wisdom_server::{rendezvous_pick, RoutePolicy, Router, RouterConfig};

/// Prompt `tag`: a shared 24-token head plus a tag-distinct tail, the shape
/// an editor resend takes (routing keys on the head, affinity on the tree).
fn prompt(tag: u32, len: usize, vocab: u32) -> Vec<u32> {
    (0..len as u32)
        .map(|i| {
            if i < 24 {
                (i * 31 + 3) % vocab
            } else {
                (tag * 97 + i * 13 + 5) % vocab
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let vocab = 600u32;
    let ctx = 96;
    let model = Arc::new(TransformerLm::new(
        ModelConfig::size_350m(vocab as usize, ctx),
        &mut Prng::seed_from_u64(9),
    ));
    let cfg = BatchConfig {
        max_batch_size: 4,
        queue_depth: 16,
        prefix_cache_bytes: 4 << 20,
        ..BatchConfig::default()
    };
    let pool = Arc::new(ReplicaPool::spawn(Arc::clone(&model), cfg, 4));

    // Warm every replica's radix tree so the affinity probe measures a
    // real walk, not an empty-tree early-out.
    let warmer = Router::new(Arc::clone(&pool), RouterConfig::default(), None);
    let pendings: Vec<_> = (0..8u32)
        .map(|tag| {
            warmer
                .submit(DecodeRequest {
                    prompt: prompt(tag, 64, vocab),
                    stops: Vec::new(),
                    opts: GenerationOptions {
                        max_new_tokens: 4,
                        strategy: Strategy::Greedy,
                        seed: 0,
                    },
                    grammar: None,
                })
                .expect("warmup submit")
        })
        .collect();
    for p in pendings {
        let _ = p.wait();
    }

    let policies = [
        ("prefix_affinity", RoutePolicy::PrefixAffinity),
        ("rendezvous", RoutePolicy::Rendezvous),
        ("round_robin", RoutePolicy::RoundRobin),
    ];
    let mut group = c.benchmark_group("router_decide/4_replicas");
    for (label, policy) in policies {
        let router = Router::new(
            Arc::clone(&pool),
            RouterConfig {
                policy,
                ..RouterConfig::default()
            },
            None,
        );
        let p = prompt(3, 64, vocab);
        group.bench_function(label, |b| b.iter(|| black_box(router.decide(&p, 8))));
    }
    group.finish();

    let mut group = c.benchmark_group("rendezvous_pick");
    for n in [2usize, 8, 32] {
        let head = prompt(1, 16, vocab);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(rendezvous_pick(&head, n)))
        });
    }
    group.finish();

    pool.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
