//! Telemetry hot-path costs: counter increments, histogram observes,
//! full-registry exposition rendering, and the end-to-end question — what
//! does instrumentation cost one batched decode round? The acceptance bar
//! is <1% decode-throughput overhead (see EXPERIMENTS.md for recorded
//! runs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wisdom_bench::bench_profile;
use wisdom_eval::run_telemetry_overhead;
use wisdom_model::{
    generate_batch, generate_batch_instrumented, BatchTelemetry, DecodeRequest, GenerationOptions,
    ModelConfig, TransformerLm,
};
use wisdom_prng::Prng;
use wisdom_telemetry::{Counter, Histogram, Registry};

fn requests(model: &TransformerLm, n: usize, tokens: usize) -> Vec<DecodeRequest> {
    let vocab = model.config().vocab_size as u32;
    (0..n)
        .map(|i| DecodeRequest {
            prompt: (0..8u32)
                .map(|j| (i as u32 * 13 + j * 31 + 3) % vocab)
                .collect(),
            stops: Vec::new(),
            opts: GenerationOptions {
                max_new_tokens: tokens,
                ..Default::default()
            },
            grammar: None,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // Regenerate the overhead comparison once.
    let profile = bench_profile();
    let r = run_telemetry_overhead(&profile, 8, 48);
    println!("\n{}", wisdom_eval::tables::telemetry_text(&r));

    // Primitive hot paths.
    let counter = Counter::new();
    c.bench_function("telemetry/counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            black_box(())
        })
    });
    let histogram = Histogram::latency();
    c.bench_function("telemetry/histogram_observe", |b| {
        let mut v = 1e-5f64;
        b.iter(|| {
            v = (v * 1.37) % 10.0 + 1e-6;
            histogram.observe(black_box(v))
        })
    });

    // Scrape cost with the full serving-stack families registered.
    let registry = Registry::new();
    let telemetry = BatchTelemetry::register(&registry);
    for i in 0..1000 {
        telemetry.queue_wait.observe(i as f64 * 1e-4);
        telemetry.ttft.observe(i as f64 * 3e-4);
        telemetry.token_latency.observe(i as f64 * 1e-5);
        telemetry.admitted.inc();
    }
    c.bench_function("telemetry/registry_render", |b| {
        b.iter(|| black_box(registry.render()))
    });

    // Plain vs instrumented batched decode on the 350M-class config.
    let mut rng = Prng::seed_from_u64(9);
    let model = TransformerLm::new(ModelConfig::size_350m(600, 96), &mut rng);
    let (batch, tokens) = (4usize, 16usize);
    c.bench_function("telemetry/decode_plain_4x16", |b| {
        b.iter(|| {
            black_box(generate_batch(
                &model,
                requests(&model, batch, tokens),
                batch,
            ))
        })
    });
    c.bench_function("telemetry/decode_instrumented_4x16", |b| {
        b.iter(|| {
            black_box(generate_batch_instrumented(
                &model,
                requests(&model, batch, tokens),
                batch,
                None,
                telemetry.clone(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
