//! Curation pipeline throughput: end-to-end docs/sec through
//! parse → lint → dedup → score → shard, per worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wisdom_corpus::{Corpus, CorpusSpec};
use wisdom_curation::{corpus_docs, curate, score_document, CurationConfig, DocKind};

fn bench(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusSpec {
        seed: 31,
        galaxy_files: 48,
        gitlab_files: 16,
        github_ansible_files: 24,
        generic_files: 24,
        pile_docs: 8,
        pile_yaml_fraction: 0.1,
        bigquery_docs: 8,
        bigpython_docs: 8,
    });
    let docs = corpus_docs(&corpus);
    let total_bytes: u64 = docs.iter().map(|d| d.text.len() as u64).sum();
    println!("curation: {} docs, {} bytes", docs.len(), total_bytes);

    let mut group = c.benchmark_group("curation/pipeline");
    group.throughput(Throughput::Elements(docs.len() as u64));
    for workers in [1usize, 2, 4] {
        let config = CurationConfig {
            workers,
            keep_texts: false,
            ..CurationConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(workers), &config, |b, cfg| {
            b.iter(|| black_box(curate(docs.clone(), cfg)))
        });
    }
    drop(group);

    // The score stage in isolation (the per-document hot loop).
    let sample = &docs[0].text;
    let mut group = c.benchmark_group("curation/score");
    group.throughput(Throughput::Bytes(sample.len() as u64));
    group.bench_function("ansible_doc", |b| {
        b.iter(|| black_box(score_document(black_box(sample), DocKind::Ansible)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
