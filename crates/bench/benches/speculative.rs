//! Speculative decoding: greedy generation through the n-gram/self-draft
//! proposers with batched-prefill verification, vs the plain sequential
//! step loop. The acceptance bar is >1 accepted draft token per verify pass
//! on the 2.7B-class config with a warmed n-gram drafter (see
//! EXPERIMENTS.md for recorded runs).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wisdom_bench::bench_profile;
use wisdom_eval::run_speculative;
use wisdom_model::{
    GenerationOptions, ModelConfig, NgramSpeculator, SpeculativeConfig, SpeculativeDecoder,
    TransformerLm,
};
use wisdom_prng::Prng;

fn bench(c: &mut Criterion) {
    // Regenerate the tok/s and acceptance curve once.
    let profile = bench_profile();
    let points = run_speculative(&profile, 64, &[0, 2, 4, 8]);
    println!("\n{}", wisdom_eval::tables::speculative_text(&points));

    let vocab = 600;
    let ctx = 96;
    let tokens = 48;
    let mut rng = Prng::seed_from_u64(9);
    let models = [
        (
            "350M",
            TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng),
        ),
        (
            "2.7B",
            TransformerLm::new(ModelConfig::size_2_7b(vocab, ctx), &mut rng),
        ),
    ];
    let opts = GenerationOptions {
        max_new_tokens: tokens,
        ..Default::default()
    };
    let prompt: Vec<u32> = (0..8u32).map(|j| (j * 31 + 3) % vocab as u32).collect();

    for (label, model) in &models {
        let name = format!("speculative/{label}");
        let mut group = c.benchmark_group(&name);
        group.throughput(Throughput::Elements(tokens as u64));
        group.bench_function("plain", |b| {
            b.iter(|| black_box(model.generate(&prompt, &[], &opts)))
        });
        // Drafter warmed on the model's own greedy stream: the formulaic
        // regime where speculation pays (acceptance stays near the draft
        // length, so each verify pass replaces several sequential steps).
        let mut warm_stream = prompt.clone();
        warm_stream.extend(model.generate(&prompt, &[], &opts));
        for k in [2usize, 4, 8] {
            let dec = SpeculativeDecoder::new(model, SpeculativeConfig::ngram(k));
            let mut warmed = NgramSpeculator::new(4, vocab, true);
            warmed.warm(&warm_stream);
            group.bench_with_input(BenchmarkId::new("ngram", k), &k, |b, _| {
                b.iter(|| {
                    let mut drafter = warmed.clone();
                    black_box(dec.generate_with(&prompt, &[], &opts, &mut drafter))
                })
            });
        }
        // Zero-training self-drafting on the same workload.
        let dec = SpeculativeDecoder::new(model, SpeculativeConfig::self_draft(4));
        group.bench_function("self-draft/4", |b| {
            b.iter(|| black_box(dec.generate(&prompt, &[], &opts)))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
