//! Grammar-constrained decoding: the cost of the automaton itself.
//!
//! Three angles: building an allowed-token mask cold (state-cache cleared)
//! vs warm (bitset memoised per automaton state), advancing the cursor
//! byte-by-byte through a lint-clean playbook's token stream, and the
//! end-to-end tax of `generate_constrained` vs the plain greedy loop on a
//! 350M-class-shaped model. The agreement suite pins that constrained and
//! unconstrained decodes emit identical tokens whenever the unconstrained
//! argmax is legal, so the end-to-end gap here is pure masking overhead.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wisdom_model::{
    Constraint, GenerationOptions, GrammarCursor, GrammarIndex, ModelConfig, Strategy,
    TransformerLm,
};
use wisdom_prng::Prng;
use wisdom_tokenizer::BpeTokenizer;

const CORPUS: &[&str] = &[
    "- name: Install nginx\n  ansible.builtin.package:\n    name: nginx\n    state: present\n",
    "- name: Copy config\n  ansible.builtin.copy:\n    src: files/nginx.conf\n    dest: /etc/nginx/nginx.conf\n    mode: '0644'\n",
    "- name: Start service\n  ansible.builtin.service:\n    name: nginx\n    state: started\n    enabled: true\n",
    "- name: Site play\n  hosts: all\n  gather_facts: false\n  tasks:\n    - name: Ping\n      ansible.builtin.ping: {}\n",
];

fn bench(c: &mut Criterion) {
    let tokenizer = Arc::new(BpeTokenizer::train(CORPUS.iter().copied(), 460));
    let vocab = tokenizer.vocab_size();
    let prompt = "- name: Install nginx\n";
    let prompt_ids = tokenizer.encode(prompt);
    let completion =
        "  ansible.builtin.package:\n    name: nginx\n    state: present\n- name: Start service\n  \
         ansible.builtin.service:\n    name: nginx\n    state: started\n";
    let completion_ids = tokenizer.encode(completion);

    // Mask construction: apply() fills a vocab-sized logit slice with
    // NEG_INFINITY outside the legal set. Cold pays the byte-level DFA
    // walk per vocab entry; warm hits the per-state bitset cache.
    let mut group = c.benchmark_group("grammar/mask_build");
    group.throughput(Throughput::Elements(vocab as u64));
    for constraint in [Constraint::Yaml, Constraint::Ansible] {
        let index = GrammarIndex::build(&tokenizer, constraint).expect("constraint is active");
        let cursor = GrammarCursor::new(Arc::clone(&index), &prompt_ids, 256);
        assert!(cursor.is_active(), "bench prompt must engage the automaton");
        let logits = vec![0.0f32; vocab];
        group.bench_function(&format!("cold/{}", constraint.as_str()), |b| {
            b.iter(|| {
                index.clear_cache();
                let mut l = logits.clone();
                black_box(cursor.apply(&mut l))
            })
        });
        index.clear_cache();
        cursor.apply(&mut logits.clone());
        group.bench_function(&format!("warm/{}", constraint.as_str()), |b| {
            b.iter(|| {
                let mut l = logits.clone();
                black_box(cursor.apply(&mut l))
            })
        });
    }
    group.finish();

    // Cursor advance through a two-task playbook completion, one BPE token
    // at a time — the per-token bookkeeping every constrained decode pays.
    let mut group = c.benchmark_group("grammar/advance_playbook");
    group.throughput(Throughput::Elements(completion_ids.len() as u64));
    for constraint in [Constraint::Yaml, Constraint::Ansible] {
        let index = GrammarIndex::build(&tokenizer, constraint).expect("constraint is active");
        group.bench_function(constraint.as_str(), |b| {
            b.iter(|| {
                let mut cursor = GrammarCursor::new(Arc::clone(&index), &prompt_ids, 256);
                for &t in &completion_ids {
                    black_box(cursor.advance(t));
                }
                black_box(cursor.is_active())
            })
        });
    }
    group.finish();

    // End-to-end greedy decode, plain vs masked, same weights and seed.
    let tokens = 48usize;
    let opts = GenerationOptions {
        max_new_tokens: tokens,
        strategy: Strategy::Greedy,
        seed: 7,
    };
    let mut rng = Prng::seed_from_u64(9);
    let cfg = ModelConfig {
        vocab_size: vocab,
        d_model: 64,
        n_layers: 2,
        n_heads: 4,
        context_window: 128,
    };
    let model = TransformerLm::new(cfg, &mut rng);
    let stops = [tokenizer.eot(), tokenizer.sep()];
    let ansible = GrammarIndex::build(&tokenizer, Constraint::Ansible).expect("active");
    let mut group = c.benchmark_group("grammar/generate_48_tokens");
    group.throughput(Throughput::Elements(tokens as u64));
    group.bench_function("unconstrained", |b| {
        b.iter(|| black_box(model.generate(&prompt_ids, &stops, &opts)))
    });
    group.bench_function("ansible", |b| {
        b.iter(|| {
            black_box(model.generate_constrained(&prompt_ids, &stops, &opts, Some(&ansible), None))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
