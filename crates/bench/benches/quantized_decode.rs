//! Quantized decode: single-stream greedy KV-cache decoding with f32
//! weights vs the int8-packed fast path vs the dequant-on-load oracle
//! (int8 error, f32 kernels), for the 350M- and 2.7B-class architectures.
//! The fast path and the oracle emit bit-identical tokens — the agreement
//! suite pins that — so the gap between them is pure kernel speed, and the
//! gap to f32 is the end-to-end win recorded in `BENCH_quant.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wisdom_model::{GenerationOptions, ModelConfig, Precision, Strategy, TransformerLm};
use wisdom_prng::Prng;

fn bench(c: &mut Criterion) {
    let vocab = 600;
    let ctx = 96;
    let mut rng = Prng::seed_from_u64(9);
    let configs = [
        ("350M", ModelConfig::size_350m(vocab, ctx)),
        ("2.7B", ModelConfig::size_2_7b(vocab, ctx)),
    ];
    let tokens = 48usize;
    let opts = GenerationOptions {
        max_new_tokens: tokens,
        strategy: Strategy::TopK {
            k: 40,
            temperature: 1.0,
        },
        seed: 11,
    };

    let mut group = c.benchmark_group("quantized/generate_48_tokens");
    group.throughput(Throughput::Elements(tokens as u64));
    for (label, cfg) in configs {
        let f32_model = TransformerLm::new(cfg, &mut rng);
        let variants = [
            ("f32", f32_model.clone()),
            ("int8", f32_model.clone().with_precision(Precision::Int8)),
            (
                "int8-dequant",
                f32_model.with_precision(Precision::Int8Dequant),
            ),
        ];
        for (precision, model) in &variants {
            group.bench_with_input(BenchmarkId::new(*precision, label), model, |b, m| {
                b.iter(|| black_box(m.generate(&[3, 4, 5, 6], &[], &opts)))
            });
        }
    }
    group.finish();

    // Prefill through the quantized GEBP: a context-window-length prompt in
    // one batched pass, f32 vs int8.
    let window: Vec<u32> = (0..ctx as u32)
        .map(|i| (i * 31 + 3) % vocab as u32)
        .collect();
    let mut group = c.benchmark_group("quantized/prefill_full_context");
    group.throughput(Throughput::Elements(ctx as u64));
    for (label, cfg) in [
        ("350M", ModelConfig::size_350m(vocab, ctx)),
        ("2.7B", ModelConfig::size_2_7b(vocab, ctx)),
    ] {
        let f32_model = TransformerLm::new(cfg, &mut rng);
        let int8_model = f32_model.clone().with_precision(Precision::Int8);
        group.bench_with_input(BenchmarkId::new("f32", label), &f32_model, |b, m| {
            b.iter(|| black_box(m.prefill(&window)))
        });
        group.bench_with_input(BenchmarkId::new("int8", label), &int8_model, |b, m| {
            b.iter(|| black_box(m.prefill(&window)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
