//! Continuous-batching decode scaling: aggregate greedy tokens/second and
//! per-request latency as the number of concurrently decoded sequences
//! grows. Batch 1 is the solo `generate` loop every request paid before the
//! scheduler existed; the acceptance bar is ≥2× aggregate throughput at
//! batch 8 on the 2.7B-class config (see EXPERIMENTS.md for recorded runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wisdom_bench::bench_profile;
use wisdom_eval::run_decode_batching;
use wisdom_model::{generate_batch, DecodeRequest, GenerationOptions, ModelConfig, TransformerLm};
use wisdom_prng::Prng;

fn requests(model: &TransformerLm, n: usize, tokens: usize) -> Vec<DecodeRequest> {
    let vocab = model.config().vocab_size as u32;
    (0..n)
        .map(|i| DecodeRequest {
            // Distinct prompts, no stop tokens: every sequence runs its full
            // budget so the element count below is exact.
            prompt: (0..8u32)
                .map(|j| (i as u32 * 13 + j * 31 + 3) % vocab)
                .collect(),
            stops: Vec::new(),
            opts: GenerationOptions {
                max_new_tokens: tokens,
                ..Default::default()
            },
            grammar: None,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // Regenerate the scaling table once.
    let profile = bench_profile();
    let points = run_decode_batching(&profile, 48, &[1, 2, 4, 8]);
    println!("\n{}", wisdom_eval::tables::decode_batching_text(&points));

    let vocab = 600;
    let ctx = 96;
    let mut rng = Prng::seed_from_u64(9);
    let models = [
        (
            "350M",
            TransformerLm::new(ModelConfig::size_350m(vocab, ctx), &mut rng),
        ),
        (
            "2.7B",
            TransformerLm::new(ModelConfig::size_2_7b(vocab, ctx), &mut rng),
        ),
    ];

    let tokens = 32usize;
    for (label, model) in &models {
        let name = format!("decode_batching/{label}_32_tokens");
        let mut group = c.benchmark_group(&name);
        for batch in [1usize, 2, 4, 8] {
            // Aggregate tokens across the whole batch, so Criterion's
            // elements/sec IS the aggregate decode throughput; per-request
            // latency is the raw iteration time.
            group.throughput(Throughput::Elements((batch * tokens) as u64));
            group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
                b.iter(|| black_box(generate_batch(model, requests(model, batch, tokens), batch)))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
