//! Table 3: few-shot evaluation. Regenerates the table once at bench scale,
//! then benchmarks the pieces that dominate the experiment: one pre-training
//! step and one few-shot completion + scoring pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wisdom_bench::bench_profile;
use wisdom_corpus::{PromptStyle, Sample};
use wisdom_eval::{evaluate, run_table3, spec, tables, EvalSettings, SampleCap, SizeClass, Zoo};
use wisdom_model::{GenerationOptions, TextGenerator};

fn bench(c: &mut Criterion) {
    // Regenerate the full table once (bench-profile scale).
    let mut zoo = Zoo::build(bench_profile());
    let rows = run_table3(&mut zoo, None);
    println!("\n{}", tables::table3_text(&rows));

    // Benchmark a single pre-training step on the Ansible stream.
    let model_spec = *spec("Wisdom-Ansible", SizeClass::S350m).expect("spec");
    let stream = zoo.stream_for(model_spec.pools);
    let base = zoo.pretrained(&model_spec, None);
    c.bench_function("table3/pretrain_step", |b| {
        let mut model = base.clone();
        let mut adam = wisdom_tensor::Adam::new(wisdom_tensor::AdamConfig::default());
        let time = model.config().context_window;
        let tokens: Vec<u32> = stream.iter().copied().take(2 * time).collect();
        let targets: Vec<usize> = stream[1..=2 * time].iter().map(|&t| t as usize).collect();
        b.iter(|| {
            black_box(model.train_step(&tokens, &targets, 2, time, &mut adam, 1.0));
        })
    });

    // Benchmark one few-shot completion.
    let generator = zoo.fewshot_generator(&model_spec, None);
    let sample = zoo.split.test.first().expect("test sample").clone();
    let prompt = sample.prompt_text(PromptStyle::NameCompletion);
    let opts = GenerationOptions {
        max_new_tokens: 32,
        ..Default::default()
    };
    c.bench_function("table3/fewshot_completion", |b| {
        b.iter(|| black_box(generator.complete(&prompt, &opts)))
    });

    // Benchmark a scored evaluation pass over a handful of samples.
    let refs: Vec<&Sample> = zoo.split.test.iter().take(4).collect();
    let settings = EvalSettings {
        cap: SampleCap::Total(4),
        max_new_tokens: 24,
        ..EvalSettings::for_profile(&zoo.profile)
    };
    c.bench_function("table3/evaluate_4_samples", |b| {
        b.iter(|| black_box(evaluate(&generator, &refs, &settings)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
