//! Baseline YAML parsing throughput: docs/sec and MB/s over a
//! representative corpus slice.
//!
//! The zero-copy parser rewrite on the roadmap needs a recorded baseline to
//! beat; this bench pins it. Documents come from the synthetic corpus
//! generators (galaxy roles, crawled Ansible, generic YAML) so the mix of
//! indentation depth, sequence density and scalar shapes matches what the
//! curation pipeline and tokenizer actually feed the parser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wisdom_corpus::{Corpus, CorpusSpec};

fn sample_docs() -> Vec<(&'static str, Vec<String>)> {
    let corpus = Corpus::build(&CorpusSpec {
        seed: 11,
        galaxy_files: 64,
        gitlab_files: 32,
        github_ansible_files: 32,
        generic_files: 48,
        pile_docs: 4,
        pile_yaml_fraction: 0.1,
        bigquery_docs: 4,
        bigpython_docs: 4,
    });
    vec![
        ("galaxy", corpus.galaxy.clone()),
        (
            "crawled",
            corpus
                .gitlab
                .iter()
                .chain(corpus.github_ansible.iter())
                .cloned()
                .collect(),
        ),
        ("generic", corpus.generic.clone()),
    ]
}

fn bench(c: &mut Criterion) {
    let channels = sample_docs();

    // Per-channel: docs/sec (one parse per iteration over a rotating doc
    // would hide size variance, so parse the whole channel per iteration
    // and let Elements/Bytes annotate the rate).
    for (channel, docs) in &channels {
        let total_bytes: u64 = docs.iter().map(|d| d.len() as u64).sum();
        println!(
            "yaml_parse/{channel}: {} docs, {} bytes ({:.0} B/doc mean)",
            docs.len(),
            total_bytes,
            total_bytes as f64 / docs.len() as f64
        );

        let mut group = c.benchmark_group("yaml_parse/docs");
        group.throughput(Throughput::Elements(docs.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(channel), docs, |b, docs| {
            b.iter(|| {
                for doc in docs {
                    black_box(wisdom_yaml::parse(black_box(doc)).expect("corpus docs parse"));
                }
            })
        });
        drop(group);

        let mut group = c.benchmark_group("yaml_parse/bytes");
        group.throughput(Throughput::Bytes(total_bytes));
        group.bench_with_input(BenchmarkId::from_parameter(channel), docs, |b, docs| {
            b.iter(|| {
                for doc in docs {
                    black_box(wisdom_yaml::parse(black_box(doc)).expect("corpus docs parse"));
                }
            })
        });
    }

    // The full mixed stream, as the curation parse stage sees it.
    let all: Vec<&String> = channels.iter().flat_map(|(_, d)| d.iter()).collect();
    let total_bytes: u64 = all.iter().map(|d| d.len() as u64).sum();
    let mut group = c.benchmark_group("yaml_parse/mixed");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("all_channels", |b| {
        b.iter(|| {
            for doc in &all {
                black_box(wisdom_yaml::parse(black_box(doc.as_str())).expect("parse"));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
