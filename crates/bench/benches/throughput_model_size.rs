//! The §4.3 throughput figure: the paper chose the 350M model because it
//! decodes ~1.9× faster than the 2.7B model on a single GPU. This bench
//! measures greedy KV-cache decoding for all three scaled size classes and
//! prints the speedup series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wisdom_bench::bench_profile;
use wisdom_eval::run_throughput;
use wisdom_model::{GenerationOptions, ModelConfig, Strategy, TransformerLm};
use wisdom_prng::Prng;

fn bench(c: &mut Criterion) {
    // Regenerate the figure once.
    let profile = bench_profile();
    let result = run_throughput(&profile, 64);
    println!("\n{}", wisdom_eval::tables::throughput_text(&result));

    let vocab = 600;
    let ctx = 96;
    let mut rng = Prng::seed_from_u64(9);
    let configs = [
        ("350M", ModelConfig::size_350m(vocab, ctx)),
        ("2.7B", ModelConfig::size_2_7b(vocab, ctx)),
        ("6B", ModelConfig::size_6b(vocab, ctx)),
    ];
    let models: Vec<(&str, TransformerLm)> = configs
        .into_iter()
        .map(|(label, cfg)| (label, TransformerLm::new(cfg, &mut rng)))
        .collect();

    // Decode: tokens generated per second after the prompt is in the cache.
    let tokens = 48usize;
    let mut group = c.benchmark_group("throughput/generate_48_tokens");
    group.throughput(Throughput::Elements(tokens as u64));
    for (label, model) in &models {
        let opts = GenerationOptions {
            max_new_tokens: tokens,
            strategy: Strategy::TopK {
                k: 40,
                temperature: 1.0,
            },
            seed: 11,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), model, |b, m| {
            b.iter(|| black_box(m.generate(&[3, 4, 5, 6], &[], &opts)))
        });
    }
    group.finish();

    // Prefill: prompt tokens absorbed per second on a context-window-length
    // prompt, batched pass vs the sequential step-loop baseline.
    let window: Vec<u32> = (0..ctx as u32)
        .map(|i| (i * 31 + 3) % vocab as u32)
        .collect();
    let mut group = c.benchmark_group("throughput/prefill_full_context");
    group.throughput(Throughput::Elements(ctx as u64));
    for (label, model) in &models {
        group.bench_with_input(BenchmarkId::new("batched", label), model, |b, m| {
            b.iter(|| black_box(m.prefill(&window)))
        });
        group.bench_with_input(BenchmarkId::new("sequential", label), model, |b, m| {
            b.iter(|| black_box(m.prefill_sequential(&window)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
