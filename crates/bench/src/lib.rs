//! Shared helpers for the benchmark harness.
//!
//! Each bench regenerates its paper table once (printed to stdout so the
//! rows are inspectable) and then measures the representative hot
//! operations with Criterion. See `benches/` for the per-table targets.

use wisdom_eval::Profile;

/// The profile used by benches: small enough to iterate, large enough to be
/// representative.
pub fn bench_profile() -> Profile {
    Profile::test()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_profile_is_small() {
        let p = bench_profile();
        assert!(p.eval_max_samples <= 32);
    }
}
