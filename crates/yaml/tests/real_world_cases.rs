//! Regression tests on realistic YAML fragments seen in public Ansible and
//! DevOps content — the shapes the corpus generator and model outputs must
//! survive.

use wisdom_yaml::{parse, parse_documents, Value};

fn get<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .as_map()
            .unwrap_or_else(|| panic!("not a map at {key}"))
            .get(key)
            .unwrap_or_else(|| panic!("missing key {key}"));
    }
    cur
}

#[test]
fn github_actions_on_key() {
    // `on` resolves as a YAML 1.1 boolean key in some parsers; ours keeps
    // mapping keys as written.
    let v = parse("name: CI\non:\n  push:\n    branches:\n      - main\n").unwrap();
    assert!(v.as_map().unwrap().contains_key("on"));
    let branches = get(&v, &["on", "push", "branches"]);
    assert_eq!(branches.as_seq().unwrap().len(), 1);
}

#[test]
fn octal_file_modes() {
    let v = parse("mode1: \"0644\"\nmode2: 0644\n").unwrap();
    // Quoted stays a string; unquoted parses as an integer (like PyYAML 1.2
    // without the 0o prefix — decimal 644).
    assert_eq!(get(&v, &["mode1"]).as_str(), Some("0644"));
    assert_eq!(get(&v, &["mode2"]).as_int(), Some(644));
}

#[test]
fn jinja_expressions_survive() {
    let src = "msg: 'Result: {{ result.stdout | default(\"none\") }}'\nwhen: ansible_facts['os_family'] == 'Debian'\nloop: \"{{ users | dict2items }}\"\n";
    let v = parse(src).unwrap();
    assert!(get(&v, &["msg"]).as_str().unwrap().contains("default"));
    assert!(get(&v, &["when"]).as_str().unwrap().contains("os_family"));
    assert!(get(&v, &["loop"]).as_str().unwrap().contains("dict2items"));
}

#[test]
fn multiline_shell_script() {
    let src = "script: |\n  #!/bin/bash\n  set -euo pipefail\n  if [ -d /opt/app ]; then\n    rm -rf /opt/app/cache\n  fi\n";
    let v = parse(src).unwrap();
    let script = get(&v, &["script"]).as_str().unwrap();
    assert!(script.starts_with("#!/bin/bash\n"));
    assert!(script.contains("  rm -rf"));
    assert_eq!(script.lines().count(), 5);
}

#[test]
fn docker_compose_ports_strings() {
    let v = parse("ports:\n  - \"80:80\"\n  - 8080:8080\n").unwrap();
    let ports = get(&v, &["ports"]).as_seq().unwrap();
    assert_eq!(ports[0].as_str(), Some("80:80"));
    // Unquoted 8080:8080 is a plain scalar (not a valid int).
    assert_eq!(ports[1].as_str(), Some("8080:8080"));
}

#[test]
fn inventory_style_empty_values() {
    let v = parse("all:\n  hosts:\n    web1:\n    web2:\n  children:\n    db:\n").unwrap();
    assert!(get(&v, &["all", "hosts", "web1"]).is_null());
    assert!(get(&v, &["all", "children", "db"]).is_null());
}

#[test]
fn deeply_mixed_nesting() {
    let src = "- name: outer\n  block:\n    - name: inner\n      ansible.builtin.debug:\n        msg: hi\n      with_items:\n        - a\n        - b\n      when:\n        - cond1\n        - cond2\n";
    let v = parse(src).unwrap();
    let task = &v.as_seq().unwrap()[0];
    let block = get(task, &["block"]).as_seq().unwrap();
    let when = get(&block[0], &["when"]).as_seq().unwrap();
    assert_eq!(when.len(), 2);
}

#[test]
fn multi_document_k8s_manifests() {
    let src =
        "---\napiVersion: v1\nkind: Service\n---\napiVersion: apps/v1\nkind: Deployment\n...\n";
    let docs = parse_documents(src).unwrap();
    assert_eq!(docs.len(), 2);
    assert_eq!(get(&docs[1], &["kind"]).as_str(), Some("Deployment"));
}

#[test]
fn comments_between_tasks() {
    let src = "# setup section\n- name: a\n  ansible.builtin.ping: {}\n\n# deploy section\n- name: b   # trailing note\n  ansible.builtin.ping: {}\n";
    let v = parse(src).unwrap();
    let tasks = v.as_seq().unwrap();
    assert_eq!(tasks.len(), 2);
    assert_eq!(get(&tasks[1], &["name"]).as_str(), Some("b"));
}

#[test]
fn windows_paths_and_backslashes() {
    let v = parse("dest: C:\\Program Files\\App\nsrc: \"files\\\\app.exe\"\n").unwrap();
    assert_eq!(get(&v, &["dest"]).as_str(), Some("C:\\Program Files\\App"));
    assert_eq!(get(&v, &["src"]).as_str(), Some("files\\app.exe"));
}

#[test]
fn anchors_fail_loudly_not_silently() {
    let err = parse("defaults: &base\n  retries: 3\ntask:\n  <<: *base\n").unwrap_err();
    assert!(err.to_string().contains("unsupported"));
}

#[test]
fn url_values_with_ports_and_queries() {
    let v = parse("url: https://example.com:8443/api?x=1&y=2\n").unwrap();
    assert_eq!(
        get(&v, &["url"]).as_str(),
        Some("https://example.com:8443/api?x=1&y=2")
    );
}

#[test]
fn empty_flow_collections_in_context() {
    let v = parse("a: []\nb: {}\nc:\n  - []\n  - {}\n").unwrap();
    assert_eq!(get(&v, &["a"]).as_seq().unwrap().len(), 0);
    assert_eq!(get(&v, &["b"]).as_map().unwrap().len(), 0);
    assert_eq!(get(&v, &["c"]).as_seq().unwrap().len(), 2);
}
