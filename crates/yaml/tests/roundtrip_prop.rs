//! Property tests: any value tree the emitter can produce must re-parse to
//! an identical tree, and parsing must never panic on arbitrary input.

use proptest::prelude::*;
use wisdom_yaml::{emit, parse, Mapping, Value};

/// Strategy for scalar strings spanning the tricky regions of YAML syntax.
fn scalar_string() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_./ {}:#|>\\-]{0,24}",
        "[ -~]{0,16}",
        Just(String::new()),
        Just("true".to_string()),
        Just("123".to_string()),
        Just("~".to_string()),
        Just("- item".to_string()),
        Just("{{ ansible_host }}".to_string()),
        "([a-z ]{0,8}\n){0,4}",
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1.0e9f64..1.0e9).prop_map(Value::Float),
        scalar_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Seq),
            prop::collection::vec(("[a-zA-Z0-9_.: -]{1,12}", inner), 0..5).prop_map(|pairs| {
                let mut m = Mapping::new();
                for (k, v) in pairs {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn emit_parse_round_trip(v in value_strategy()) {
        let text = emit(&v);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nemitted:\n{text}"));
        prop_assert_eq!(back, v, "emitted:\n{}", text);
    }

    #[test]
    fn parse_never_panics(src in "[ -~\n]{0,200}") {
        let _ = parse(&src);
    }

    #[test]
    fn parse_structured_never_panics(
        keys in prop::collection::vec("[a-z]{1,6}", 1..6),
        indents in prop::collection::vec(0usize..6, 1..6),
    ) {
        let mut src = String::new();
        for (k, ind) in keys.iter().zip(indents.iter()) {
            for _ in 0..*ind {
                src.push(' ');
            }
            src.push_str(k);
            src.push_str(":\n");
        }
        let _ = parse(&src);
    }
}
