//! A from-scratch YAML parser and emitter for the Ansible-YAML dialect.
//!
//! The Ansible Wisdom paper (DAC 2023) generates, validates, scores and
//! normalizes Ansible-YAML. This crate provides the YAML substrate those
//! steps run on: a block-style YAML 1.2 subset covering everything that
//! occurs in Ansible playbooks, task files and common generic YAML
//! (CI configs, Kubernetes manifests, docker-compose files):
//!
//! * block mappings and sequences with arbitrary nesting,
//! * plain / single-quoted / double-quoted scalars with YAML 1.1-style
//!   boolean resolution (`yes`/`no`/`on`/`off`), since real Ansible corpora
//!   use those heavily,
//! * flow sequences `[a, b]` and flow mappings `{k: v}` (single line),
//! * literal (`|`) and folded (`>`) block scalars with chomping indicators,
//! * comments and multi-document streams (`---` / `...`).
//!
//! Out of scope (documented limitation, not needed by the corpus): anchors
//! and aliases, complex (non-scalar) mapping keys, tags, and multi-line flow
//! collections. Inputs using those produce a [`ParseYamlError`].
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), wisdom_yaml::ParseYamlError> {
//! let doc = wisdom_yaml::parse(
//!     "- name: Install SSH server\n  ansible.builtin.apt:\n    name: openssh-server\n    state: present\n",
//! )?;
//! let tasks = doc.as_seq().expect("top-level sequence");
//! let first = tasks[0].as_map().expect("task mapping");
//! assert_eq!(first.get("name").and_then(|v| v.as_str()), Some("Install SSH server"));
//! # Ok(())
//! # }
//! ```

mod emitter;
mod error;
mod lexer;
mod parser;
mod value;

pub use emitter::{emit, emit_documents, EmitOptions};
pub use error::ParseYamlError;
pub use parser::{parse, parse_documents};
pub use value::{Mapping, Value};

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    /// Emitting then re-parsing must yield the same value tree.
    fn assert_round_trip(v: &Value) {
        let text = emit(v);
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(&back, v, "round trip mismatch; emitted:\n{text}");
    }

    #[test]
    fn round_trip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-17),
            Value::Float(2.5),
            Value::Float(-0.125),
            Value::Str("hello world".into()),
            Value::Str("true".into()),
            Value::Str("123".into()),
            Value::Str("".into()),
            Value::Str("with: colon".into()),
            Value::Str("# not a comment".into()),
            Value::Str("multi\nline\ntext".into()),
            Value::Str(" leading space".into()),
        ] {
            assert_round_trip(&v);
        }
    }

    #[test]
    fn round_trip_nested() {
        let mut inner = Mapping::new();
        inner.insert("name".into(), Value::Str("httpd".into()));
        inner.insert("state".into(), Value::Str("latest".into()));
        let mut task = Mapping::new();
        task.insert(
            "name".into(),
            Value::Str("Ensure apache is installed".into()),
        );
        task.insert("ansible.builtin.yum".into(), Value::Map(inner));
        task.insert(
            "notify".into(),
            Value::Seq(vec![Value::Str("restart apache".into())]),
        );
        let doc = Value::Seq(vec![Value::Map(task)]);
        assert_round_trip(&doc);
    }

    #[test]
    fn round_trip_empty_collections() {
        assert_round_trip(&Value::Seq(vec![]));
        assert_round_trip(&Value::Map(Mapping::new()));
        let mut m = Mapping::new();
        m.insert("empty_list".into(), Value::Seq(vec![]));
        m.insert("empty_map".into(), Value::Map(Mapping::new()));
        m.insert("nothing".into(), Value::Null);
        assert_round_trip(&Value::Map(m));
    }
}
