use std::error::Error;
use std::fmt;

/// Error produced when a YAML document cannot be parsed.
///
/// Carries the 1-based line number where the problem was detected plus a
/// human-readable message.
///
/// # Examples
///
/// ```
/// let err = wisdom_yaml::parse("a:\n\tb: 1\n").unwrap_err();
/// assert_eq!(err.line(), 2);
/// assert!(err.to_string().contains("tab"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseYamlError {
    line: usize,
    message: String,
}

impl ParseYamlError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line where parsing failed (0 when unknown).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The diagnostic message, without location information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseYamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "yaml parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseYamlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_message() {
        let e = ParseYamlError::new(7, "unexpected thing");
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("unexpected thing"));
    }
}
