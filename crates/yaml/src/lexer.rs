//! Line-oriented lexical analysis: splits source text into indented content
//! lines with comments stripped, which the block parser then consumes.

use crate::error::ParseYamlError;

/// Counts leading spaces; tabs in indentation are a hard error (YAML forbids
/// them).
pub(crate) fn count_indent(raw: &str, number: usize) -> Result<usize, ParseYamlError> {
    let mut indent = 0;
    for b in raw.bytes() {
        match b {
            b' ' => indent += 1,
            b'\t' => {
                return Err(ParseYamlError::new(
                    number,
                    "tab character in indentation (YAML requires spaces)",
                ))
            }
            _ => break,
        }
    }
    Ok(indent)
}

/// Removes a trailing ` # comment`, honouring single/double quote state.
/// A `#` begins a comment only when preceded by whitespace (or at start).
pub(crate) fn strip_trailing_comment(body: &str) -> &str {
    let bytes = body.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => {
                // '' inside a single-quoted scalar is an escaped quote.
                if in_single && i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                    i += 1;
                } else {
                    in_single = !in_single;
                }
            }
            b'"' if !in_single => {
                in_double = !in_double;
            }
            b'\\' if in_double => {
                i += 1; // skip escaped char
            }
            b'#' if !in_single
                && !in_double
                && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') =>
            {
                return body[..i].trim_end();
            }
            _ => {}
        }
        i += 1;
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_indent_counts_spaces() {
        assert_eq!(count_indent("  a: 1", 1).unwrap(), 2);
        assert_eq!(count_indent("a: 1", 1).unwrap(), 0);
        assert_eq!(count_indent("", 1).unwrap(), 0);
    }

    #[test]
    fn count_indent_rejects_tab() {
        let err = count_indent("\tb: 1", 2).unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn trailing_comment_stripped() {
        assert_eq!(strip_trailing_comment("a: 1 # note"), "a: 1");
        assert_eq!(strip_trailing_comment("# whole"), "");
    }

    #[test]
    fn hash_inside_quotes_kept() {
        assert_eq!(
            strip_trailing_comment("msg: \"issue #42\""),
            "msg: \"issue #42\""
        );
        assert_eq!(strip_trailing_comment("msg: 'a # b'"), "msg: 'a # b'");
    }

    #[test]
    fn hash_without_leading_space_kept() {
        assert_eq!(strip_trailing_comment("anchor: a#b"), "anchor: a#b");
    }

    #[test]
    fn escaped_quote_in_double_quoted() {
        assert_eq!(
            strip_trailing_comment(r#"msg: "say \"hi\" # x" # real"#),
            r#"msg: "say \"hi\" # x""#
        );
    }

    #[test]
    fn doubled_single_quote_escape() {
        assert_eq!(
            strip_trailing_comment("msg: 'it''s # inside' # out"),
            "msg: 'it''s # inside'"
        );
    }
}
