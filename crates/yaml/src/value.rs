use std::fmt;

/// An order-preserving string-keyed mapping, the YAML `!!map` node kind.
///
/// Ansible semantics treat a task as a dictionary whose key order is
/// insignificant for execution but significant for style, so the mapping
/// preserves insertion order while offering O(n) keyed lookup (mappings in
/// this domain are small — a task has a handful of keys).
///
/// # Examples
///
/// ```
/// use wisdom_yaml::{Mapping, Value};
///
/// let mut m = Mapping::new();
/// m.insert("state".to_string(), Value::Str("present".to_string()));
/// assert_eq!(m.get("state").and_then(|v| v.as_str()), Some("present"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Mapping {
    entries: Vec<(String, Value)>,
}

impl Mapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mapping has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, replacing and returning any previous value
    /// stored under the same key (the entry keeps its original position).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a value by key, mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the mapping contains `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the value stored under `key`, if any.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Reorders entries so that keys listed in `order` come first, in that
    /// order; remaining keys keep their relative order. Used by the Ansible
    /// style normalizer (`name` first, module next, keywords last).
    pub fn sort_by_key_order(&mut self, order: &[&str]) {
        let rank = |k: &str| order.iter().position(|o| *o == k).unwrap_or(order.len());
        self.entries.sort_by_key(|(k, _)| rank(k));
    }
}

impl FromIterator<(String, Value)> for Mapping {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Mapping::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Extend<(String, Value)> for Mapping {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<'a> IntoIterator for &'a Mapping {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Mapping {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A parsed YAML node.
///
/// Scalars are resolved with the Ansible-friendly schema: YAML 1.2 core types
/// plus YAML 1.1 booleans (`yes`/`no`/`on`/`off`), because real Ansible
/// content relies on them.
///
/// # Examples
///
/// ```
/// use wisdom_yaml::Value;
///
/// let v = wisdom_yaml::parse("enabled: yes\ncount: 3\n")?;
/// let m = v.as_map().expect("mapping");
/// assert_eq!(m.get("enabled"), Some(&Value::Bool(true)));
/// assert_eq!(m.get("count"), Some(&Value::Int(3)));
/// # Ok::<(), wisdom_yaml::ParseYamlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`, `~`, or an empty node.
    #[default]
    Null,
    /// `true` / `false` (also `yes`/`no`/`on`/`off` in any common casing).
    Bool(bool),
    /// A 64-bit signed integer (decimal, `0x…`, or `0o…`).
    Int(i64),
    /// A finite or special (`.inf`, `.nan`) floating point number.
    Float(f64),
    /// Any other scalar.
    Str(String),
    /// A block or flow sequence.
    Seq(Vec<Value>),
    /// A block or flow mapping with string keys.
    Map(Mapping),
}

impl Value {
    /// Returns the string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float` (or the exact value of an `Int`).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the sequence if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the mapping if this is a `Map`.
    pub fn as_map(&self) -> Option<&Mapping> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the mapping mutably if this is a `Map`.
    pub fn as_map_mut(&mut self) -> Option<&mut Mapping> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this node is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the scalar the way the canonical emitter would render it in
    /// plain (unquoted) position. Collections render in flow style; useful
    /// for diagnostics only.
    pub fn scalar_repr(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.clone(),
            Value::Seq(items) => {
                let inner: Vec<String> = items.iter().map(Value::scalar_repr).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Map(m) => {
                let inner: Vec<String> = m
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k, v.scalar_repr()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.scalar_repr())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Seq(v)
    }
}

impl From<Mapping> for Value {
    fn from(m: Mapping) -> Self {
        Value::Map(m)
    }
}

/// Formats a float so that re-parsing yields a `Float` again (never an `Int`).
pub(crate) fn format_float(f: f64) -> String {
    if f.is_nan() {
        ".nan".to_string()
    } else if f.is_infinite() {
        if f > 0.0 { ".inf" } else { "-.inf" }.to_string()
    } else if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else if f == f.trunc() {
        // Huge integral floats need exponent form so they re-parse as floats
        // rather than overflowing the integer rule into a string.
        format!("{f:e}")
    } else {
        format!("{f}")
    }
}

/// Resolves a plain (unquoted) scalar string to a typed [`Value`], following
/// the YAML 1.2 core schema plus YAML 1.1 booleans.
pub(crate) fn resolve_plain_scalar(s: &str) -> Value {
    let t = s.trim();
    if t.is_empty() || t == "~" {
        return Value::Null;
    }
    match t {
        "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "TRUE" | "yes" | "Yes" | "YES" | "on" | "On" | "ON" => {
            return Value::Bool(true)
        }
        "false" | "False" | "FALSE" | "no" | "No" | "NO" | "off" | "Off" | "OFF" => {
            return Value::Bool(false)
        }
        ".inf" | ".Inf" | ".INF" | "+.inf" => return Value::Float(f64::INFINITY),
        "-.inf" | "-.Inf" | "-.INF" => return Value::Float(f64::NEG_INFINITY),
        ".nan" | ".NaN" | ".NAN" => return Value::Float(f64::NAN),
        _ => {}
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        if let Ok(i) = i64::from_str_radix(hex, 16) {
            return Value::Int(i);
        }
    }
    if let Some(oct) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        if let Ok(i) = i64::from_str_radix(oct, 8) {
            return Value::Int(i);
        }
    }
    if looks_like_int(t) {
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
    }
    if looks_like_float(t) {
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
    }
    Value::Str(t.to_string())
}

fn looks_like_int(t: &str) -> bool {
    let body = t.strip_prefix(['+', '-']).unwrap_or(t);
    !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit())
}

fn looks_like_float(t: &str) -> bool {
    let body = t.strip_prefix(['+', '-']).unwrap_or(t);
    if body.is_empty() {
        return false;
    }
    let mut saw_digit = false;
    let mut saw_dot = false;
    let mut saw_exp = false;
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => saw_digit = true,
            b'.' if !saw_dot && !saw_exp => saw_dot = true,
            b'e' | b'E' if saw_digit && !saw_exp => {
                saw_exp = true;
                if i + 1 < bytes.len() && (bytes[i + 1] == b'+' || bytes[i + 1] == b'-') {
                    i += 1;
                }
            }
            _ => return false,
        }
        i += 1;
    }
    saw_digit && (saw_dot || saw_exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_preserves_insertion_order() {
        let mut m = Mapping::new();
        m.insert("b".into(), Value::Int(1));
        m.insert("a".into(), Value::Int(2));
        m.insert("c".into(), Value::Int(3));
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, ["b", "a", "c"]);
    }

    #[test]
    fn mapping_insert_replaces_in_place() {
        let mut m = Mapping::new();
        m.insert("a".into(), Value::Int(1));
        m.insert("b".into(), Value::Int(2));
        let old = m.insert("a".into(), Value::Int(9));
        assert_eq!(old, Some(Value::Int(1)));
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::Int(9)));
    }

    #[test]
    fn mapping_remove() {
        let mut m = Mapping::new();
        m.insert("a".into(), Value::Int(1));
        assert_eq!(m.remove("a"), Some(Value::Int(1)));
        assert_eq!(m.remove("a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn sort_by_key_order_moves_listed_keys_first() {
        let mut m = Mapping::new();
        m.insert("when".into(), Value::Str("x".into()));
        m.insert("apt".into(), Value::Null);
        m.insert("name".into(), Value::Str("t".into()));
        m.sort_by_key_order(&["name", "apt"]);
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, ["name", "apt", "when"]);
    }

    #[test]
    fn resolve_plain_nulls_bools() {
        assert_eq!(resolve_plain_scalar(""), Value::Null);
        assert_eq!(resolve_plain_scalar("~"), Value::Null);
        assert_eq!(resolve_plain_scalar("null"), Value::Null);
        assert_eq!(resolve_plain_scalar("yes"), Value::Bool(true));
        assert_eq!(resolve_plain_scalar("Off"), Value::Bool(false));
        assert_eq!(resolve_plain_scalar("True"), Value::Bool(true));
    }

    #[test]
    fn resolve_plain_numbers() {
        assert_eq!(resolve_plain_scalar("42"), Value::Int(42));
        assert_eq!(resolve_plain_scalar("-7"), Value::Int(-7));
        assert_eq!(resolve_plain_scalar("0x1F"), Value::Int(31));
        assert_eq!(resolve_plain_scalar("0o17"), Value::Int(15));
        assert_eq!(resolve_plain_scalar("2.5"), Value::Float(2.5));
        assert_eq!(resolve_plain_scalar("1e3"), Value::Float(1000.0));
        assert_eq!(resolve_plain_scalar("-0.5"), Value::Float(-0.5));
    }

    #[test]
    fn resolve_plain_strings() {
        assert_eq!(
            resolve_plain_scalar("openssh-server"),
            Value::Str("openssh-server".into())
        );
        assert_eq!(resolve_plain_scalar("1.2.3"), Value::Str("1.2.3".into()));
        assert_eq!(
            resolve_plain_scalar("{{ item }}"),
            Value::Str("{{ item }}".into())
        );
        // versions with leading zeros after dots stay strings
        assert_eq!(resolve_plain_scalar("1.0.0"), Value::Str("1.0.0".into()));
    }

    #[test]
    fn float_format_round_trips_to_float() {
        for f in [1.0, -3.0, 0.5, 1e20, 123.456] {
            let s = format_float(f);
            assert_eq!(resolve_plain_scalar(&s), Value::Float(f), "for {s}");
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }

    #[test]
    fn display_flow_repr() {
        let mut m = Mapping::new();
        m.insert("a".into(), Value::Int(1));
        let v = Value::Seq(vec![Value::Map(m), Value::Bool(false)]);
        assert_eq!(v.to_string(), "[{a: 1}, false]");
    }
}
