//! Recursive-descent block parser over logical lines.

use crate::error::ParseYamlError;
use crate::lexer::{count_indent, strip_trailing_comment};
use crate::value::{resolve_plain_scalar, Mapping, Value};

/// Parses a single YAML document.
///
/// An empty stream parses as [`Value::Null`]. A leading `---` marker and a
/// trailing `...` marker are accepted.
///
/// # Errors
///
/// Returns [`ParseYamlError`] on malformed input, on unsupported YAML
/// features (anchors/aliases/tags/complex keys), or when the stream contains
/// more than one document (use [`parse_documents`] for streams).
///
/// # Examples
///
/// ```
/// let v = wisdom_yaml::parse("---\nhosts: all\n")?;
/// assert!(v.as_map().is_some());
/// # Ok::<(), wisdom_yaml::ParseYamlError>(())
/// ```
pub fn parse(src: &str) -> Result<Value, ParseYamlError> {
    let mut docs = parse_documents(src)?;
    match docs.len() {
        0 => Ok(Value::Null),
        1 => Ok(docs.remove(0)),
        n => Err(ParseYamlError::new(
            0,
            format!("stream contains {n} documents; use parse_documents"),
        )),
    }
}

/// Parses a (possibly multi-document) YAML stream.
///
/// Documents are separated by `---` lines; `...` ends a document.
///
/// # Errors
///
/// Returns [`ParseYamlError`] on malformed input or unsupported features.
///
/// # Examples
///
/// ```
/// let docs = wisdom_yaml::parse_documents("---\na: 1\n---\nb: 2\n")?;
/// assert_eq!(docs.len(), 2);
/// # Ok::<(), wisdom_yaml::ParseYamlError>(())
/// ```
pub fn parse_documents(src: &str) -> Result<Vec<Value>, ParseYamlError> {
    let mut parser = Parser::new(src)?;
    parser.documents()
}

/// One significant line in the parser's working buffer.
#[derive(Debug, Clone)]
struct SigLine {
    indent: usize,
    content: String,
    number: usize,
}

struct Parser {
    /// Significant (non-blank, non-comment) lines.
    lines: Vec<SigLine>,
    /// All raw source lines (1-based index = number - 1), for block scalars.
    raw: Vec<String>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseYamlError> {
        let mut lines = Vec::new();
        let mut raw = Vec::new();
        for (idx, raw_line) in src.lines().enumerate() {
            let number = idx + 1;
            raw.push(raw_line.to_string());
            let indent = count_indent(raw_line, number)?;
            let body = &raw_line[indent..];
            if body.trim().is_empty() || body.trim_start().starts_with('#') {
                continue;
            }
            if body.starts_with('%') && indent == 0 {
                // %YAML / %TAG directives: tolerated and ignored.
                continue;
            }
            let content = strip_trailing_comment(body).trim_end().to_string();
            if content.is_empty() {
                continue;
            }
            lines.push(SigLine {
                indent,
                content,
                number,
            });
        }
        Ok(Self { lines, raw, pos: 0 })
    }

    fn peek(&self) -> Option<&SigLine> {
        self.lines.get(self.pos)
    }

    fn bump(&mut self) -> SigLine {
        let l = self.lines[self.pos].clone();
        self.pos += 1;
        l
    }

    /// Rewrites the current line in place (used to parse inline `- content`).
    fn replace_current(&mut self, indent: usize, content: String) {
        let l = &mut self.lines[self.pos];
        l.indent = indent;
        l.content = content;
    }

    /// Skips significant lines whose source line number is <= `number`
    /// (after a block scalar body has been consumed verbatim).
    fn skip_through_line(&mut self, number: usize) {
        while self.peek().is_some_and(|l| l.number <= number) {
            self.pos += 1;
        }
    }

    fn documents(&mut self) -> Result<Vec<Value>, ParseYamlError> {
        let mut docs = Vec::new();
        let mut saw_marker = false;
        while let Some(line) = self.peek() {
            if line.indent == 0 && line.content == "---" {
                self.pos += 1;
                saw_marker = true;
                // `---` immediately followed by another marker or EOF is an
                // empty document.
                match self.peek() {
                    None => docs.push(Value::Null),
                    Some(next) if next.indent == 0 && (next.content == "---") => {
                        docs.push(Value::Null)
                    }
                    _ => {}
                }
                continue;
            }
            if line.indent == 0 && line.content == "..." {
                self.pos += 1;
                continue;
            }
            if let Some(rest) = line.content.strip_prefix("--- ") {
                if line.indent == 0 {
                    // Inline document content on the marker line.
                    let rest = rest.trim_start().to_string();
                    let extra = 4 + (line.content.len() - 4 - rest.len());
                    self.replace_current(extra, rest);
                    let v = self.parse_block(1)?;
                    docs.push(v);
                    saw_marker = true;
                    continue;
                }
            }
            let v = self.parse_block(0)?;
            docs.push(v);
        }
        if docs.is_empty() && saw_marker {
            docs.push(Value::Null);
        }
        Ok(docs)
    }

    /// Parses the next block node whose lines are indented at least
    /// `min_indent` columns. Returns `Null` when no such node exists.
    fn parse_block(&mut self, min_indent: usize) -> Result<Value, ParseYamlError> {
        let Some(first) = self.peek() else {
            return Ok(Value::Null);
        };
        if first.indent < min_indent || self.at_document_boundary() {
            return Ok(Value::Null);
        }
        let indent = first.indent;
        let content = first.content.clone();
        if content == "-" || content.starts_with("- ") {
            self.parse_seq(indent)
        } else if split_key(&content, first.number)?.is_some() {
            self.parse_map(indent)
        } else {
            self.parse_scalar_lines(indent)
        }
    }

    fn at_document_boundary(&self) -> bool {
        self.peek().is_some_and(|l| {
            l.indent == 0
                && (l.content == "---" || l.content == "..." || l.content.starts_with("--- "))
        })
    }

    fn parse_seq(&mut self, indent: usize) -> Result<Value, ParseYamlError> {
        let mut items = Vec::new();
        while let Some(line) = self.peek() {
            if self.at_document_boundary() || line.indent != indent {
                break;
            }
            let number = line.number;
            if line.content == "-" {
                self.pos += 1;
                items.push(self.parse_block(indent + 1)?);
            } else if let Some(rest) = line.content.strip_prefix("- ") {
                let rest_trimmed = rest.trim_start();
                let offset = indent + 2 + (rest.len() - rest_trimmed.len());
                if let Some(header) = block_scalar_header(rest_trimmed) {
                    self.pos += 1;
                    items.push(self.parse_block_scalar(indent, header, number)?);
                } else {
                    let rest_owned = rest_trimmed.to_string();
                    self.replace_current(offset, rest_owned);
                    items.push(self.parse_block(indent + 1)?);
                }
            } else {
                break;
            }
        }
        Ok(Value::Seq(items))
    }

    fn parse_map(&mut self, indent: usize) -> Result<Value, ParseYamlError> {
        let mut map = Mapping::new();
        while let Some(line) = self.peek() {
            if self.at_document_boundary() || line.indent != indent {
                break;
            }
            let number = line.number;
            let content = line.content.clone();
            let Some((key_raw, rest)) = split_key(&content, number)? else {
                break;
            };
            let key = parse_key(key_raw, number)?;
            if map.contains_key(&key) {
                return Err(ParseYamlError::new(
                    number,
                    format!("duplicate mapping key {key:?}"),
                ));
            }
            let rest = rest.trim();
            if rest.is_empty() {
                self.pos += 1;
                // Value may be a deeper block, or a sequence at the same
                // indent (zero-indented sequences are idiomatic Ansible).
                let value = match self.peek() {
                    Some(next)
                        if !self.at_document_boundary()
                            && next.indent == indent
                            && (next.content == "-" || next.content.starts_with("- ")) =>
                    {
                        self.parse_seq(indent)?
                    }
                    Some(next) if !self.at_document_boundary() && next.indent > indent => {
                        self.parse_block(indent + 1)?
                    }
                    _ => Value::Null,
                };
                map.insert(key, value);
            } else if let Some(header) = block_scalar_header(rest) {
                self.pos += 1;
                let value = self.parse_block_scalar(indent, header, number)?;
                map.insert(key, value);
            } else {
                self.pos += 1;
                let mut value = parse_inline_value(rest, number)?;
                // Plain multi-line scalar continuation: deeper lines that are
                // not themselves structures get folded in with spaces.
                if matches!(value, Value::Str(_)) && !is_quoted_or_flow(rest) {
                    let mut folded = rest.to_string();
                    let mut extended = false;
                    while let Some(next) = self.peek() {
                        if self.at_document_boundary()
                            || next.indent <= indent
                            || next.content.starts_with("- ")
                            || next.content == "-"
                            || split_key(&next.content, next.number)?.is_some()
                        {
                            break;
                        }
                        folded.push(' ');
                        folded.push_str(next.content.trim());
                        extended = true;
                        self.pos += 1;
                    }
                    if extended {
                        value = Value::Str(folded);
                    }
                }
                map.insert(key, value);
            }
        }
        Ok(Value::Map(map))
    }

    fn parse_scalar_lines(&mut self, indent: usize) -> Result<Value, ParseYamlError> {
        let line = self.bump();
        if let Some(header) = block_scalar_header(&line.content) {
            return self.parse_block_scalar(indent.saturating_sub(1), header, line.number);
        }
        let mut text = line.content;
        // Fold plain multi-line scalars.
        while let Some(next) = self.peek() {
            if self.at_document_boundary()
                || next.indent < indent
                || next.content.starts_with("- ")
                || split_key(&next.content, next.number)?.is_some()
            {
                break;
            }
            text.push(' ');
            text.push_str(next.content.trim());
            self.pos += 1;
        }
        parse_inline_value(&text, line.number)
    }

    /// Consumes the raw body of a block scalar whose header line sits at
    /// `parent_indent` and source line `header_number`.
    fn parse_block_scalar(
        &mut self,
        parent_indent: usize,
        header: BlockHeader,
        header_number: usize,
    ) -> Result<Value, ParseYamlError> {
        let mut body: Vec<&str> = Vec::new();
        let mut last_number = header_number;
        for (idx, raw) in self.raw.iter().enumerate().skip(header_number) {
            let number = idx + 1;
            if raw.trim().is_empty() {
                body.push("");
                last_number = number;
                continue;
            }
            let ind = count_indent(raw, number)?;
            if ind <= parent_indent {
                break;
            }
            body.push(raw);
            last_number = number;
        }
        let block_indent = match header.explicit_indent {
            Some(d) => parent_indent + d,
            None => body
                .iter()
                .find(|l| !l.is_empty())
                .map(|l| l.len() - l.trim_start_matches(' ').len())
                .unwrap_or(parent_indent + 1),
        };
        let mut lines: Vec<String> = Vec::new();
        for l in &body {
            if l.len() <= block_indent {
                lines.push(l.trim_start_matches(' ').to_string());
            } else {
                lines.push(l[block_indent..].to_string());
            }
        }
        // Every content line contributes a trailing newline; chomping then
        // decides how many survive at the very end.
        let mut text = if header.folded {
            fold_lines(&lines)
        } else if lines.is_empty() {
            String::new()
        } else {
            let mut t = lines.join("\n");
            t.push('\n');
            t
        };
        match header.chomp {
            Chomp::Strip => {
                while text.ends_with('\n') {
                    text.pop();
                }
            }
            Chomp::Clip => {
                while text.ends_with('\n') {
                    text.pop();
                }
                if !text.is_empty() {
                    text.push('\n');
                }
            }
            Chomp::Keep => {}
        }
        self.skip_through_line(last_number);
        Ok(Value::Str(text))
    }
}

fn fold_lines(lines: &[String]) -> String {
    let mut out = String::new();
    let mut prev_blank = true; // treat start as paragraph boundary
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            out.push('\n');
            prev_blank = true;
        } else {
            if i > 0 && !prev_blank {
                out.push(' ');
            }
            out.push_str(line);
            prev_blank = false;
        }
    }
    out.push('\n');
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chomp {
    Strip,
    Clip,
    Keep,
}

#[derive(Debug, Clone, Copy)]
struct BlockHeader {
    folded: bool,
    chomp: Chomp,
    explicit_indent: Option<usize>,
}

/// Recognizes a block scalar header (`|`, `>`, with optional chomping
/// indicator and explicit indentation digit in either order).
fn block_scalar_header(text: &str) -> Option<BlockHeader> {
    let mut chars = text.chars();
    let first = chars.next()?;
    let folded = match first {
        '|' => false,
        '>' => true,
        _ => return None,
    };
    let mut chomp = Chomp::Clip;
    let mut explicit_indent = None;
    for c in chars {
        match c {
            '-' => chomp = Chomp::Strip,
            '+' => chomp = Chomp::Keep,
            '1'..='9' => explicit_indent = Some(c as usize - '0' as usize),
            _ => return None,
        }
    }
    Some(BlockHeader {
        folded,
        chomp,
        explicit_indent,
    })
}

/// Splits a mapping line into `(raw_key, rest_after_colon)`.
/// Returns `Ok(None)` if the line is not a mapping entry.
fn split_key(content: &str, number: usize) -> Result<Option<(&str, &str)>, ParseYamlError> {
    let bytes = content.as_bytes();
    if bytes.is_empty() {
        return Ok(None);
    }
    // Quoted key.
    if bytes[0] == b'"' || bytes[0] == b'\'' {
        let quote = bytes[0];
        let mut i = 1;
        while i < bytes.len() {
            if bytes[i] == b'\\' && quote == b'"' {
                i += 2;
                continue;
            }
            if bytes[i] == quote {
                if quote == b'\'' && i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                    i += 2;
                    continue;
                }
                // Found closing quote; expect optional spaces then ':'.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] == b' ' {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b':' {
                    let after = j + 1;
                    if after == bytes.len() || bytes[after] == b' ' {
                        return Ok(Some((&content[..=i], &content[after..])));
                    }
                }
                return Ok(None);
            }
            i += 1;
        }
        return Err(ParseYamlError::new(number, "unterminated quoted key"));
    }
    // Plain key: find ':' followed by space or EOL, outside quotes/brackets.
    let mut depth = 0i32;
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'\\' if in_double => i += 1,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth -= 1,
            b':' if !in_single
                && !in_double
                && depth == 0
                && (i + 1 == bytes.len() || bytes[i + 1] == b' ') =>
            {
                let key = &content[..i];
                // A key cannot itself be a flow collection opener.
                if key.starts_with('[') || key.starts_with('{') {
                    return Ok(None);
                }
                return Ok(Some((key, &content[i + 1..])));
            }
            _ => {}
        }
        i += 1;
    }
    Ok(None)
}

fn parse_key(raw: &str, number: usize) -> Result<String, ParseYamlError> {
    let t = raw.trim();
    if t.starts_with('?') {
        return Err(ParseYamlError::new(number, "complex keys are unsupported"));
    }
    if t.starts_with('"') || t.starts_with('\'') {
        match parse_inline_value(t, number)? {
            Value::Str(s) => Ok(s),
            other => Ok(other.scalar_repr()),
        }
    } else {
        Ok(t.to_string())
    }
}

fn is_quoted_or_flow(text: &str) -> bool {
    matches!(
        text.trim_start().as_bytes().first(),
        Some(b'"' | b'\'' | b'[' | b'{')
    )
}

/// Parses a single-line value: a flow collection, a quoted scalar, or a plain
/// scalar with type resolution.
pub(crate) fn parse_inline_value(text: &str, number: usize) -> Result<Value, ParseYamlError> {
    let t = text.trim();
    if t.is_empty() {
        return Ok(Value::Null);
    }
    match t.as_bytes()[0] {
        b'&' | b'*' => {
            return Err(ParseYamlError::new(
                number,
                "anchors and aliases are unsupported",
            ))
        }
        b'!' => {
            return Err(ParseYamlError::new(number, "tags are unsupported"));
        }
        b'"' | b'\'' => {
            let mut cursor = Cursor::new(t, number);
            let v = cursor.quoted_string()?;
            cursor.skip_ws();
            if !cursor.at_end() {
                return Err(ParseYamlError::new(
                    number,
                    "unexpected trailing content after quoted scalar",
                ));
            }
            return Ok(Value::Str(v));
        }
        b'[' | b'{' => {
            let mut cursor = Cursor::new(t, number);
            match cursor.flow_value().and_then(|v| {
                cursor.skip_ws();
                if cursor.at_end() {
                    Ok(v)
                } else {
                    Err(ParseYamlError::new(number, "trailing content"))
                }
            }) {
                Ok(v) => return Ok(v),
                // Jinja templates like `{{ var }}` are not valid flow YAML
                // but ubiquitous in Ansible; fall back to a plain string.
                Err(_) if t.starts_with("{{") || t.starts_with("{%") => {
                    return Ok(Value::Str(t.to_string()))
                }
                Err(e) => return Err(e),
            }
        }
        _ => {}
    }
    Ok(resolve_plain_scalar(t))
}

/// Character cursor for flow-style parsing within a single line.
struct Cursor<'a> {
    bytes: &'a [u8],
    text: &'a str,
    i: usize,
    number: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, number: usize) -> Self {
        Self {
            bytes: text.as_bytes(),
            text,
            i: 0,
            number,
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek() == Some(b' ') {
            self.i += 1;
        }
    }

    fn err(&self, msg: &str) -> ParseYamlError {
        ParseYamlError::new(self.number, format!("{msg} (column {})", self.i + 1))
    }

    fn flow_value(&mut self) -> Result<Value, ParseYamlError> {
        self.skip_ws();
        match self.peek() {
            Some(b'[') => self.flow_seq(),
            Some(b'{') => self.flow_map(),
            Some(b'"') | Some(b'\'') => Ok(Value::Str(self.quoted_string()?)),
            Some(_) => Ok(resolve_plain_scalar(self.flow_plain())),
            None => Ok(Value::Null),
        }
    }

    fn flow_seq(&mut self) -> Result<Value, ParseYamlError> {
        self.i += 1; // consume '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                None => return Err(self.err("unterminated flow sequence")),
                _ => {}
            }
            items.push(self.flow_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {}
                _ => return Err(self.err("expected ',' or ']' in flow sequence")),
            }
        }
    }

    fn flow_map(&mut self) -> Result<Value, ParseYamlError> {
        self.i += 1; // consume '{'
        let mut map = Mapping::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Map(map));
                }
                None => return Err(self.err("unterminated flow mapping")),
                _ => {}
            }
            let key = match self.peek() {
                Some(b'"') | Some(b'\'') => self.quoted_string()?,
                _ => self.flow_plain_key().to_string(),
            };
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' in flow mapping"));
            }
            self.i += 1;
            let value = self.flow_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {}
                _ => return Err(self.err("expected ',' or '}' in flow mapping")),
            }
        }
    }

    /// A plain scalar inside a flow context: runs until , ] } or ':'+space.
    fn flow_plain(&mut self) -> &'a str {
        let start = self.i;
        while let Some(b) = self.peek() {
            match b {
                b',' | b']' | b'}' => break,
                b':' if matches!(self.bytes.get(self.i + 1), Some(b' ') | None) => break,
                _ => self.i += 1,
            }
        }
        self.text[start..self.i].trim()
    }

    /// A plain key inside a flow mapping: runs until ':'.
    fn flow_plain_key(&mut self) -> &'a str {
        let start = self.i;
        while let Some(b) = self.peek() {
            if b == b':' || b == b',' || b == b'}' {
                break;
            }
            self.i += 1;
        }
        self.text[start..self.i].trim()
    }

    fn quoted_string(&mut self) -> Result<String, ParseYamlError> {
        let quote = self.peek().expect("caller checked quote");
        self.i += 1;
        let mut out = String::new();
        while let Some(b) = self.peek() {
            if b == quote {
                if quote == b'\'' && self.bytes.get(self.i + 1) == Some(&b'\'') {
                    out.push('\'');
                    self.i += 2;
                    continue;
                }
                self.i += 1;
                return Ok(out);
            }
            if b == b'\\' && quote == b'"' {
                self.i += 1;
                match self.peek() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'0') => out.push('\0'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(b'\'') => out.push('\''),
                    Some(other) => {
                        out.push('\\');
                        out.push(other as char);
                    }
                    None => return Err(self.err("dangling escape")),
                }
                self.i += 1;
                continue;
            }
            // Copy one UTF-8 character.
            let ch_len = utf8_len(b);
            out.push_str(&self.text[self.i..self.i + ch_len]);
            self.i += ch_len;
        }
        Err(self.err("unterminated quoted scalar"))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn map_get<'a>(v: &'a Value, k: &str) -> &'a Value {
        v.as_map().unwrap().get(k).unwrap()
    }

    #[test]
    fn simple_mapping() {
        let v = parse("name: Install nginx\nstate: present\ncount: 2\n").unwrap();
        assert_eq!(map_get(&v, "name").as_str(), Some("Install nginx"));
        assert_eq!(map_get(&v, "count").as_int(), Some(2));
    }

    #[test]
    fn nested_mapping() {
        let v = parse("apt:\n  name: nginx\n  state: latest\n").unwrap();
        let apt = map_get(&v, "apt");
        assert_eq!(
            apt.as_map().unwrap().get("name").unwrap().as_str(),
            Some("nginx")
        );
    }

    #[test]
    fn top_level_sequence_of_maps() {
        let v = parse("- name: a\n  cmd: ls\n- name: b\n").unwrap();
        let s = v.as_seq().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s[0].as_map().unwrap().get("cmd").unwrap().as_str(),
            Some("ls")
        );
        assert_eq!(s[1].as_map().unwrap().len(), 1);
    }

    #[test]
    fn zero_indented_sequence_under_key() {
        let v = parse("tasks:\n- name: one\n- name: two\n").unwrap();
        let tasks = map_get(&v, "tasks").as_seq().unwrap();
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn indented_sequence_under_key() {
        let v = parse("tasks:\n  - name: one\n  - name: two\n").unwrap();
        let tasks = map_get(&v, "tasks").as_seq().unwrap();
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn paper_figure_1_playbook() {
        let src = "---\n- hosts: servers\n  tasks:\n    - name: Install SSH server\n      ansible.builtin.apt:\n        name: openssh-server\n        state: present\n    - name: Start SSH server\n      ansible.builtin.service:\n        name: ssh\n        state: started\n";
        let v = parse(src).unwrap();
        let plays = v.as_seq().unwrap();
        assert_eq!(plays.len(), 1);
        let play = plays[0].as_map().unwrap();
        assert_eq!(play.get("hosts").unwrap().as_str(), Some("servers"));
        let tasks = play.get("tasks").unwrap().as_seq().unwrap();
        assert_eq!(tasks.len(), 2);
        let apt = tasks[0]
            .as_map()
            .unwrap()
            .get("ansible.builtin.apt")
            .unwrap();
        assert_eq!(
            apt.as_map().unwrap().get("state").unwrap().as_str(),
            Some("present")
        );
    }

    #[test]
    fn flow_collections() {
        let v = parse("ports: [80, 443]\nopts: {retries: 3, delay: 5}\n").unwrap();
        assert_eq!(
            map_get(&v, "ports").as_seq().unwrap(),
            &[Value::Int(80), Value::Int(443)]
        );
        let opts = map_get(&v, "opts").as_map().unwrap();
        assert_eq!(opts.get("retries").unwrap().as_int(), Some(3));
    }

    #[test]
    fn nested_flow() {
        let v = parse("matrix: [[1, 2], [3, 4]]\n").unwrap();
        let m = map_get(&v, "matrix").as_seq().unwrap();
        assert_eq!(m[1].as_seq().unwrap()[0], Value::Int(3));
    }

    #[test]
    fn quoted_scalars() {
        let v = parse("a: \"hello: world\"\nb: 'it''s fine'\nc: \"line\\nbreak\"\n").unwrap();
        assert_eq!(map_get(&v, "a").as_str(), Some("hello: world"));
        assert_eq!(map_get(&v, "b").as_str(), Some("it's fine"));
        assert_eq!(map_get(&v, "c").as_str(), Some("line\nbreak"));
    }

    #[test]
    fn jinja_template_values() {
        let v =
            parse("src: '{{ item.src }}'\ndest: /etc/{{ name }}.conf\nraw: {{ var }}\n").unwrap();
        assert_eq!(map_get(&v, "src").as_str(), Some("{{ item.src }}"));
        assert_eq!(map_get(&v, "dest").as_str(), Some("/etc/{{ name }}.conf"));
        assert_eq!(map_get(&v, "raw").as_str(), Some("{{ var }}"));
    }

    #[test]
    fn literal_block_scalar() {
        let v = parse("script: |\n  line one\n  line two\nafter: 1\n").unwrap();
        assert_eq!(map_get(&v, "script").as_str(), Some("line one\nline two\n"));
        assert_eq!(map_get(&v, "after").as_int(), Some(1));
    }

    #[test]
    fn literal_block_strip_and_keep() {
        let v = parse("a: |-\n  x\n\nb: |+\n  y\n\nc: 1\n").unwrap();
        assert_eq!(map_get(&v, "a").as_str(), Some("x"));
        assert_eq!(map_get(&v, "b").as_str(), Some("y\n\n"));
        assert_eq!(map_get(&v, "c").as_int(), Some(1));
    }

    #[test]
    fn folded_block_scalar() {
        let v = parse("msg: >\n  hello\n  world\n\n  new para\n").unwrap();
        assert_eq!(map_get(&v, "msg").as_str(), Some("hello world\nnew para\n"));
    }

    #[test]
    fn block_scalar_preserves_inner_structure() {
        let v =
            parse("cmd: |\n  if [ -f /x ]; then\n    echo hi  # not a comment\n  fi\n").unwrap();
        assert_eq!(
            map_get(&v, "cmd").as_str(),
            Some("if [ -f /x ]; then\n  echo hi  # not a comment\nfi\n")
        );
    }

    #[test]
    fn block_scalar_in_sequence_item() {
        let v = parse("- |\n  body\n- after\n").unwrap();
        let s = v.as_seq().unwrap();
        assert_eq!(s[0].as_str(), Some("body\n"));
        assert_eq!(s[1].as_str(), Some("after"));
    }

    #[test]
    fn comments_are_ignored() {
        let v = parse("# header\na: 1 # trailing\n# middle\nb: 2\n").unwrap();
        assert_eq!(map_get(&v, "a").as_int(), Some(1));
        assert_eq!(map_get(&v, "b").as_int(), Some(2));
    }

    #[test]
    fn multi_document_stream() {
        let docs = parse_documents("---\na: 1\n---\n- x\n- y\n").unwrap();
        assert_eq!(docs.len(), 2);
        assert!(docs[0].as_map().is_some());
        assert_eq!(docs[1].as_seq().unwrap().len(), 2);
    }

    #[test]
    fn document_end_marker() {
        let docs = parse_documents("---\na: 1\n...\n").unwrap();
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("\n\n# only comments\n").unwrap(), Value::Null);
        assert_eq!(parse("---\n").unwrap(), Value::Null);
    }

    #[test]
    fn null_values() {
        let v = parse("a:\nb: ~\nc: null\n").unwrap();
        assert!(map_get(&v, "a").is_null());
        assert!(map_get(&v, "b").is_null());
        assert!(map_get(&v, "c").is_null());
    }

    #[test]
    fn nested_sequence_items() {
        let v = parse("-\n  - 1\n  - 2\n- 3\n").unwrap();
        let s = v.as_seq().unwrap();
        assert_eq!(s[0].as_seq().unwrap().len(), 2);
        assert_eq!(s[1].as_int(), Some(3));
    }

    #[test]
    fn inline_nested_sequence() {
        let v = parse("- - 1\n  - 2\n- 3\n").unwrap();
        let s = v.as_seq().unwrap();
        assert_eq!(s[0].as_seq().unwrap().len(), 2);
        assert_eq!(s[1].as_int(), Some(3));
    }

    #[test]
    fn key_with_colon_no_space() {
        let v = parse("url: http://example.com:8080/x\n").unwrap();
        assert_eq!(
            map_get(&v, "url").as_str(),
            Some("http://example.com:8080/x")
        );
    }

    #[test]
    fn quoted_key() {
        let v = parse("\"weird: key\": 1\n'other': 2\n").unwrap();
        assert_eq!(map_get(&v, "weird: key").as_int(), Some(1));
        assert_eq!(map_get(&v, "other").as_int(), Some(2));
    }

    #[test]
    fn duplicate_key_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn anchors_rejected() {
        assert!(parse("a: &anchor 1\n").is_err());
        assert!(parse("a: *alias\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse("a: \"oops\n").is_err());
        assert!(parse("a: [1, 2\n").is_err());
    }

    #[test]
    fn multiline_plain_scalar_folds() {
        let v = parse("desc: first part\n  second part\nnext: 1\n").unwrap();
        assert_eq!(map_get(&v, "desc").as_str(), Some("first part second part"));
        assert_eq!(map_get(&v, "next").as_int(), Some(1));
    }

    #[test]
    fn vars_with_mixed_types() {
        let v = parse(
            "vars:\n  http_port: 8080\n  ratio: 0.75\n  debug: false\n  tags:\n    - web\n    - prod\n",
        )
        .unwrap();
        let vars = map_get(&v, "vars").as_map().unwrap();
        assert_eq!(vars.get("http_port").unwrap().as_int(), Some(8080));
        assert_eq!(vars.get("ratio").unwrap().as_float(), Some(0.75));
        assert_eq!(vars.get("debug").unwrap().as_bool(), Some(false));
        assert_eq!(vars.get("tags").unwrap().as_seq().unwrap().len(), 2);
    }

    #[test]
    fn deeply_nested_structure() {
        let v = parse("a:\n  b:\n    c:\n      - d:\n          e: 1\n").unwrap();
        let e = v
            .as_map()
            .unwrap()
            .get("a")
            .unwrap()
            .as_map()
            .unwrap()
            .get("b")
            .unwrap()
            .as_map()
            .unwrap()
            .get("c")
            .unwrap()
            .as_seq()
            .unwrap()[0]
            .as_map()
            .unwrap()
            .get("d")
            .unwrap()
            .as_map()
            .unwrap()
            .get("e")
            .unwrap()
            .as_int();
        assert_eq!(e, Some(1));
    }

    #[test]
    fn directive_lines_ignored() {
        let v = parse("%YAML 1.2\n---\na: 1\n").unwrap();
        assert_eq!(map_get(&v, "a").as_int(), Some(1));
    }
}
