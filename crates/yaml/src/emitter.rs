//! Canonical block-style YAML emission in the Ansible community style:
//! two-space indentation, sequences indented under their key, compact
//! `- key: value` sequence items, literal blocks for multi-line strings.

use crate::value::{format_float, resolve_plain_scalar, Mapping, Value};

/// Options controlling [`emit`].
///
/// # Examples
///
/// ```
/// use wisdom_yaml::{EmitOptions, Value};
///
/// let opts = EmitOptions { start_marker: true, ..EmitOptions::default() };
/// let text = opts.emit(&Value::Int(1));
/// assert_eq!(text, "---\n1\n");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitOptions {
    /// Number of spaces per nesting level (default 2, the Ansible style).
    pub indent: usize,
    /// Whether to prepend the `---` document start marker.
    pub start_marker: bool,
}

impl Default for EmitOptions {
    fn default() -> Self {
        Self {
            indent: 2,
            start_marker: false,
        }
    }
}

impl EmitOptions {
    /// Renders `value` as a YAML document under these options.
    pub fn emit(&self, value: &Value) -> String {
        let mut out = String::new();
        if self.start_marker {
            out.push_str("---\n");
        }
        let mut e = Emitter {
            step: self.indent.max(1),
            out: &mut out,
        };
        e.node(value, 0);
        out
    }
}

/// Renders `value` as a YAML document with default options
/// (2-space indent, no `---` marker).
///
/// The output is guaranteed to re-parse to an equal [`Value`].
///
/// # Examples
///
/// ```
/// use wisdom_yaml::{Mapping, Value};
///
/// let mut m = Mapping::new();
/// m.insert("state".to_string(), Value::Str("present".to_string()));
/// assert_eq!(wisdom_yaml::emit(&Value::Map(m)), "state: present\n");
/// ```
pub fn emit(value: &Value) -> String {
    EmitOptions::default().emit(value)
}

/// Renders a multi-document stream separated by `---` markers.
///
/// # Examples
///
/// ```
/// use wisdom_yaml::Value;
///
/// let s = wisdom_yaml::emit_documents(&[Value::Int(1), Value::Int(2)]);
/// assert_eq!(s, "---\n1\n---\n2\n");
/// ```
pub fn emit_documents(docs: &[Value]) -> String {
    let mut out = String::new();
    for doc in docs {
        out.push_str("---\n");
        let mut e = Emitter {
            step: 2,
            out: &mut out,
        };
        e.node(doc, 0);
    }
    out
}

struct Emitter<'a> {
    step: usize,
    out: &'a mut String,
}

impl Emitter<'_> {
    fn pad(&mut self, indent: usize) {
        for _ in 0..indent {
            self.out.push(' ');
        }
    }

    /// Emits a node at top level or as the body under a key/dash that has
    /// already established `indent` columns and ended its line.
    fn node(&mut self, v: &Value, indent: usize) {
        match v {
            Value::Seq(items) if !items.is_empty() => self.seq(items, indent),
            Value::Map(m) if !m.is_empty() => self.map(m, indent),
            other => {
                self.pad(indent);
                self.scalar_line(other, indent);
                self.out.push('\n');
            }
        }
    }

    fn seq(&mut self, items: &[Value], indent: usize) {
        for item in items {
            self.pad(indent);
            self.out.push('-');
            match item {
                Value::Map(m) if !m.is_empty() => {
                    self.out.push(' ');
                    self.map_inline_first(m, indent + self.step);
                }
                Value::Seq(s) if !s.is_empty() => {
                    self.out.push('\n');
                    self.seq(s, indent + self.step);
                }
                other => {
                    self.out.push(' ');
                    // The parser treats the dash line's indent as the block
                    // scalar parent, so literal bodies hang off `indent`.
                    self.scalar_line(other, indent);
                    self.out.push('\n');
                }
            }
        }
    }

    /// Emits a mapping whose first entry continues the current line
    /// (after `- `), with the remaining entries at `indent`.
    fn map_inline_first(&mut self, m: &Mapping, indent: usize) {
        for (i, (k, v)) in m.iter().enumerate() {
            if i > 0 {
                self.pad(indent);
            }
            self.entry(k, v, indent);
        }
    }

    fn map(&mut self, m: &Mapping, indent: usize) {
        for (k, v) in m.iter() {
            self.pad(indent);
            self.entry(k, v, indent);
        }
    }

    /// Emits `key: …` plus newline(s); cursor is already at the key column.
    fn entry(&mut self, key: &str, v: &Value, indent: usize) {
        self.emit_key(key);
        match v {
            Value::Seq(items) if !items.is_empty() => {
                self.out.push_str(":\n");
                self.seq(items, indent + self.step);
            }
            Value::Map(m) if !m.is_empty() => {
                self.out.push_str(":\n");
                self.map(m, indent + self.step);
            }
            other => {
                self.out.push_str(": ");
                self.scalar_line(other, indent);
                self.out.push('\n');
            }
        }
    }

    fn emit_key(&mut self, key: &str) {
        if plain_key_ok(key) {
            self.out.push_str(key);
        } else {
            self.out.push_str(&double_quote(key));
        }
    }

    /// Emits a scalar (or empty collection) in value position. `indent` is
    /// the indent of the *owner* line, used for literal block bodies.
    fn scalar_line(&mut self, v: &Value, indent: usize) {
        match v {
            Value::Null => self.out.push_str("null"),
            Value::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => self.out.push_str(&i.to_string()),
            Value::Float(f) => self.out.push_str(&format_float(*f)),
            Value::Seq(items) => {
                debug_assert!(items.is_empty());
                self.out.push_str("[]");
            }
            Value::Map(m) => {
                debug_assert!(m.is_empty());
                self.out.push_str("{}");
            }
            Value::Str(s) => self.string_scalar(s, indent),
        }
    }

    fn string_scalar(&mut self, s: &str, indent: usize) {
        if s.contains('\n') && !s.trim_end_matches('\n').is_empty() && literal_block_ok(s) {
            self.literal_block(s, indent);
        } else if needs_quoting(s) {
            self.out.push_str(&double_quote(s));
        } else {
            self.out.push_str(s);
        }
    }

    fn literal_block(&mut self, s: &str, indent: usize) {
        let body_indent = indent + self.step;
        let trailing = s.len() - s.trim_end_matches('\n').len();
        let explicit = s
            .lines()
            .find(|l| !l.is_empty())
            .is_some_and(|l| l.starts_with(' '));
        self.out.push('|');
        if explicit {
            self.out.push_str(&self.step.to_string());
        }
        match trailing {
            0 => self.out.push('-'),
            1 => {}
            _ => self.out.push('+'),
        }
        self.out.push('\n');
        let core = s.trim_end_matches('\n');
        for line in core.split('\n') {
            if line.is_empty() {
                self.out.push('\n');
            } else {
                self.pad(body_indent);
                self.out.push_str(line);
                self.out.push('\n');
            }
        }
        for _ in 2..trailing {
            self.out.push('\n');
        }
        // `|+` keeps every trailing newline: the block ends at the last body
        // line, so a `trailing` of n>=2 needs n-1 blank lines after the core.
        if trailing >= 2 {
            self.out.push('\n');
        }
        // Remove the final '\n' because the caller appends one.
        self.out.pop();
    }
}

/// Whether `s` can appear verbatim as a literal block body (no lines with
/// trailing whitespace, no carriage returns or control characters).
fn literal_block_ok(s: &str) -> bool {
    if s.chars().any(|c| c != '\n' && c != '\t' && c.is_control()) {
        return false;
    }
    // Trailing whitespace would be lost by the comment-free re-read and a
    // leading tab would be an indentation error, so quote those instead.
    s.split('\n')
        .all(|l| l == l.trim_end() && !l.starts_with('\t'))
}

fn plain_key_ok(key: &str) -> bool {
    !key.is_empty() && !needs_quoting(key) && !key.contains(':') && !key.contains('#')
}

/// Whether a single-line string must be quoted to survive re-parsing as the
/// same string.
fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    if s != s.trim() {
        return true;
    }
    if s.contains('\n') || s.chars().any(|c| c.is_control()) {
        return true;
    }
    let first = s.chars().next().expect("non-empty");
    if matches!(
        first,
        '-' | '?'
            | ':'
            | ','
            | '['
            | ']'
            | '{'
            | '}'
            | '#'
            | '&'
            | '*'
            | '!'
            | '|'
            | '>'
            | '\''
            | '"'
            | '%'
            | '@'
            | '`'
    ) {
        // `-la` style flags and jinja `{{` are only safe when they don't
        // collide with structure; be conservative and quote anything that
        // starts with an indicator character.
        return true;
    }
    if s.contains(": ") || s.ends_with(':') || s.contains(" #") {
        return true;
    }
    // Strings that would resolve to a different type must be quoted.
    !matches!(resolve_plain_scalar(s), crate::Value::Str(_))
}

fn double_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, Mapping, Value};

    fn map(pairs: &[(&str, Value)]) -> Value {
        let mut m = Mapping::new();
        for (k, v) in pairs {
            m.insert((*k).to_string(), v.clone());
        }
        Value::Map(m)
    }

    #[test]
    fn simple_mapping_style() {
        let v = map(&[
            ("name", Value::Str("Install nginx".into())),
            ("state", Value::Str("present".into())),
        ]);
        assert_eq!(emit(&v), "name: Install nginx\nstate: present\n");
    }

    #[test]
    fn sequence_of_task_maps_is_compact() {
        let task = map(&[
            ("name", Value::Str("Install SSH server".into())),
            (
                "ansible.builtin.apt",
                map(&[
                    ("name", Value::Str("openssh-server".into())),
                    ("state", Value::Str("present".into())),
                ]),
            ),
        ]);
        let doc = Value::Seq(vec![task]);
        let text = emit(&doc);
        assert_eq!(
            text,
            "- name: Install SSH server\n  ansible.builtin.apt:\n    name: openssh-server\n    state: present\n"
        );
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn start_marker_option() {
        let opts = EmitOptions {
            start_marker: true,
            ..EmitOptions::default()
        };
        assert_eq!(opts.emit(&map(&[("a", Value::Int(1))])), "---\na: 1\n");
    }

    #[test]
    fn quoting_of_type_collisions() {
        let v = map(&[
            ("a", Value::Str("true".into())),
            ("b", Value::Str("123".into())),
            ("c", Value::Str("null".into())),
            ("d", Value::Str("1.5".into())),
        ]);
        let text = emit(&v);
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert!(text.contains("\"true\""));
    }

    #[test]
    fn quoting_of_structure_collisions() {
        for s in [
            "a: b",
            "x #y",
            "- item",
            "[not, flow]",
            "{{ var }}",
            "*star",
        ] {
            let v = map(&[("k", Value::Str(s.into()))]);
            let text = emit(&v);
            assert_eq!(parse(&text).unwrap(), v, "emitted: {text}");
        }
    }

    #[test]
    fn multiline_string_uses_literal_block() {
        let v = map(&[("script", Value::Str("line one\nline two\n".into()))]);
        let text = emit(&v);
        assert_eq!(text, "script: |\n  line one\n  line two\n");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn multiline_without_trailing_newline() {
        let v = map(&[("a", Value::Str("x\ny".into())), ("b", Value::Int(1))]);
        let text = emit(&v);
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("|-"));
    }

    #[test]
    fn multiline_keep_chomping() {
        let v = map(&[("a", Value::Str("x\n\n\n".into())), ("b", Value::Int(1))]);
        let text = emit(&v);
        assert_eq!(parse(&text).unwrap(), v, "emitted:\n{text}");
    }

    #[test]
    fn multiline_with_leading_space_first_line() {
        let v = map(&[("a", Value::Str("  indented\nplain\n".into()))]);
        let text = emit(&v);
        assert_eq!(parse(&text).unwrap(), v, "emitted:\n{text}");
    }

    #[test]
    fn empty_collections_inline() {
        let v = map(&[("s", Value::Seq(vec![])), ("m", Value::Map(Mapping::new()))]);
        assert_eq!(emit(&v), "s: []\nm: {}\n");
    }

    #[test]
    fn nested_sequences() {
        let v = Value::Seq(vec![
            Value::Seq(vec![Value::Int(1), Value::Int(2)]),
            Value::Int(3),
        ]);
        let text = emit(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn odd_keys_are_quoted() {
        let mut m = Mapping::new();
        m.insert("with: colon".into(), Value::Int(1));
        m.insert("".into(), Value::Int(2));
        let v = Value::Map(m);
        let text = emit(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_survive() {
        let v = map(&[("x", Value::Float(1.0)), ("y", Value::Float(0.25))]);
        let text = emit(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn documents_stream() {
        let docs = vec![
            map(&[("a", Value::Int(1))]),
            Value::Seq(vec![Value::Int(2)]),
        ];
        let text = emit_documents(&docs);
        let back = crate::parse_documents(&text).unwrap();
        assert_eq!(back, docs);
    }
}
