//! The Ansible schema linter behind the paper's **Schema Correct** metric.
//!
//! Mirrors the strictness the paper describes for the ansible-lint playbook
//! and task schemas: "quite strict and do not accept some historical forms
//! which are still allowed by Ansible itself". Concretely, in addition to
//! basic shape checks this linter rejects:
//!
//! * legacy `k=v` string arguments for non-free-form modules,
//! * the pre-2.0 `action:` syntax,
//! * unknown modules, unknown module parameters, and missing required
//!   parameters,
//! * keyword values of the wrong shape (`when: {…}`, `register: [a]`, …).
//!
//! A sample can therefore have a perfect Exact Match yet a Schema Correct of
//! 0 (the paper notes exactly this, because the training data was not
//! filtered with these schemas).

use std::fmt;

use wisdom_yaml::Value;

use crate::keywords::{is_block_key, play_keyword, task_keyword, BLOCK_KEYS};
use crate::module_registry::{ModuleRegistry, ParamKind};

/// One schema violation found by the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Location of the problem, e.g. `plays[0].tasks[2].apt`.
    pub path: String,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// What kind of document the linter should expect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintTarget {
    /// Detect automatically: a sequence whose first mapping has `hosts` (or
    /// `import_playbook`) is a playbook, otherwise a task file.
    #[default]
    Auto,
    /// A playbook: sequence of plays.
    Playbook,
    /// A task file: sequence of tasks.
    TaskFile,
    /// A single task mapping (used when scoring one generated task).
    Task,
}

/// Lints YAML text; a YAML syntax error is reported as a violation at `$`.
///
/// # Examples
///
/// ```
/// use wisdom_ansible::{lint_str, LintTarget};
///
/// let good = "- name: Ping\n  ansible.builtin.ping: {}\n";
/// assert!(lint_str(good, LintTarget::Auto).is_empty());
///
/// let bad = "- name: Ping\n  ansible.builtin.ping: {}\n  bogus_keyword: 1\n";
/// assert!(!lint_str(bad, LintTarget::Auto).is_empty());
/// ```
pub fn lint_str(src: &str, target: LintTarget) -> Vec<Violation> {
    match wisdom_yaml::parse(src) {
        Ok(v) => lint_value(&v, target),
        Err(e) => vec![Violation::new("$", format!("yaml syntax error: {e}"))],
    }
}

/// Whether `src` satisfies the schema (no violations): the per-sample
/// **Schema Correct** predicate.
pub fn is_schema_correct(src: &str, target: LintTarget) -> bool {
    lint_str(src, target).is_empty()
}

/// Lints a parsed YAML node.
pub fn lint_value(value: &Value, target: LintTarget) -> Vec<Violation> {
    let mut v = Vec::new();
    let reg = ModuleRegistry::global();
    match target {
        LintTarget::Task => {
            lint_task(value, "$", reg, &mut v);
            return v;
        }
        LintTarget::Playbook => lint_playbook(value, reg, &mut v),
        LintTarget::TaskFile => lint_task_file(value, reg, &mut v),
        LintTarget::Auto => match detect_target(value) {
            LintTarget::Playbook => lint_playbook(value, reg, &mut v),
            _ => lint_task_file(value, reg, &mut v),
        },
    }
    v
}

/// Auto-detects whether a document is a playbook or a task file.
pub fn detect_target(value: &Value) -> LintTarget {
    if let Some(items) = value.as_seq() {
        for item in items {
            if let Some(m) = item.as_map() {
                if m.contains_key("hosts") || m.contains_key("import_playbook") {
                    return LintTarget::Playbook;
                }
            }
        }
    }
    LintTarget::TaskFile
}

fn lint_playbook(value: &Value, reg: &ModuleRegistry, out: &mut Vec<Violation>) {
    let Some(items) = value.as_seq() else {
        out.push(Violation::new("$", "playbook must be a sequence of plays"));
        return;
    };
    if items.is_empty() {
        out.push(Violation::new("$", "playbook is empty"));
        return;
    }
    for (i, item) in items.iter().enumerate() {
        lint_play(item, &format!("plays[{i}]"), reg, out);
    }
}

fn lint_play(value: &Value, path: &str, reg: &ModuleRegistry, out: &mut Vec<Violation>) {
    let Some(map) = value.as_map() else {
        out.push(Violation::new(path, "play must be a mapping"));
        return;
    };
    if map.contains_key("import_playbook") {
        // `- import_playbook: other.yml` entries are standalone.
        for (k, _) in map.iter() {
            if k != "import_playbook" && k != "name" && k != "when" && k != "vars" && k != "tags" {
                out.push(Violation::new(
                    format!("{path}.{k}"),
                    "key not allowed alongside import_playbook",
                ));
            }
        }
        return;
    }
    if !map.contains_key("hosts") {
        out.push(Violation::new(path, "play is missing required key 'hosts'"));
    }
    for (k, v) in map.iter() {
        match k {
            "tasks" | "pre_tasks" | "post_tasks" | "handlers" => {
                let Some(items) = v.as_seq() else {
                    out.push(Violation::new(
                        format!("{path}.{k}"),
                        "must be a list of tasks",
                    ));
                    continue;
                };
                for (i, t) in items.iter().enumerate() {
                    lint_task_or_block(t, &format!("{path}.{k}[{i}]"), reg, out);
                }
            }
            "roles" => {
                let Some(items) = v.as_seq() else {
                    out.push(Violation::new(format!("{path}.roles"), "must be a list"));
                    continue;
                };
                for (i, r) in items.iter().enumerate() {
                    let ok = matches!(r, Value::Str(_))
                        || r.as_map()
                            .is_some_and(|m| m.contains_key("role") || m.contains_key("name"));
                    if !ok {
                        out.push(Violation::new(
                            format!("{path}.roles[{i}]"),
                            "role entry must be a name or a mapping with 'role'",
                        ));
                    }
                }
            }
            other => match play_keyword(other) {
                Some(spec) => {
                    if !v.is_null() && !spec.kinds.accepts(v) {
                        out.push(Violation::new(
                            format!("{path}.{other}"),
                            format!("expected {}", spec.kinds.describe()),
                        ));
                    }
                }
                None => {
                    out.push(Violation::new(
                        format!("{path}.{other}"),
                        "unknown play keyword",
                    ));
                }
            },
        }
    }
}

fn lint_task_file(value: &Value, reg: &ModuleRegistry, out: &mut Vec<Violation>) {
    let Some(items) = value.as_seq() else {
        out.push(Violation::new("$", "task file must be a sequence of tasks"));
        return;
    };
    if items.is_empty() {
        out.push(Violation::new("$", "task file is empty"));
        return;
    }
    for (i, item) in items.iter().enumerate() {
        lint_task_or_block(item, &format!("tasks[{i}]"), reg, out);
    }
}

fn lint_task_or_block(value: &Value, path: &str, reg: &ModuleRegistry, out: &mut Vec<Violation>) {
    let Some(map) = value.as_map() else {
        out.push(Violation::new(path, "task must be a mapping"));
        return;
    };
    if map.keys().any(is_block_key) {
        lint_block(value, path, reg, out);
    } else {
        lint_task(value, path, reg, out);
    }
}

fn lint_block(value: &Value, path: &str, reg: &ModuleRegistry, out: &mut Vec<Violation>) {
    let map = value.as_map().expect("caller verified mapping");
    for (k, v) in map.iter() {
        if BLOCK_KEYS.contains(&k) {
            let Some(items) = v.as_seq() else {
                out.push(Violation::new(
                    format!("{path}.{k}"),
                    "must be a list of tasks",
                ));
                continue;
            };
            for (i, t) in items.iter().enumerate() {
                lint_task_or_block(t, &format!("{path}.{k}[{i}]"), reg, out);
            }
        } else {
            match task_keyword(k) {
                Some(spec) => {
                    if !v.is_null() && !spec.kinds.accepts(v) {
                        out.push(Violation::new(
                            format!("{path}.{k}"),
                            format!("expected {}", spec.kinds.describe()),
                        ));
                    }
                }
                None => {
                    out.push(Violation::new(
                        format!("{path}.{k}"),
                        "key not allowed on a block",
                    ));
                }
            }
        }
    }
}

fn lint_task(value: &Value, path: &str, reg: &ModuleRegistry, out: &mut Vec<Violation>) {
    let Some(map) = value.as_map() else {
        out.push(Violation::new(path, "task must be a mapping"));
        return;
    };
    if map.is_empty() {
        out.push(Violation::new(path, "task is empty"));
        return;
    }
    if map.contains_key("action") || map.contains_key("local_action") {
        out.push(Violation::new(
            format!("{path}.action"),
            "legacy 'action:' syntax is not accepted by the schema",
        ));
    }
    let mut module_keys: Vec<&str> = Vec::new();
    for (k, v) in map.iter() {
        if k == "action" || k == "local_action" {
            continue;
        }
        match task_keyword(k) {
            Some(spec) => {
                if !v.is_null() && !spec.kinds.accepts(v) {
                    out.push(Violation::new(
                        format!("{path}.{k}"),
                        format!("expected {}", spec.kinds.describe()),
                    ));
                }
            }
            None => module_keys.push(k),
        }
    }
    match module_keys.len() {
        0 => out.push(Violation::new(path, "task has no module")),
        1 => lint_module_invocation(
            module_keys[0],
            map.get(module_keys[0]).expect("key from iteration"),
            path,
            reg,
            out,
        ),
        _ => out.push(Violation::new(
            path,
            format!("task has multiple modules: {}", module_keys.join(", ")),
        )),
    }
}

fn lint_module_invocation(
    name: &str,
    args: &Value,
    path: &str,
    reg: &ModuleRegistry,
    out: &mut Vec<Violation>,
) {
    let mpath = format!("{path}.{name}");
    let Some(spec) = reg.get(name) else {
        out.push(Violation::new(&mpath, "unknown module"));
        return;
    };
    match args {
        Value::Str(_) => {
            if !spec.free_form {
                out.push(Violation::new(
                    &mpath,
                    "string arguments (legacy k=v form) are not accepted; use a parameter mapping",
                ));
            }
        }
        Value::Null => {
            // Acceptable only when nothing is required (e.g. `setup:`).
            for p in spec.params.iter().filter(|p| p.required) {
                out.push(Violation::new(
                    format!("{mpath}.{}", p.name),
                    "missing required parameter",
                ));
            }
        }
        Value::Map(params) => {
            // `meta` and free-form modules normally use strings, but a map is
            // fine for command/shell (cmd:), so validate params either way.
            for (pname, pvalue) in params.iter() {
                match spec.params.iter().find(|p| p.name == pname) {
                    None => out.push(Violation::new(
                        format!("{mpath}.{pname}"),
                        "unknown parameter",
                    )),
                    Some(p) => {
                        if !param_accepts(p.kind, pvalue) {
                            out.push(Violation::new(
                                format!("{mpath}.{pname}"),
                                format!("parameter has wrong type (expected {:?})", p.kind),
                            ));
                        }
                    }
                }
            }
            for p in spec.params.iter().filter(|p| p.required) {
                if !params.contains_key(p.name) {
                    out.push(Violation::new(
                        format!("{mpath}.{}", p.name),
                        "missing required parameter",
                    ));
                }
            }
        }
        _ => out.push(Violation::new(
            &mpath,
            "module arguments must be a mapping or a free-form string",
        )),
    }
}

fn param_accepts(kind: ParamKind, value: &Value) -> bool {
    match kind {
        ParamKind::Any => true,
        ParamKind::Str => matches!(value, Value::Str(_) | Value::Int(_) | Value::Float(_)),
        ParamKind::Bool => {
            matches!(value, Value::Bool(_)) || matches!(value, Value::Str(s) if s.contains("{{"))
        }
        ParamKind::Int => {
            matches!(value, Value::Int(_))
                || matches!(value, Value::Str(s) if s.contains("{{") || s.parse::<i64>().is_ok())
        }
        ParamKind::List => {
            matches!(value, Value::Seq(_)) || matches!(value, Value::Str(s) if s.contains("{{"))
        }
        ParamKind::Map => {
            matches!(value, Value::Map(_)) || matches!(value, Value::Str(s) if s.contains("{{"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) {
        let v = lint_str(src, LintTarget::Auto);
        assert!(v.is_empty(), "expected clean, got {v:?}\nsource:\n{src}");
    }

    fn bad(src: &str, needle: &str) {
        let v = lint_str(src, LintTarget::Auto);
        assert!(
            v.iter()
                .any(|x| x.message.contains(needle) || x.path.contains(needle)),
            "expected violation containing {needle:?}, got {v:?}"
        );
    }

    #[test]
    fn figure_1_playbook_is_schema_correct() {
        ok("---\n- hosts: servers\n  tasks:\n    - name: Install SSH server\n      ansible.builtin.apt:\n        name: openssh-server\n        state: present\n    - name: Start SSH server\n      ansible.builtin.service:\n        name: ssh\n        state: started\n");
    }

    #[test]
    fn task_file_is_schema_correct() {
        ok("- name: Ensure apache is at the latest version\n  ansible.builtin.yum:\n    name: httpd\n    state: latest\n- name: Write the apache config file\n  ansible.builtin.template:\n    src: /srv/httpd.j2\n    dest: /etc/httpd.conf\n");
    }

    #[test]
    fn yaml_syntax_error_is_violation() {
        bad("- name: x\n   broken: [unclosed\n", "syntax");
    }

    #[test]
    fn play_missing_hosts() {
        bad("- tasks:\n    - ping: {}\n  hosts_typo: all\n", "hosts");
    }

    #[test]
    fn unknown_play_keyword() {
        bad(
            "- hosts: all\n  bogus: 1\n  tasks:\n    - ping: {}\n",
            "unknown play keyword",
        );
    }

    #[test]
    fn unknown_module() {
        bad("- name: x\n  not_a_module:\n    a: 1\n", "unknown module");
    }

    #[test]
    fn unknown_parameter() {
        bad(
            "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    stat: present\n",
            "unknown parameter",
        );
    }

    #[test]
    fn missing_required_parameter() {
        bad(
            "- name: x\n  ansible.builtin.apt:\n    state: present\n",
            "missing required",
        );
        bad(
            "- name: x\n  ansible.builtin.git:\n    repo: http://x\n",
            "missing required",
        );
    }

    #[test]
    fn legacy_kv_form_rejected() {
        bad("- name: x\n  apt: name=nginx state=present\n", "legacy k=v");
    }

    #[test]
    fn free_form_command_accepted() {
        ok("- name: x\n  ansible.builtin.shell: systemctl restart nginx\n");
        ok("- name: x\n  command: ls -la\n");
    }

    #[test]
    fn action_syntax_rejected() {
        bad("- name: x\n  action: apt name=nginx\n", "action");
    }

    #[test]
    fn keyword_type_checks() {
        bad(
            "- name: x\n  ping: {}\n  register:\n    - a\n",
            "expected string",
        );
        bad("- name: x\n  ping: {}\n  vars: not_a_map\n", "expected map");
        ok("- name: x\n  ping: {}\n  when: foo is defined\n  register: out\n");
    }

    #[test]
    fn bool_param_type_check() {
        bad(
            "- name: x\n  apt:\n    name: nginx\n    update_cache: definitely\n",
            "wrong type",
        );
        ok("- name: x\n  apt:\n    name: nginx\n    update_cache: yes\n");
        ok("- name: x\n  apt:\n    name: nginx\n    update_cache: '{{ do_update }}'\n");
    }

    #[test]
    fn multiple_modules_rejected() {
        bad("- name: x\n  ping: {}\n  setup: {}\n", "multiple modules");
    }

    #[test]
    fn task_without_module_rejected() {
        bad("- name: x\n  when: true\n", "no module");
    }

    #[test]
    fn blocks_accepted() {
        ok("- name: grouped\n  block:\n    - name: a\n      ping: {}\n  rescue:\n    - name: r\n      debug:\n        msg: oops\n  when: run_it\n");
    }

    #[test]
    fn block_with_bad_inner_task() {
        bad(
            "- block:\n    - name: broken\n      nonexistent_mod: {}\n",
            "unknown module",
        );
    }

    #[test]
    fn single_task_target() {
        let v = lint_str("name: x\nping: {}\n", LintTarget::Task);
        assert!(v.is_empty(), "{v:?}");
        let v = lint_str("name: x\n", LintTarget::Task);
        assert!(!v.is_empty());
    }

    #[test]
    fn import_playbook_entry() {
        ok("- import_playbook: other.yml\n- hosts: all\n  tasks:\n    - ping: {}\n");
        bad(
            "- import_playbook: other.yml\n  hosts: web\n",
            "not allowed alongside",
        );
    }

    #[test]
    fn empty_documents_rejected() {
        bad("[]\n", "empty");
        bad("", "task file must be a sequence");
    }

    #[test]
    fn roles_entries() {
        ok("- hosts: all\n  roles:\n    - common\n    - role: nginx\n");
        bad("- hosts: all\n  roles:\n    - 5\n", "role entry");
    }

    #[test]
    fn null_module_args_with_required_params() {
        bad("- name: x\n  ansible.builtin.apt:\n", "missing required");
        ok("- name: x\n  ansible.builtin.setup:\n");
    }
}
