//! Legacy `k1=v1 k2=v2` module-argument syntax.
//!
//! Old Ansible content writes module parameters as a single free-form string
//! (`apt: name=nginx state=present`). The Ansible Aware metric normalizes
//! that form into a parameter mapping before comparing, and the formatting
//! standardizer rewrites it in modern style.

use wisdom_yaml::{Mapping, Value};

/// Attempts to interpret `text` as legacy `k=v` module arguments.
///
/// Returns `None` when the string does not look like a pure `k=v` list
/// (e.g. a real free-form `command` line such as `ls -la`, or an argument
/// containing an `=`-free token).
///
/// Values are resolved with the same scalar schema as the YAML parser, and
/// quoted values (`creates="/tmp/x y"`) are supported.
///
/// # Examples
///
/// ```
/// use wisdom_ansible::parse_kv_args;
///
/// let m = parse_kv_args("name=nginx state=present update_cache=yes").expect("k=v");
/// assert_eq!(m.get("state").and_then(|v| v.as_str()), Some("present"));
/// assert_eq!(m.get("update_cache").and_then(|v| v.as_bool()), Some(true));
/// assert!(parse_kv_args("ls -la /tmp").is_none());
/// ```
pub fn parse_kv_args(text: &str) -> Option<Mapping> {
    let tokens = split_tokens(text)?;
    if tokens.is_empty() {
        return None;
    }
    let mut map = Mapping::new();
    for token in tokens {
        let eq = token.find('=')?;
        let key = &token[..eq];
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return None;
        }
        let raw_value = &token[eq + 1..];
        let value = unquote(raw_value);
        map.insert(key.to_string(), value);
    }
    Some(map)
}

/// Splits on spaces, keeping quoted segments (single or double) and jinja
/// `{{ … }}` expressions intact, the way Ansible's own splitter does.
fn split_tokens(text: &str) -> Option<Vec<String>> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut quote: Option<char> = None;
    let mut jinja = 0usize;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match quote {
            Some(q) => {
                current.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' if jinja == 0 => {
                    current.push(c);
                    quote = Some(c);
                }
                '{' if i + 1 < chars.len() && chars[i + 1] == '{' => {
                    current.push_str("{{");
                    jinja += 1;
                    i += 1;
                }
                '}' if jinja > 0 && i + 1 < chars.len() && chars[i + 1] == '}' => {
                    current.push_str("}}");
                    jinja -= 1;
                    i += 1;
                }
                ' ' if jinja == 0 => {
                    if !current.is_empty() {
                        tokens.push(std::mem::take(&mut current));
                    }
                }
                _ => current.push(c),
            },
        }
        i += 1;
    }
    if quote.is_some() || jinja != 0 {
        return None; // unterminated quote or jinja expression
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    Some(tokens)
}

fn unquote(raw: &str) -> Value {
    let bytes = raw.as_bytes();
    if bytes.len() >= 2 {
        let first = bytes[0];
        if (first == b'"' || first == b'\'') && bytes[bytes.len() - 1] == first {
            return Value::Str(raw[1..raw.len() - 1].to_string());
        }
    }
    wisdom_yaml::parse(&format!("v: {raw}\n"))
        .ok()
        .and_then(|v| v.as_map().and_then(|m| m.get("v").cloned()))
        .unwrap_or_else(|| Value::Str(raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_kv() {
        let m = parse_kv_args("src=/a dest=/b mode=0644").unwrap();
        assert_eq!(m.get("src").unwrap().as_str(), Some("/a"));
        assert_eq!(m.get("mode").unwrap().as_int(), Some(644));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn typed_values() {
        let m = parse_kv_args("enabled=yes retries=3").unwrap();
        assert_eq!(m.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(m.get("retries").unwrap().as_int(), Some(3));
    }

    #[test]
    fn quoted_values_with_spaces() {
        let m = parse_kv_args("line=\"server_name example.com;\" path=/etc/nginx.conf").unwrap();
        assert_eq!(
            m.get("line").unwrap().as_str(),
            Some("server_name example.com;")
        );
    }

    #[test]
    fn free_form_commands_rejected() {
        assert!(parse_kv_args("ls -la").is_none());
        assert!(parse_kv_args("systemctl restart nginx").is_none());
        assert!(parse_kv_args("").is_none());
    }

    #[test]
    fn mixed_free_form_rejected() {
        // One token without '=' disqualifies the whole string.
        assert!(parse_kv_args("name=nginx now").is_none());
    }

    #[test]
    fn weird_keys_rejected() {
        assert!(parse_kv_args("-flag=x").is_none());
        assert!(parse_kv_args("a.b=x").is_none());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_kv_args("line=\"oops").is_none());
    }

    #[test]
    fn jinja_values_kept() {
        let m = parse_kv_args("name={{ pkg }} state=present").unwrap();
        assert_eq!(m.get("name").unwrap().as_str(), Some("{{ pkg }}"));
    }
}
