//! The Ansible domain model used throughout the Ansible Wisdom reproduction.
//!
//! This crate is the "Ansible knowledge" substrate of the paper: everything
//! the metrics, the linter and the corpus generator need to know about what
//! Ansible tasks and playbooks look like:
//!
//! * [`Task`], [`Play`], [`Playbook`], [`Block`] — the object model;
//! * [`ModuleRegistry`] — FQCN resolution, parameter schemas, and the
//!   equivalence classes behind the Ansible Aware metric's partial credit;
//! * [`lint_str`] / [`is_schema_correct`] — the strict schema behind the
//!   **Schema Correct** metric;
//! * [`normalize_document`] / [`standardize`] — the formatting
//!   standardization applied to the fine-tuning dataset;
//! * [`parse_kv_args`] — the legacy `k=v` argument form conversion.
//!
//! # Examples
//!
//! ```
//! use wisdom_ansible::{is_schema_correct, LintTarget, Playbook};
//!
//! let src = "- hosts: web\n  tasks:\n    - name: Install nginx\n      ansible.builtin.apt:\n        name: nginx\n        state: present\n";
//! let playbook = Playbook::parse(src)?;
//! assert_eq!(playbook.plays[0].flat_tasks()[0].fqcn(), "ansible.builtin.apt");
//! assert!(is_schema_correct(src, LintTarget::Auto));
//! # Ok::<(), wisdom_ansible::ParsePlaybookError>(())
//! ```

mod keywords;
mod kv;
mod lint;
mod module_registry;
mod normalize;
mod playbook;
mod task;

pub use keywords::{
    is_block_key, is_task_keyword, play_keyword, task_keyword, KeywordSpec, KindSet, PLAY_KEYWORDS,
    TASK_KEYWORDS,
};
pub use kv::parse_kv_args;
pub use lint::{detect_target, is_schema_correct, lint_str, lint_value, LintTarget, Violation};
pub use module_registry::{Equivalence, ModuleRegistry, ModuleSpec, ParamKind, ParamSpec, MODULES};
pub use normalize::{normalize_document, normalize_play, normalize_task, standardize};
pub use playbook::{parse_task_file, Block, ParsePlaybookError, Play, Playbook, TaskItem};
pub use task::{ParseTaskError, Task};
