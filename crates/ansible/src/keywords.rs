//! Task-level and play-level keyword schemas.
//!
//! Ansible distinguishes the *module* key of a task from *keywords* that
//! influence execution (conditions, loops, privilege escalation, error
//! handling). The lint schema and the Ansible Aware metric both need to know
//! which keys are keywords and what value shapes they accept.

use wisdom_yaml::Value;

/// Accepted value shapes for a keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeywordSpec {
    /// Keyword name.
    pub name: &'static str,
    /// Acceptable value kinds.
    pub kinds: KindSet,
}

/// A small set of YAML value kinds, used to validate keyword values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindSet {
    bits: u8,
}

impl KindSet {
    const STR: u8 = 1;
    const BOOL: u8 = 2;
    const INT: u8 = 4;
    const LIST: u8 = 8;
    const MAP: u8 = 16;

    const fn new(bits: u8) -> Self {
        Self { bits }
    }

    /// Whether `value` is one of the accepted kinds. Jinja template strings
    /// (`"{{ … }}"`) are accepted everywhere, mirroring Ansible's lazy
    /// templating; numbers are accepted where strings are.
    pub fn accepts(&self, value: &Value) -> bool {
        match value {
            Value::Str(s) => self.bits & Self::STR != 0 || s.contains("{{"),
            Value::Bool(_) => self.bits & Self::BOOL != 0,
            Value::Int(_) => self.bits & (Self::INT | Self::STR) != 0,
            Value::Float(_) => self.bits & (Self::INT | Self::STR) != 0,
            Value::Seq(_) => self.bits & Self::LIST != 0,
            Value::Map(_) => self.bits & Self::MAP != 0,
            Value::Null => false,
        }
    }

    /// Human-readable description of the accepted kinds.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.bits & Self::STR != 0 {
            parts.push("string");
        }
        if self.bits & Self::BOOL != 0 {
            parts.push("bool");
        }
        if self.bits & Self::INT != 0 {
            parts.push("int");
        }
        if self.bits & Self::LIST != 0 {
            parts.push("list");
        }
        if self.bits & Self::MAP != 0 {
            parts.push("map");
        }
        parts.join(" or ")
    }
}

const S: KindSet = KindSet::new(KindSet::STR);
const B: KindSet = KindSet::new(KindSet::BOOL);
const L: KindSet = KindSet::new(KindSet::LIST);
const M: KindSet = KindSet::new(KindSet::MAP);
// Booleans deliberately exclude plain strings (the strict schema); jinja
// template strings are still accepted via `KindSet::accepts`.
const SL: KindSet = KindSet::new(KindSet::STR | KindSet::LIST);
const SBL: KindSet = KindSet::new(KindSet::STR | KindSet::BOOL | KindSet::LIST);
const IS: KindSet = KindSet::new(KindSet::INT | KindSet::STR);
const ML: KindSet = KindSet::new(KindSet::MAP | KindSet::LIST);

const fn kw(name: &'static str, kinds: KindSet) -> KeywordSpec {
    KeywordSpec { name, kinds }
}

/// Keywords valid on a task (shared subset also valid on blocks and plays).
pub static TASK_KEYWORDS: &[KeywordSpec] = &[
    kw("name", S),
    kw("when", SBL),
    kw("loop", SL),
    kw("with_items", SL),
    kw("with_dict", SL),
    kw("with_fileglob", SL),
    kw("with_together", SL),
    kw("with_sequence", SL),
    kw("with_subelements", SL),
    kw("with_nested", SL),
    kw("with_first_found", SL),
    kw("loop_control", M),
    kw("register", S),
    kw("become", B),
    kw("become_user", S),
    kw("become_method", S),
    kw("become_flags", S),
    kw("vars", M),
    kw("environment", ML),
    kw("tags", SL),
    kw("notify", SL),
    kw("listen", SL),
    kw("ignore_errors", B),
    kw("ignore_unreachable", B),
    kw("changed_when", SBL),
    kw("failed_when", SBL),
    kw("until", SBL),
    kw("retries", IS),
    kw("delay", IS),
    kw("delegate_to", S),
    kw("delegate_facts", B),
    kw("run_once", B),
    kw("no_log", B),
    kw("args", M),
    kw("check_mode", B),
    kw("diff", B),
    kw("remote_user", S),
    kw("connection", S),
    kw("throttle", IS),
    kw("timeout", IS),
    kw("any_errors_fatal", B),
    kw("collections", L),
    kw("module_defaults", M),
    kw("first_found", SL),
];

/// Keywords valid on a play (in addition to structural `tasks` etc.).
pub static PLAY_KEYWORDS: &[KeywordSpec] = &[
    kw("name", S),
    kw("hosts", SL),
    kw("connection", S),
    kw("gather_facts", B),
    kw("gather_subset", SL),
    kw("become", B),
    kw("become_user", S),
    kw("become_method", S),
    kw("vars", M),
    kw("vars_files", L),
    kw("vars_prompt", L),
    kw("roles", L),
    kw("tasks", L),
    kw("handlers", L),
    kw("pre_tasks", L),
    kw("post_tasks", L),
    kw("environment", ML),
    kw("remote_user", S),
    kw("serial", IS),
    kw("strategy", S),
    kw("tags", SL),
    kw("collections", L),
    kw("any_errors_fatal", B),
    kw("force_handlers", B),
    kw("max_fail_percentage", IS),
    kw("ignore_unreachable", B),
    kw("order", S),
    kw("module_defaults", M),
    kw("port", IS),
    kw("no_log", B),
    kw("ignore_errors", B),
];

/// Structural keys that make a mapping a block rather than a plain task.
pub static BLOCK_KEYS: &[&str] = &["block", "rescue", "always"];

/// Looks up a task keyword spec by name.
pub fn task_keyword(name: &str) -> Option<&'static KeywordSpec> {
    TASK_KEYWORDS.iter().find(|k| k.name == name)
}

/// Looks up a play keyword spec by name.
pub fn play_keyword(name: &str) -> Option<&'static KeywordSpec> {
    PLAY_KEYWORDS.iter().find(|k| k.name == name)
}

/// Whether `name` is a task keyword (not a module key).
pub fn is_task_keyword(name: &str) -> bool {
    task_keyword(name).is_some()
}

/// Whether `name` is one of the block-structure keys.
pub fn is_block_key(name: &str) -> bool {
    BLOCK_KEYS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisdom_yaml::Mapping;

    #[test]
    fn keyword_lookup() {
        assert!(is_task_keyword("when"));
        assert!(is_task_keyword("register"));
        assert!(!is_task_keyword("ansible.builtin.apt"));
        assert!(!is_task_keyword("apt"));
    }

    #[test]
    fn kindset_accepts_expected_shapes() {
        let when = task_keyword("when").unwrap();
        assert!(when.kinds.accepts(&Value::Str("x is defined".into())));
        assert!(when.kinds.accepts(&Value::Bool(true)));
        assert!(when.kinds.accepts(&Value::Seq(vec![])));
        assert!(!when.kinds.accepts(&Value::Map(Mapping::new())));

        let register = task_keyword("register").unwrap();
        assert!(register.kinds.accepts(&Value::Str("result".into())));
        assert!(!register.kinds.accepts(&Value::Bool(true)));
    }

    #[test]
    fn jinja_strings_accepted_everywhere() {
        let become_kw = task_keyword("become").unwrap();
        assert!(become_kw
            .kinds
            .accepts(&Value::Str("{{ use_sudo }}".into())));
        assert!(!become_kw.kinds.accepts(&Value::Str("plainstring".into())));
    }

    #[test]
    fn numbers_accepted_as_strings() {
        let retries = task_keyword("retries").unwrap();
        assert!(retries.kinds.accepts(&Value::Int(3)));
        assert!(retries.kinds.accepts(&Value::Str("3".into())));
    }

    #[test]
    fn play_keywords_differ_from_task_keywords() {
        assert!(play_keyword("hosts").is_some());
        assert!(task_keyword("hosts").is_none());
        assert!(play_keyword("tasks").is_some());
    }

    #[test]
    fn block_keys() {
        assert!(is_block_key("block"));
        assert!(is_block_key("rescue"));
        assert!(!is_block_key("tasks"));
    }

    #[test]
    fn describe_lists_kinds() {
        let d = task_keyword("when").unwrap().kinds.describe();
        assert!(d.contains("string") && d.contains("bool") && d.contains("list"));
    }
}
