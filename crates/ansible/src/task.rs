//! The Ansible task model: a `name`, one module invocation, and keywords.

use std::error::Error;
use std::fmt;

use wisdom_yaml::{Mapping, Value};

use crate::keywords::{is_block_key, is_task_keyword};
use crate::module_registry::ModuleRegistry;

/// Error from interpreting a YAML mapping as a [`Task`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTaskError {
    /// The node is not a mapping.
    NotAMapping,
    /// No non-keyword key was found, so there is no module invocation.
    MissingModule,
    /// More than one non-keyword key: ambiguous module invocation.
    MultipleModules(Vec<String>),
    /// The mapping is a `block`/`rescue`/`always` structure, not a plain task.
    IsBlock,
}

impl fmt::Display for ParseTaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTaskError::NotAMapping => write!(f, "task node is not a mapping"),
            ParseTaskError::MissingModule => write!(f, "task has no module key"),
            ParseTaskError::MultipleModules(keys) => {
                write!(
                    f,
                    "task has multiple module candidates: {}",
                    keys.join(", ")
                )
            }
            ParseTaskError::IsBlock => write!(f, "mapping is a block, not a task"),
        }
    }
}

impl Error for ParseTaskError {}

/// One Ansible task: an optional natural-language `name`, exactly one module
/// invocation, and any number of execution keywords.
///
/// # Examples
///
/// ```
/// use wisdom_ansible::Task;
///
/// let yaml = "name: Install nginx\nansible.builtin.apt:\n  name: nginx\n  state: present\n";
/// let value = wisdom_yaml::parse(yaml)?;
/// let task = Task::from_value(&value)?;
/// assert_eq!(task.name.as_deref(), Some("Install nginx"));
/// assert_eq!(task.module, "ansible.builtin.apt");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// The `name` field — the natural-language intent of the task. This is
    /// exactly the prompt $Y_{NL}$ in the paper's problem re-formalization.
    pub name: Option<String>,
    /// Module key as written (may be a short alias or an FQCN).
    pub module: String,
    /// Module arguments: a mapping, a free-form string, or null.
    pub args: Value,
    /// Remaining task keywords, in source order.
    pub keywords: Mapping,
}

impl Task {
    /// Interprets a parsed YAML node as a task.
    ///
    /// The module key is identified as the unique key that is neither a task
    /// keyword nor a block key. Keys containing a dot are always module
    /// candidates (FQCN form).
    ///
    /// # Errors
    ///
    /// See [`ParseTaskError`].
    pub fn from_value(value: &Value) -> Result<Task, ParseTaskError> {
        let map = value.as_map().ok_or(ParseTaskError::NotAMapping)?;
        if map.keys().any(is_block_key) {
            return Err(ParseTaskError::IsBlock);
        }
        let candidates: Vec<&str> = map.keys().filter(|k| !is_task_keyword(k)).collect();
        match candidates.len() {
            0 => Err(ParseTaskError::MissingModule),
            1 => {
                let module = candidates[0].to_string();
                let args = map.get(&module).cloned().unwrap_or(Value::Null);
                let name = map.get("name").and_then(|v| v.as_str()).map(String::from);
                let mut keywords = Mapping::new();
                for (k, v) in map.iter() {
                    if k != module && k != "name" {
                        keywords.insert(k.to_string(), v.clone());
                    }
                }
                Ok(Task {
                    name,
                    module,
                    args,
                    keywords,
                })
            }
            _ => Err(ParseTaskError::MultipleModules(
                candidates.into_iter().map(String::from).collect(),
            )),
        }
    }

    /// Parses a task from YAML text whose top level is either a single task
    /// mapping or a one-element sequence containing it.
    ///
    /// # Errors
    ///
    /// Returns a boxed error on YAML syntax errors or task-shape errors.
    pub fn parse(src: &str) -> Result<Task, Box<dyn Error + Send + Sync>> {
        let v = wisdom_yaml::parse(src)?;
        let node = match &v {
            Value::Seq(items) if items.len() == 1 => &items[0],
            other => other,
        };
        Ok(Task::from_value(node)?)
    }

    /// Renders the task back to a YAML mapping in canonical key order:
    /// `name`, module, keywords.
    pub fn to_value(&self) -> Value {
        let mut m = Mapping::new();
        if let Some(name) = &self.name {
            m.insert("name".to_string(), Value::Str(name.clone()));
        }
        m.insert(self.module.clone(), self.args.clone());
        for (k, v) in self.keywords.iter() {
            m.insert(k.to_string(), v.clone());
        }
        Value::Map(m)
    }

    /// The module name normalized to its FQCN when known to the registry.
    pub fn fqcn(&self) -> &str {
        ModuleRegistry::global()
            .resolve_fqcn(&self.module)
            .unwrap_or(&self.module)
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&wisdom_yaml::emit(&self.to_value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_task() {
        let t =
            Task::parse("name: Start nginx\nservice:\n  name: nginx\n  state: started\n").unwrap();
        assert_eq!(t.name.as_deref(), Some("Start nginx"));
        assert_eq!(t.module, "service");
        assert_eq!(t.fqcn(), "ansible.builtin.service");
        assert!(t.keywords.is_empty());
        let args = t.args.as_map().unwrap();
        assert_eq!(args.get("state").unwrap().as_str(), Some("started"));
    }

    #[test]
    fn parse_task_in_sequence() {
        let t = Task::parse("- name: Ping\n  ansible.builtin.ping: {}\n").unwrap();
        assert_eq!(t.module, "ansible.builtin.ping");
    }

    #[test]
    fn keywords_separated_from_module() {
        let t = Task::parse(
            "name: Copy config\ncopy:\n  src: a\n  dest: /etc/a\nwhen: deploy_enabled\nnotify: restart app\nbecome: true\n",
        )
        .unwrap();
        assert_eq!(t.module, "copy");
        let kw_keys: Vec<&str> = t.keywords.keys().collect();
        assert_eq!(kw_keys, ["when", "notify", "become"]);
    }

    #[test]
    fn free_form_args_kept_as_string() {
        let t = Task::parse("name: List files\ncommand: ls -la /tmp\n").unwrap();
        assert_eq!(t.args.as_str(), Some("ls -la /tmp"));
    }

    #[test]
    fn unnamed_task_allowed() {
        let t = Task::parse("ansible.builtin.setup: {}\n").unwrap();
        assert!(t.name.is_none());
    }

    #[test]
    fn missing_module_rejected() {
        let v = wisdom_yaml::parse("name: no module here\nwhen: true\n").unwrap();
        assert_eq!(Task::from_value(&v), Err(ParseTaskError::MissingModule));
    }

    #[test]
    fn multiple_modules_rejected() {
        let v = wisdom_yaml::parse("apt:\n  name: x\nservice:\n  name: y\n").unwrap();
        match Task::from_value(&v) {
            Err(ParseTaskError::MultipleModules(keys)) => {
                assert_eq!(keys.len(), 2);
            }
            other => panic!("expected MultipleModules, got {other:?}"),
        }
    }

    #[test]
    fn block_detected() {
        let v = wisdom_yaml::parse("block:\n  - ping: {}\nwhen: x\n").unwrap();
        assert_eq!(Task::from_value(&v), Err(ParseTaskError::IsBlock));
    }

    #[test]
    fn non_mapping_rejected() {
        assert_eq!(
            Task::from_value(&Value::Str("hi".into())),
            Err(ParseTaskError::NotAMapping)
        );
    }

    #[test]
    fn to_value_round_trips_with_canonical_order() {
        let t = Task::parse("become: true\nname: T\napt:\n  name: x\n").unwrap();
        let text = wisdom_yaml::emit(&t.to_value());
        assert_eq!(text, "name: T\napt:\n  name: x\nbecome: true\n");
        let back = Task::parse(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn custom_fqcn_module_accepted() {
        let t = Task::parse("name: X\nmycorp.internal.widget:\n  size: 3\n").unwrap();
        assert_eq!(t.module, "mycorp.internal.widget");
        assert_eq!(t.fqcn(), "mycorp.internal.widget");
    }

    #[test]
    fn display_emits_yaml() {
        let t = Task::parse("name: T\nping: {}\n").unwrap();
        assert!(t.to_string().contains("name: T"));
    }
}
