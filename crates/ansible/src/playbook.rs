//! Plays and playbooks: ordered groups of tasks targeting managed nodes.

use std::error::Error;
use std::fmt;

use wisdom_yaml::{Mapping, ParseYamlError, Value};

use crate::keywords::is_block_key;
use crate::task::{ParseTaskError, Task};

/// Error from interpreting YAML as a [`Playbook`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParsePlaybookError {
    /// YAML syntax error.
    Yaml(ParseYamlError),
    /// Structural problem, with a JSONPath-ish location and message.
    Structure {
        /// Location such as `plays[0].tasks[2]`.
        path: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ParsePlaybookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePlaybookError::Yaml(e) => write!(f, "{e}"),
            ParsePlaybookError::Structure { path, message } => {
                write!(f, "invalid playbook at {path}: {message}")
            }
        }
    }
}

impl Error for ParsePlaybookError {}

impl From<ParseYamlError> for ParsePlaybookError {
    fn from(e: ParseYamlError) -> Self {
        ParsePlaybookError::Yaml(e)
    }
}

fn structure(path: impl Into<String>, message: impl Into<String>) -> ParsePlaybookError {
    ParsePlaybookError::Structure {
        path: path.into(),
        message: message.into(),
    }
}

/// An entry in a play's task list: either a plain task or a block of tasks.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskItem {
    /// A regular module-invoking task.
    Task(Task),
    /// A `block:` (with optional `rescue:`/`always:`) grouping.
    Block(Block),
}

impl TaskItem {
    /// Parses a task-list entry from a YAML node.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePlaybookError::Structure`] when the node is neither a
    /// valid task nor a valid block.
    pub fn from_value(value: &Value, path: &str) -> Result<TaskItem, ParsePlaybookError> {
        match Task::from_value(value) {
            Ok(t) => Ok(TaskItem::Task(t)),
            Err(ParseTaskError::IsBlock) => Ok(TaskItem::Block(Block::from_value(value, path)?)),
            Err(e) => Err(structure(path, e.to_string())),
        }
    }

    /// Renders back to a YAML node.
    pub fn to_value(&self) -> Value {
        match self {
            TaskItem::Task(t) => t.to_value(),
            TaskItem::Block(b) => b.to_value(),
        }
    }

    /// The task's `name`, when present.
    pub fn name(&self) -> Option<&str> {
        match self {
            TaskItem::Task(t) => t.name.as_deref(),
            TaskItem::Block(b) => b.name.as_deref(),
        }
    }
}

/// A `block:` grouping of tasks with optional `rescue:` and `always:`.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Optional block name.
    pub name: Option<String>,
    /// Tasks executed in order.
    pub block: Vec<TaskItem>,
    /// Tasks executed when the block fails.
    pub rescue: Vec<TaskItem>,
    /// Tasks always executed.
    pub always: Vec<TaskItem>,
    /// Remaining keywords (`when`, `become`, …) in source order.
    pub keywords: Mapping,
}

impl Block {
    fn from_value(value: &Value, path: &str) -> Result<Block, ParsePlaybookError> {
        let map = value
            .as_map()
            .ok_or_else(|| structure(path, "block is not a mapping"))?;
        let mut block = Block {
            name: map.get("name").and_then(|v| v.as_str()).map(String::from),
            block: Vec::new(),
            rescue: Vec::new(),
            always: Vec::new(),
            keywords: Mapping::new(),
        };
        for (k, v) in map.iter() {
            if is_block_key(k) {
                let items = v
                    .as_seq()
                    .ok_or_else(|| structure(format!("{path}.{k}"), "must be a task list"))?;
                let parsed = parse_task_list(items, &format!("{path}.{k}"))?;
                match k {
                    "block" => block.block = parsed,
                    "rescue" => block.rescue = parsed,
                    "always" => block.always = parsed,
                    _ => unreachable!("is_block_key covers all"),
                }
            } else if k != "name" {
                block.keywords.insert(k.to_string(), v.clone());
            }
        }
        if block.block.is_empty() && block.rescue.is_empty() && block.always.is_empty() {
            return Err(structure(path, "block has no tasks"));
        }
        Ok(block)
    }

    /// Renders back to a YAML node.
    pub fn to_value(&self) -> Value {
        let mut m = Mapping::new();
        if let Some(name) = &self.name {
            m.insert("name".to_string(), Value::Str(name.clone()));
        }
        if !self.block.is_empty() {
            m.insert(
                "block".to_string(),
                Value::Seq(self.block.iter().map(TaskItem::to_value).collect()),
            );
        }
        if !self.rescue.is_empty() {
            m.insert(
                "rescue".to_string(),
                Value::Seq(self.rescue.iter().map(TaskItem::to_value).collect()),
            );
        }
        if !self.always.is_empty() {
            m.insert(
                "always".to_string(),
                Value::Seq(self.always.iter().map(TaskItem::to_value).collect()),
            );
        }
        for (k, v) in self.keywords.iter() {
            m.insert(k.to_string(), v.clone());
        }
        Value::Map(m)
    }
}

fn parse_task_list(items: &[Value], path: &str) -> Result<Vec<TaskItem>, ParsePlaybookError> {
    items
        .iter()
        .enumerate()
        .map(|(i, v)| TaskItem::from_value(v, &format!("{path}[{i}]")))
        .collect()
}

/// One play: a target host group plus the tasks to run there.
///
/// # Examples
///
/// ```
/// use wisdom_ansible::Playbook;
///
/// let src = "- hosts: web\n  tasks:\n    - name: Ping\n      ansible.builtin.ping: {}\n";
/// let pb = Playbook::parse(src)?;
/// assert_eq!(pb.plays.len(), 1);
/// assert_eq!(pb.plays[0].hosts.as_deref(), Some("web"));
/// # Ok::<(), wisdom_ansible::ParsePlaybookError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Play {
    /// Optional play name.
    pub name: Option<String>,
    /// Target hosts pattern (`all`, a group name, …); `None` when the play
    /// uses a list-valued or missing `hosts`.
    pub hosts: Option<String>,
    /// Main task list.
    pub tasks: Vec<TaskItem>,
    /// Tasks run before roles/tasks.
    pub pre_tasks: Vec<TaskItem>,
    /// Tasks run after the main list.
    pub post_tasks: Vec<TaskItem>,
    /// Handlers notified by tasks.
    pub handlers: Vec<TaskItem>,
    /// Every play-level key as written (including `hosts`, `vars`, `roles`),
    /// except the task lists; preserves source order for round-tripping.
    pub keywords: Mapping,
}

impl Play {
    /// Parses one play from a YAML node.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePlaybookError::Structure`] on malformed plays.
    pub fn from_value(value: &Value, path: &str) -> Result<Play, ParsePlaybookError> {
        let map = value
            .as_map()
            .ok_or_else(|| structure(path, "play is not a mapping"))?;
        let mut play = Play {
            name: map.get("name").and_then(|v| v.as_str()).map(String::from),
            hosts: map.get("hosts").and_then(|v| v.as_str()).map(String::from),
            tasks: Vec::new(),
            pre_tasks: Vec::new(),
            post_tasks: Vec::new(),
            handlers: Vec::new(),
            keywords: Mapping::new(),
        };
        for (k, v) in map.iter() {
            match k {
                "tasks" | "pre_tasks" | "post_tasks" | "handlers" => {
                    let items = v
                        .as_seq()
                        .ok_or_else(|| structure(format!("{path}.{k}"), "must be a task list"))?;
                    let parsed = parse_task_list(items, &format!("{path}.{k}"))?;
                    match k {
                        "tasks" => play.tasks = parsed,
                        "pre_tasks" => play.pre_tasks = parsed,
                        "post_tasks" => play.post_tasks = parsed,
                        "handlers" => play.handlers = parsed,
                        _ => unreachable!(),
                    }
                }
                "name" => {}
                other => {
                    play.keywords.insert(other.to_string(), v.clone());
                }
            }
        }
        Ok(play)
    }

    /// Renders back to a YAML node in the canonical key order.
    pub fn to_value(&self) -> Value {
        let mut m = Mapping::new();
        if let Some(name) = &self.name {
            m.insert("name".to_string(), Value::Str(name.clone()));
        }
        for (k, v) in self.keywords.iter() {
            m.insert(k.to_string(), v.clone());
        }
        if !self.pre_tasks.is_empty() {
            m.insert(
                "pre_tasks".to_string(),
                Value::Seq(self.pre_tasks.iter().map(TaskItem::to_value).collect()),
            );
        }
        if !self.tasks.is_empty() {
            m.insert(
                "tasks".to_string(),
                Value::Seq(self.tasks.iter().map(TaskItem::to_value).collect()),
            );
        }
        if !self.post_tasks.is_empty() {
            m.insert(
                "post_tasks".to_string(),
                Value::Seq(self.post_tasks.iter().map(TaskItem::to_value).collect()),
            );
        }
        if !self.handlers.is_empty() {
            m.insert(
                "handlers".to_string(),
                Value::Seq(self.handlers.iter().map(TaskItem::to_value).collect()),
            );
        }
        Value::Map(m)
    }

    /// All tasks across `pre_tasks`, `tasks` and `post_tasks`, flattening
    /// blocks depth-first. Handlers are excluded.
    pub fn flat_tasks(&self) -> Vec<&Task> {
        fn walk<'a>(items: &'a [TaskItem], out: &mut Vec<&'a Task>) {
            for item in items {
                match item {
                    TaskItem::Task(t) => out.push(t),
                    TaskItem::Block(b) => {
                        walk(&b.block, out);
                        walk(&b.rescue, out);
                        walk(&b.always, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.pre_tasks, &mut out);
        walk(&self.tasks, &mut out);
        walk(&self.post_tasks, &mut out);
        out
    }
}

/// A playbook: an ordered list of plays.
#[derive(Debug, Clone, PartialEq)]
pub struct Playbook {
    /// Plays in execution order.
    pub plays: Vec<Play>,
}

impl Playbook {
    /// Parses a playbook from YAML text (top level must be a sequence of
    /// plays).
    ///
    /// # Errors
    ///
    /// Returns [`ParsePlaybookError`] on YAML or structural errors.
    pub fn parse(src: &str) -> Result<Playbook, ParsePlaybookError> {
        let v = wisdom_yaml::parse(src)?;
        Playbook::from_value(&v)
    }

    /// Interprets a parsed YAML node as a playbook.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePlaybookError::Structure`] when the node is not a
    /// non-empty sequence of play mappings.
    pub fn from_value(value: &Value) -> Result<Playbook, ParsePlaybookError> {
        let items = value
            .as_seq()
            .ok_or_else(|| structure("$", "playbook must be a sequence of plays"))?;
        if items.is_empty() {
            return Err(structure("$", "playbook is empty"));
        }
        let plays = items
            .iter()
            .enumerate()
            .map(|(i, v)| Play::from_value(v, &format!("plays[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Playbook { plays })
    }

    /// Renders back to a YAML node.
    pub fn to_value(&self) -> Value {
        Value::Seq(self.plays.iter().map(Play::to_value).collect())
    }

    /// Emits canonical YAML text with a `---` document marker.
    pub fn to_yaml(&self) -> String {
        wisdom_yaml::EmitOptions {
            start_marker: true,
            ..Default::default()
        }
        .emit(&self.to_value())
    }
}

impl fmt::Display for Playbook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_yaml())
    }
}

/// Parses a task file (a role's `tasks/main.yml`): a sequence of tasks.
///
/// # Errors
///
/// Returns [`ParsePlaybookError`] on YAML or structural errors.
///
/// # Examples
///
/// ```
/// let items = wisdom_ansible::parse_task_file(
///     "- name: Ping\n  ansible.builtin.ping: {}\n",
/// )?;
/// assert_eq!(items.len(), 1);
/// # Ok::<(), wisdom_ansible::ParsePlaybookError>(())
/// ```
pub fn parse_task_file(src: &str) -> Result<Vec<TaskItem>, ParsePlaybookError> {
    let v = wisdom_yaml::parse(src)?;
    let items = v
        .as_seq()
        .ok_or_else(|| structure("$", "task file must be a sequence of tasks"))?;
    parse_task_list(items, "tasks")
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "---\n- hosts: servers\n  tasks:\n    - name: Install SSH server\n      ansible.builtin.apt:\n        name: openssh-server\n        state: present\n    - name: Start SSH server\n      ansible.builtin.service:\n        name: ssh\n        state: started\n";

    #[test]
    fn parse_paper_figure_1() {
        let pb = Playbook::parse(FIG1).unwrap();
        assert_eq!(pb.plays.len(), 1);
        let play = &pb.plays[0];
        assert_eq!(play.hosts.as_deref(), Some("servers"));
        assert_eq!(play.tasks.len(), 2);
        assert_eq!(play.tasks[0].name(), Some("Install SSH server"));
        let tasks = play.flat_tasks();
        assert_eq!(tasks[1].fqcn(), "ansible.builtin.service");
    }

    #[test]
    fn playbook_round_trip() {
        let pb = Playbook::parse(FIG1).unwrap();
        let text = pb.to_yaml();
        let back = Playbook::parse(&text).unwrap();
        assert_eq!(back, pb);
    }

    #[test]
    fn play_with_vars_and_handlers() {
        let src = "- name: Web play\n  hosts: web\n  become: true\n  vars:\n    port: 8080\n  tasks:\n    - name: T\n      ping: {}\n  handlers:\n    - name: restart nginx\n      service:\n        name: nginx\n        state: restarted\n";
        let pb = Playbook::parse(src).unwrap();
        let play = &pb.plays[0];
        assert_eq!(play.handlers.len(), 1);
        assert!(play.keywords.contains_key("vars"));
        assert!(play.keywords.contains_key("become"));
        assert!(!play.keywords.contains_key("tasks"));
    }

    #[test]
    fn block_parsing() {
        let src = "- hosts: all\n  tasks:\n    - name: Grouped\n      block:\n        - name: A\n          ping: {}\n        - name: B\n          ping: {}\n      rescue:\n        - name: R\n          debug:\n            msg: failed\n      when: do_it\n";
        let pb = Playbook::parse(src).unwrap();
        match &pb.plays[0].tasks[0] {
            TaskItem::Block(b) => {
                assert_eq!(b.block.len(), 2);
                assert_eq!(b.rescue.len(), 1);
                assert!(b.keywords.contains_key("when"));
            }
            other => panic!("expected block, got {other:?}"),
        }
        assert_eq!(pb.plays[0].flat_tasks().len(), 3);
    }

    #[test]
    fn empty_playbook_rejected() {
        assert!(Playbook::parse("[]\n").is_err());
        assert!(Playbook::parse("").is_err());
    }

    #[test]
    fn non_sequence_rejected() {
        let err = Playbook::parse("hosts: all\n").unwrap_err();
        assert!(err.to_string().contains("sequence"));
    }

    #[test]
    fn bad_task_propagates_path() {
        let src = "- hosts: all\n  tasks:\n    - name: broken\n      when: x\n";
        let err = Playbook::parse(src).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("tasks[0]"), "{msg}");
    }

    #[test]
    fn task_file_parsing() {
        let items = parse_task_file("- name: A\n  ping: {}\n- name: B\n  setup: {}\n").unwrap();
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn task_file_must_be_sequence() {
        assert!(parse_task_file("name: x\nping: {}\n").is_err());
    }

    #[test]
    fn multi_play_playbook() {
        let src =
            "- hosts: web\n  tasks:\n    - ping: {}\n- hosts: db\n  tasks:\n    - setup: {}\n";
        let pb = Playbook::parse(src).unwrap();
        assert_eq!(pb.plays.len(), 2);
    }
}
