//! The module registry: the catalog of Ansible modules this system knows
//! about, with their fully-qualified collection names (FQCN), short-name
//! aliases, parameter schemas, and the equivalence classes used by the
//! Ansible Aware metric (§5.1 of the paper: `command`/`shell`,
//! `copy`/`template`, `package`/`apt`/`dnf`/`yum` accept many of the same
//! arguments and are given partial credit when exchanged).

use std::collections::HashMap;
use std::sync::OnceLock;

/// The expected shape of a module parameter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Any scalar usable as a string (paths, names, URLs, jinja templates).
    Str,
    /// Boolean toggles (`yes`/`no`/`true`/`false`).
    Bool,
    /// Integer quantities (ports, timeouts, sizes).
    Int,
    /// A YAML sequence.
    List,
    /// A YAML mapping.
    Map,
    /// Unchecked (heterogeneous values like `mode: 0644` or `mode: "u+x"`).
    Any,
}

/// Schema for a single module parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name as written in YAML.
    pub name: &'static str,
    /// Whether the module requires the parameter.
    pub required: bool,
    /// Expected value shape.
    pub kind: ParamKind,
}

const fn req(name: &'static str, kind: ParamKind) -> ParamSpec {
    ParamSpec {
        name,
        required: true,
        kind,
    }
}

const fn opt(name: &'static str, kind: ParamKind) -> ParamSpec {
    ParamSpec {
        name,
        required: false,
        kind,
    }
}

/// Schema and identity of one Ansible module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Fully qualified collection name, e.g. `ansible.builtin.apt`.
    pub fqcn: &'static str,
    /// Short alias, e.g. `apt` (empty when the module has no legacy alias).
    pub short: &'static str,
    /// Parameter schemas.
    pub params: &'static [ParamSpec],
    /// Whether the module accepts a free-form command string instead of a
    /// parameter mapping (`command`, `shell`, `raw`, `script`).
    pub free_form: bool,
    /// Equivalence class label for Ansible Aware partial credit.
    pub equiv_class: Option<&'static str>,
}

use ParamKind::{Any, Bool, Int, List, Map, Str};

macro_rules! module {
    ($fqcn:literal, $short:literal, free_form: $ff:expr, equiv: $eq:expr, [$($p:expr),* $(,)?]) => {
        ModuleSpec {
            fqcn: $fqcn,
            short: $short,
            params: &[$($p),*],
            free_form: $ff,
            equiv_class: $eq,
        }
    };
}

/// Every module known to the registry.
///
/// The selection mirrors what dominates real Galaxy content: package
/// management, services, files, users, networking appliances, cloud and
/// container modules.
pub static MODULES: &[ModuleSpec] = &[
    // ---- package management -------------------------------------------------
    module!("ansible.builtin.apt", "apt", free_form: false, equiv: Some("pkg"), [
        req("name", Any), opt("state", Str), opt("update_cache", Bool),
        opt("cache_valid_time", Int), opt("install_recommends", Bool), opt("force", Bool),
    ]),
    module!("ansible.builtin.yum", "yum", free_form: false, equiv: Some("pkg"), [
        req("name", Any), opt("state", Str), opt("enablerepo", Str),
        opt("disablerepo", Str), opt("update_cache", Bool),
    ]),
    module!("ansible.builtin.dnf", "dnf", free_form: false, equiv: Some("pkg"), [
        req("name", Any), opt("state", Str), opt("enablerepo", Str), opt("update_cache", Bool),
    ]),
    module!("ansible.builtin.package", "package", free_form: false, equiv: Some("pkg"), [
        req("name", Any), opt("state", Str), opt("use", Str),
    ]),
    module!("ansible.builtin.pip", "pip", free_form: false, equiv: None, [
        req("name", Any), opt("state", Str), opt("virtualenv", Str),
        opt("executable", Str), opt("extra_args", Str), opt("version", Any),
    ]),
    module!("community.general.npm", "npm", free_form: false, equiv: None, [
        opt("name", Str), opt("path", Str), opt("global", Bool), opt("state", Str),
        opt("production", Bool),
    ]),
    module!("community.general.gem", "gem", free_form: false, equiv: None, [
        req("name", Str), opt("state", Str), opt("user_install", Bool), opt("version", Any),
    ]),
    module!("community.general.snap", "snap", free_form: false, equiv: None, [
        req("name", Any), opt("state", Str), opt("classic", Bool), opt("channel", Str),
    ]),
    module!("ansible.builtin.apt_repository", "apt_repository", free_form: false, equiv: None, [
        req("repo", Str), opt("state", Str), opt("filename", Str), opt("update_cache", Bool),
    ]),
    module!("ansible.builtin.apt_key", "apt_key", free_form: false, equiv: None, [
        opt("url", Str), opt("id", Str), opt("state", Str), opt("keyserver", Str),
    ]),
    module!("ansible.builtin.yum_repository", "yum_repository", free_form: false, equiv: None, [
        req("name", Str), opt("description", Str), opt("baseurl", Str),
        opt("gpgcheck", Bool), opt("gpgkey", Str), opt("enabled", Bool), opt("state", Str),
    ]),
    // ---- services -----------------------------------------------------------
    module!("ansible.builtin.service", "service", free_form: false, equiv: Some("svc"), [
        req("name", Str), opt("state", Str), opt("enabled", Bool), opt("daemon_reload", Bool),
    ]),
    module!("ansible.builtin.systemd", "systemd", free_form: false, equiv: Some("svc"), [
        opt("name", Str), opt("state", Str), opt("enabled", Bool),
        opt("daemon_reload", Bool), opt("masked", Bool), opt("scope", Str),
    ]),
    module!("ansible.builtin.cron", "cron", free_form: false, equiv: None, [
        req("name", Str), opt("minute", Any), opt("hour", Any), opt("day", Any),
        opt("month", Any), opt("weekday", Any), opt("job", Str), opt("state", Str),
        opt("user", Str), opt("special_time", Str),
    ]),
    // ---- files --------------------------------------------------------------
    module!("ansible.builtin.copy", "copy", free_form: false, equiv: Some("filexfer"), [
        opt("src", Str), req("dest", Str), opt("owner", Str), opt("group", Str),
        opt("mode", Any), opt("content", Str), opt("backup", Bool), opt("remote_src", Bool),
        opt("validate", Str), opt("directory_mode", Any), opt("force", Bool),
    ]),
    module!("ansible.builtin.template", "template", free_form: false, equiv: Some("filexfer"), [
        req("src", Str), req("dest", Str), opt("owner", Str), opt("group", Str),
        opt("mode", Any), opt("backup", Bool), opt("validate", Str), opt("force", Bool),
    ]),
    module!("ansible.builtin.file", "file", free_form: false, equiv: None, [
        req("path", Str), opt("state", Str), opt("owner", Str), opt("group", Str),
        opt("mode", Any), opt("recurse", Bool), opt("src", Str), opt("force", Bool),
    ]),
    module!("ansible.builtin.lineinfile", "lineinfile", free_form: false, equiv: None, [
        req("path", Str), opt("line", Str), opt("regexp", Str), opt("state", Str),
        opt("insertafter", Str), opt("insertbefore", Str), opt("create", Bool),
        opt("backup", Bool), opt("owner", Str), opt("group", Str), opt("mode", Any),
    ]),
    module!("ansible.builtin.blockinfile", "blockinfile", free_form: false, equiv: None, [
        req("path", Str), opt("block", Str), opt("state", Str), opt("marker", Str),
        opt("insertafter", Str), opt("create", Bool), opt("backup", Bool),
    ]),
    module!("ansible.builtin.replace", "replace", free_form: false, equiv: None, [
        req("path", Str), req("regexp", Str), opt("replace", Str), opt("backup", Bool),
    ]),
    module!("ansible.builtin.fetch", "fetch", free_form: false, equiv: None, [
        req("src", Str), req("dest", Str), opt("flat", Bool), opt("fail_on_missing", Bool),
    ]),
    module!("ansible.builtin.stat", "stat", free_form: false, equiv: None, [
        req("path", Str), opt("follow", Bool), opt("get_checksum", Bool),
    ]),
    module!("ansible.builtin.find", "find", free_form: false, equiv: None, [
        req("paths", Any), opt("patterns", Any), opt("recurse", Bool), opt("age", Str),
        opt("size", Str), opt("file_type", Str), opt("hidden", Bool),
    ]),
    module!("ansible.builtin.tempfile", "tempfile", free_form: false, equiv: None, [
        opt("state", Str), opt("suffix", Str), opt("prefix", Str),
    ]),
    module!("ansible.builtin.assemble", "assemble", free_form: false, equiv: None, [
        req("src", Str), req("dest", Str), opt("remote_src", Bool), opt("delimiter", Str),
    ]),
    module!("ansible.builtin.slurp", "slurp", free_form: false, equiv: None, [
        req("src", Str),
    ]),
    module!("ansible.builtin.unarchive", "unarchive", free_form: false, equiv: None, [
        req("src", Str), req("dest", Str), opt("remote_src", Bool), opt("creates", Str),
        opt("owner", Str), opt("group", Str), opt("mode", Any), opt("extra_opts", List),
    ]),
    module!("ansible.builtin.get_url", "get_url", free_form: false, equiv: None, [
        req("url", Str), req("dest", Str), opt("mode", Any), opt("owner", Str),
        opt("group", Str), opt("checksum", Str), opt("validate_certs", Bool),
        opt("timeout", Int), opt("force", Bool),
    ]),
    module!("ansible.posix.synchronize", "synchronize", free_form: false, equiv: None, [
        req("src", Str), req("dest", Str), opt("delete", Bool), opt("recursive", Bool),
        opt("rsync_opts", List), opt("mode", Str),
    ]),
    module!("ansible.posix.authorized_key", "authorized_key", free_form: false, equiv: None, [
        req("user", Str), req("key", Str), opt("state", Str), opt("exclusive", Bool),
    ]),
    module!("ansible.builtin.known_hosts", "known_hosts", free_form: false, equiv: None, [
        req("name", Str), opt("key", Str), opt("state", Str), opt("path", Str),
    ]),
    // ---- commands -----------------------------------------------------------
    module!("ansible.builtin.command", "command", free_form: true, equiv: Some("cmd"), [
        opt("cmd", Str), opt("argv", List), opt("chdir", Str), opt("creates", Str),
        opt("removes", Str), opt("stdin", Str),
    ]),
    module!("ansible.builtin.shell", "shell", free_form: true, equiv: Some("cmd"), [
        opt("cmd", Str), opt("chdir", Str), opt("creates", Str), opt("removes", Str),
        opt("executable", Str),
    ]),
    module!("ansible.builtin.raw", "raw", free_form: true, equiv: Some("cmd"), [
        opt("executable", Str),
    ]),
    module!("ansible.builtin.script", "script", free_form: true, equiv: None, [
        opt("cmd", Str), opt("chdir", Str), opt("creates", Str), opt("executable", Str),
    ]),
    // ---- users and groups ---------------------------------------------------
    module!("ansible.builtin.user", "user", free_form: false, equiv: None, [
        req("name", Str), opt("state", Str), opt("groups", Any), opt("group", Str),
        opt("shell", Str), opt("home", Str), opt("createhome", Bool), opt("system", Bool),
        opt("password", Str), opt("append", Bool), opt("uid", Int), opt("comment", Str),
    ]),
    module!("ansible.builtin.group", "group", free_form: false, equiv: None, [
        req("name", Str), opt("state", Str), opt("gid", Int), opt("system", Bool),
    ]),
    // ---- system -------------------------------------------------------------
    module!("ansible.builtin.hostname", "hostname", free_form: false, equiv: None, [
        req("name", Str), opt("use", Str),
    ]),
    module!("ansible.builtin.reboot", "reboot", free_form: false, equiv: None, [
        opt("reboot_timeout", Int), opt("msg", Str), opt("test_command", Str),
    ]),
    module!("ansible.builtin.wait_for", "wait_for", free_form: false, equiv: None, [
        opt("host", Str), opt("port", Int), opt("delay", Int), opt("timeout", Int),
        opt("state", Str), opt("path", Str), opt("search_regex", Str),
    ]),
    module!("ansible.builtin.wait_for_connection", "wait_for_connection", free_form: false, equiv: None, [
        opt("delay", Int), opt("timeout", Int),
    ]),
    module!("ansible.posix.sysctl", "sysctl", free_form: false, equiv: None, [
        req("name", Str), opt("value", Any), opt("state", Str), opt("reload", Bool),
        opt("sysctl_set", Bool), opt("sysctl_file", Str),
    ]),
    module!("ansible.posix.seboolean", "seboolean", free_form: false, equiv: None, [
        req("name", Str), req("state", Bool), opt("persistent", Bool),
    ]),
    module!("ansible.posix.selinux", "selinux", free_form: false, equiv: None, [
        opt("policy", Str), req("state", Str),
    ]),
    module!("ansible.posix.mount", "mount", free_form: false, equiv: None, [
        req("path", Str), opt("src", Str), opt("fstype", Str), opt("opts", Str),
        req("state", Str), opt("boot", Bool),
    ]),
    module!("community.general.timezone", "timezone", free_form: false, equiv: None, [
        req("name", Str),
    ]),
    module!("community.general.locale_gen", "locale_gen", free_form: false, equiv: None, [
        req("name", Any), opt("state", Str),
    ]),
    module!("community.general.modprobe", "modprobe", free_form: false, equiv: None, [
        req("name", Str), opt("state", Str), opt("params", Str),
    ]),
    module!("community.general.alternatives", "alternatives", free_form: false, equiv: None, [
        req("name", Str), req("path", Str), opt("link", Str), opt("priority", Int),
    ]),
    module!("community.general.ufw", "ufw", free_form: false, equiv: None, [
        opt("rule", Str), opt("port", Any), opt("proto", Str), opt("state", Str),
        opt("direction", Str), opt("from_ip", Str), opt("policy", Str), opt("delete", Bool),
    ]),
    module!("ansible.posix.firewalld", "firewalld", free_form: false, equiv: None, [
        opt("service", Str), opt("port", Str), opt("zone", Str), req("state", Str),
        opt("permanent", Bool), opt("immediate", Bool), opt("rich_rule", Str),
    ]),
    module!("ansible.builtin.iptables", "iptables", free_form: false, equiv: None, [
        opt("chain", Str), opt("protocol", Str), opt("destination_port", Any),
        opt("jump", Str), opt("state", Str), opt("comment", Str), opt("source", Str),
    ]),
    // ---- source control & downloads ----------------------------------------
    module!("ansible.builtin.git", "git", free_form: false, equiv: None, [
        req("repo", Str), req("dest", Str), opt("version", Any), opt("update", Bool),
        opt("force", Bool), opt("depth", Int), opt("accept_hostkey", Bool), opt("key_file", Str),
    ]),
    module!("ansible.builtin.subversion", "subversion", free_form: false, equiv: None, [
        req("repo", Str), req("dest", Str), opt("revision", Any), opt("update", Bool),
    ]),
    // ---- control flow & utility ---------------------------------------------
    module!("ansible.builtin.debug", "debug", free_form: false, equiv: None, [
        opt("msg", Any), opt("var", Str), opt("verbosity", Int),
    ]),
    module!("ansible.builtin.set_fact", "set_fact", free_form: false, equiv: None, [
        opt("cacheable", Bool),
    ]),
    module!("ansible.builtin.assert", "assert", free_form: false, equiv: None, [
        req("that", Any), opt("fail_msg", Str), opt("success_msg", Str), opt("quiet", Bool),
    ]),
    module!("ansible.builtin.fail", "fail", free_form: false, equiv: None, [
        opt("msg", Str),
    ]),
    module!("ansible.builtin.pause", "pause", free_form: false, equiv: None, [
        opt("seconds", Int), opt("minutes", Int), opt("prompt", Str),
    ]),
    module!("ansible.builtin.ping", "ping", free_form: false, equiv: None, [
        opt("data", Str),
    ]),
    module!("ansible.builtin.setup", "setup", free_form: false, equiv: None, [
        opt("gather_subset", Any), opt("filter", Str),
    ]),
    module!("ansible.builtin.gather_facts", "gather_facts", free_form: false, equiv: None, [
        opt("parallel", Bool),
    ]),
    module!("ansible.builtin.include_tasks", "include_tasks", free_form: false, equiv: Some("include"), [
        opt("file", Str), opt("apply", Map),
    ]),
    module!("ansible.builtin.import_tasks", "import_tasks", free_form: false, equiv: Some("include"), [
        opt("file", Str),
    ]),
    module!("ansible.builtin.include_role", "include_role", free_form: false, equiv: Some("incrole"), [
        req("name", Str), opt("tasks_from", Str), opt("vars_from", Str), opt("public", Bool),
    ]),
    module!("ansible.builtin.import_role", "import_role", free_form: false, equiv: Some("incrole"), [
        req("name", Str), opt("tasks_from", Str),
    ]),
    module!("ansible.builtin.include_vars", "include_vars", free_form: false, equiv: None, [
        opt("file", Str), opt("dir", Str), opt("name", Str),
    ]),
    module!("ansible.builtin.add_host", "add_host", free_form: false, equiv: None, [
        req("name", Str), opt("groups", Any),
    ]),
    module!("ansible.builtin.group_by", "group_by", free_form: false, equiv: None, [
        req("key", Str), opt("parents", Any),
    ]),
    module!("ansible.builtin.meta", "meta", free_form: true, equiv: None, [
    ]),
    module!("ansible.builtin.uri", "uri", free_form: false, equiv: None, [
        req("url", Str), opt("method", Str), opt("body", Any), opt("body_format", Str),
        opt("status_code", Any), opt("return_content", Bool), opt("headers", Map),
        opt("validate_certs", Bool), opt("timeout", Int), opt("user", Str), opt("password", Str),
    ]),
    // ---- databases ----------------------------------------------------------
    module!("community.mysql.mysql_db", "mysql_db", free_form: false, equiv: None, [
        req("name", Any), opt("state", Str), opt("login_user", Str),
        opt("login_password", Str), opt("encoding", Str), opt("collation", Str),
    ]),
    module!("community.mysql.mysql_user", "mysql_user", free_form: false, equiv: None, [
        req("name", Str), opt("password", Str), opt("priv", Str), opt("host", Str),
        opt("state", Str), opt("login_user", Str), opt("login_password", Str),
    ]),
    module!("community.postgresql.postgresql_db", "postgresql_db", free_form: false, equiv: None, [
        req("name", Str), opt("state", Str), opt("owner", Str), opt("encoding", Str),
        opt("template", Str),
    ]),
    module!("community.postgresql.postgresql_user", "postgresql_user", free_form: false, equiv: None, [
        req("name", Str), opt("password", Str), opt("db", Str), opt("priv", Str),
        opt("state", Str), opt("role_attr_flags", Str),
    ]),
    // ---- containers ----------------------------------------------------------
    module!("community.docker.docker_container", "docker_container", free_form: false, equiv: None, [
        req("name", Str), opt("image", Str), opt("state", Str), opt("ports", List),
        opt("volumes", List), opt("env", Map), opt("restart_policy", Str),
        opt("networks", List), opt("detach", Bool), opt("recreate", Bool),
    ]),
    module!("community.docker.docker_image", "docker_image", free_form: false, equiv: None, [
        req("name", Str), opt("source", Str), opt("tag", Str), opt("state", Str),
        opt("build", Map), opt("force_source", Bool),
    ]),
    module!("community.docker.docker_network", "docker_network", free_form: false, equiv: None, [
        req("name", Str), opt("state", Str), opt("driver", Str),
    ]),
    module!("kubernetes.core.k8s", "k8s", free_form: false, equiv: None, [
        opt("state", Str), opt("definition", Map), opt("src", Str), opt("namespace", Str),
        opt("kind", Str), opt("name", Str), opt("api_version", Str), opt("wait", Bool),
    ]),
    module!("kubernetes.core.helm", "helm", free_form: false, equiv: None, [
        req("name", Str), opt("chart_ref", Str), opt("release_namespace", Str),
        opt("state", Str), opt("values", Map), opt("create_namespace", Bool),
    ]),
    // ---- cloud ----------------------------------------------------------------
    module!("amazon.aws.ec2_instance", "ec2_instance", free_form: false, equiv: None, [
        opt("name", Str), opt("instance_type", Str), opt("image_id", Str),
        opt("key_name", Str), opt("state", Str), opt("vpc_subnet_id", Str),
        opt("security_group", Str), opt("tags", Map), opt("wait", Bool), opt("region", Str),
    ]),
    module!("amazon.aws.s3_bucket", "s3_bucket", free_form: false, equiv: None, [
        req("name", Str), opt("state", Str), opt("versioning", Bool), opt("policy", Any),
        opt("tags", Map), opt("region", Str),
    ]),
    module!("amazon.aws.ec2_security_group", "ec2_security_group", free_form: false, equiv: None, [
        req("name", Str), opt("description", Str), opt("rules", List), opt("state", Str),
        opt("vpc_id", Str), opt("region", Str),
    ]),
    // ---- network appliances ---------------------------------------------------
    module!("vyos.vyos.vyos_facts", "vyos_facts", free_form: false, equiv: None, [
        opt("gather_subset", Any), opt("gather_network_resources", Any),
    ]),
    module!("vyos.vyos.vyos_config", "vyos_config", free_form: false, equiv: None, [
        opt("lines", List), opt("src", Str), opt("backup", Bool), opt("save", Bool),
        opt("match", Str), opt("comment", Str),
    ]),
    module!("cisco.ios.ios_facts", "ios_facts", free_form: false, equiv: None, [
        opt("gather_subset", Any), opt("gather_network_resources", Any),
    ]),
    module!("cisco.ios.ios_config", "ios_config", free_form: false, equiv: None, [
        opt("lines", List), opt("parents", List), opt("src", Str), opt("backup", Bool),
        opt("save_when", Str), opt("match", Str),
    ]),
    module!("junipernetworks.junos.junos_config", "junos_config", free_form: false, equiv: None, [
        opt("lines", List), opt("src", Str), opt("backup", Bool), opt("confirm_commit", Bool),
        opt("comment", Str),
    ]),
    // ---- windows ---------------------------------------------------------------
    module!("ansible.windows.win_service", "win_service", free_form: false, equiv: Some("svc"), [
        req("name", Str), opt("state", Str), opt("start_mode", Str),
    ]),
    module!("ansible.windows.win_copy", "win_copy", free_form: false, equiv: Some("filexfer"), [
        opt("src", Str), req("dest", Str), opt("content", Str), opt("backup", Bool),
    ]),
    module!("ansible.windows.win_package", "win_package", free_form: false, equiv: Some("pkg"), [
        opt("path", Str), opt("product_id", Str), opt("state", Str), opt("arguments", Any),
    ]),
];

/// Lookup tables built once over [`MODULES`].
#[derive(Debug)]
pub struct ModuleRegistry {
    by_fqcn: HashMap<&'static str, &'static ModuleSpec>,
    by_short: HashMap<&'static str, &'static ModuleSpec>,
}

impl ModuleRegistry {
    /// The process-wide registry instance.
    ///
    /// # Examples
    ///
    /// ```
    /// use wisdom_ansible::ModuleRegistry;
    ///
    /// let reg = ModuleRegistry::global();
    /// assert_eq!(reg.resolve_fqcn("copy"), Some("ansible.builtin.copy"));
    /// ```
    pub fn global() -> &'static ModuleRegistry {
        static REGISTRY: OnceLock<ModuleRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut by_fqcn = HashMap::new();
            let mut by_short = HashMap::new();
            for m in MODULES {
                let prev = by_fqcn.insert(m.fqcn, m);
                debug_assert!(prev.is_none(), "duplicate fqcn {}", m.fqcn);
                if !m.short.is_empty() {
                    let prev = by_short.insert(m.short, m);
                    debug_assert!(prev.is_none(), "duplicate short name {}", m.short);
                }
            }
            ModuleRegistry { by_fqcn, by_short }
        })
    }

    /// Looks a module up by FQCN or short alias.
    pub fn get(&self, name: &str) -> Option<&'static ModuleSpec> {
        self.by_fqcn
            .get(name)
            .or_else(|| self.by_short.get(name))
            .copied()
    }

    /// Resolves any module spelling to its fully qualified collection name,
    /// e.g. `copy` → `ansible.builtin.copy` (the normalization step of the
    /// Ansible Aware metric).
    pub fn resolve_fqcn(&self, name: &str) -> Option<&'static str> {
        self.get(name).map(|m| m.fqcn)
    }

    /// Whether `key` denotes a known module (by either spelling).
    pub fn is_module(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Returns the equivalence-class label shared by near-interchangeable
    /// modules (e.g. `command`/`shell`), if any.
    pub fn equiv_class(&self, name: &str) -> Option<&'static str> {
        self.get(name).and_then(|m| m.equiv_class)
    }

    /// Whether two module spellings are the same module or members of the
    /// same equivalence class.
    pub fn same_or_equivalent(&self, a: &str, b: &str) -> Equivalence {
        match (self.resolve_fqcn(a), self.resolve_fqcn(b)) {
            (Some(fa), Some(fb)) if fa == fb => Equivalence::Same,
            (Some(_), Some(_)) => {
                let ca = self.equiv_class(a);
                if ca.is_some() && ca == self.equiv_class(b) {
                    Equivalence::Equivalent
                } else {
                    Equivalence::Different
                }
            }
            _ => {
                if a == b {
                    Equivalence::Same
                } else {
                    Equivalence::Different
                }
            }
        }
    }

    /// Iterates over all registered modules.
    pub fn iter(&self) -> impl Iterator<Item = &'static ModuleSpec> + '_ {
        self.by_fqcn.values().copied()
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.by_fqcn.len()
    }

    /// Whether the registry is empty (never true for the global registry).
    pub fn is_empty(&self) -> bool {
        self.by_fqcn.is_empty()
    }
}

/// Result of comparing two module names under the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// Identical modules (possibly different spellings of the same FQCN).
    Same,
    /// Distinct modules in the same equivalence class (partial credit).
    Equivalent,
    /// Unrelated modules.
    Different,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_without_duplicates() {
        let reg = ModuleRegistry::global();
        assert_eq!(reg.len(), MODULES.len());
        assert!(!reg.is_empty());
    }

    #[test]
    fn short_name_resolution() {
        let reg = ModuleRegistry::global();
        assert_eq!(reg.resolve_fqcn("apt"), Some("ansible.builtin.apt"));
        assert_eq!(
            reg.resolve_fqcn("ansible.builtin.apt"),
            Some("ansible.builtin.apt")
        );
        assert_eq!(
            reg.resolve_fqcn("firewalld"),
            Some("ansible.posix.firewalld")
        );
        assert_eq!(reg.resolve_fqcn("nonexistent_module"), None);
    }

    #[test]
    fn equivalence_classes_match_paper() {
        let reg = ModuleRegistry::global();
        assert_eq!(
            reg.same_or_equivalent("command", "shell"),
            Equivalence::Equivalent
        );
        assert_eq!(
            reg.same_or_equivalent("copy", "template"),
            Equivalence::Equivalent
        );
        assert_eq!(
            reg.same_or_equivalent("package", "apt"),
            Equivalence::Equivalent
        );
        assert_eq!(
            reg.same_or_equivalent("dnf", "yum"),
            Equivalence::Equivalent
        );
        assert_eq!(
            reg.same_or_equivalent("apt", "ansible.builtin.apt"),
            Equivalence::Same
        );
        assert_eq!(
            reg.same_or_equivalent("apt", "service"),
            Equivalence::Different
        );
        assert_eq!(
            reg.same_or_equivalent("copy", "user"),
            Equivalence::Different
        );
    }

    #[test]
    fn unknown_names_compare_by_string() {
        let reg = ModuleRegistry::global();
        assert_eq!(
            reg.same_or_equivalent("custom.ns.thing", "custom.ns.thing"),
            Equivalence::Same
        );
        assert_eq!(
            reg.same_or_equivalent("custom.ns.thing", "other.ns.thing"),
            Equivalence::Different
        );
    }

    #[test]
    fn free_form_flags() {
        let reg = ModuleRegistry::global();
        assert!(reg.get("shell").unwrap().free_form);
        assert!(reg.get("command").unwrap().free_form);
        assert!(!reg.get("apt").unwrap().free_form);
    }

    #[test]
    fn every_module_has_valid_fqcn_shape() {
        for m in MODULES {
            let parts: Vec<&str> = m.fqcn.split('.').collect();
            assert!(
                parts.len() >= 3,
                "fqcn {} should be ns.collection.module",
                m.fqcn
            );
            assert_eq!(parts.last().copied(), Some(m.short), "short of {}", m.fqcn);
        }
    }

    #[test]
    fn required_params_present_in_specs() {
        let reg = ModuleRegistry::global();
        let apt = reg.get("apt").unwrap();
        assert!(apt.params.iter().any(|p| p.name == "name" && p.required));
        assert!(apt.params.iter().any(|p| p.name == "state" && !p.required));
    }
}
