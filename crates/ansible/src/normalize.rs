//! Formatting standardization, as applied to the fine-tuning dataset in the
//! paper ("standardized the formatting to match the style recommended by the
//! Ansible team") and reused by the Ansible Aware metric's normalization
//! step:
//!
//! * module short names are replaced by their FQCN (`copy` →
//!   `ansible.builtin.copy`),
//! * legacy `k=v` string arguments of non-free-form modules become parameter
//!   mappings,
//! * task keys are reordered to `name`, module, keywords,
//! * play keys are reordered to the conventional layout,
//! * YAML 1.1 booleans (`yes`/`no`) become `true`/`false` (a side effect of
//!   the scalar schema) and the canonical emitter fixes indentation/quoting.

use wisdom_yaml::{Mapping, ParseYamlError, Value};

use crate::keywords::{is_block_key, is_task_keyword};
use crate::kv::parse_kv_args;
use crate::lint::{detect_target, LintTarget};
use crate::module_registry::ModuleRegistry;

/// Canonical play key order (structural lists come last, like the docs).
const PLAY_KEY_ORDER: &[&str] = &[
    "name",
    "hosts",
    "connection",
    "gather_facts",
    "become",
    "become_user",
    "remote_user",
    "serial",
    "strategy",
    "vars",
    "vars_files",
    "environment",
    "collections",
    "tags",
    "roles",
    "pre_tasks",
    "tasks",
    "post_tasks",
    "handlers",
];

/// Normalizes a whole document (playbook or task file, auto-detected).
///
/// # Examples
///
/// ```
/// use wisdom_ansible::normalize_document;
///
/// let v = wisdom_yaml::parse("- apt: name=nginx state=present\n  name: Install nginx\n")?;
/// let n = normalize_document(&v);
/// let text = wisdom_yaml::emit(&n);
/// assert_eq!(
///     text,
///     "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
/// );
/// # Ok::<(), wisdom_yaml::ParseYamlError>(())
/// ```
pub fn normalize_document(value: &Value) -> Value {
    match detect_target(value) {
        LintTarget::Playbook => {
            let Some(items) = value.as_seq() else {
                return value.clone();
            };
            Value::Seq(items.iter().map(normalize_play).collect())
        }
        _ => match value.as_seq() {
            Some(items) => Value::Seq(items.iter().map(normalize_task).collect()),
            None => normalize_task(value),
        },
    }
}

/// Parses, normalizes, and re-emits YAML text with a `---` marker.
///
/// # Errors
///
/// Returns the underlying [`ParseYamlError`] when `src` is not valid YAML.
pub fn standardize(src: &str) -> Result<String, ParseYamlError> {
    let v = wisdom_yaml::parse(src)?;
    let n = normalize_document(&v);
    Ok(wisdom_yaml::EmitOptions {
        start_marker: true,
        ..Default::default()
    }
    .emit(&n))
}

/// Normalizes one play mapping.
pub fn normalize_play(value: &Value) -> Value {
    let Some(map) = value.as_map() else {
        return value.clone();
    };
    let mut out = Mapping::new();
    for (k, v) in map.iter() {
        let nv = match k {
            "tasks" | "pre_tasks" | "post_tasks" | "handlers" => match v.as_seq() {
                Some(items) => Value::Seq(items.iter().map(normalize_task).collect()),
                None => v.clone(),
            },
            _ => v.clone(),
        };
        out.insert(k.to_string(), nv);
    }
    out.sort_by_key_order(PLAY_KEY_ORDER);
    Value::Map(out)
}

/// Normalizes one task (or block) mapping: FQCN module key, dict-ified
/// arguments, canonical key order.
pub fn normalize_task(value: &Value) -> Value {
    let Some(map) = value.as_map() else {
        return value.clone();
    };
    if map.keys().any(is_block_key) {
        // Blocks: normalize the inner task lists, keep keyword order but put
        // name first.
        let mut out = Mapping::new();
        for (k, v) in map.iter() {
            let nv = if is_block_key(k) {
                match v.as_seq() {
                    Some(items) => Value::Seq(items.iter().map(normalize_task).collect()),
                    None => v.clone(),
                }
            } else {
                v.clone()
            };
            out.insert(k.to_string(), nv);
        }
        out.sort_by_key_order(&["name", "block", "rescue", "always"]);
        return Value::Map(out);
    }
    let reg = ModuleRegistry::global();
    let module_key = map.keys().find(|k| !is_task_keyword(k)).map(String::from);
    let mut out = Mapping::new();
    for (k, v) in map.iter() {
        if Some(k) == module_key.as_deref() {
            let fqcn = reg.resolve_fqcn(k).unwrap_or(k).to_string();
            let args = normalize_args(k, v, reg);
            out.insert(fqcn, args);
        } else {
            out.insert(k.to_string(), v.clone());
        }
    }
    if let Some(mk) = &module_key {
        let fqcn = reg.resolve_fqcn(mk).unwrap_or(mk).to_string();
        out.sort_by_key_order(&["name", fqcn.as_str()]);
    } else {
        out.sort_by_key_order(&["name"]);
    }
    Value::Map(out)
}

/// Converts legacy `k=v` string args into a mapping for non-free-form
/// modules; leaves free-form strings and mappings untouched.
fn normalize_args(module: &str, args: &Value, reg: &ModuleRegistry) -> Value {
    let free_form = reg.get(module).map(|m| m.free_form).unwrap_or(false);
    match args {
        Value::Str(s) if !free_form => match parse_kv_args(s) {
            Some(m) => Value::Map(m),
            None => args.clone(),
        },
        _ => args.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lint_str, LintTarget};

    #[test]
    fn short_names_become_fqcn() {
        let src = "- name: T\n  copy:\n    src: a\n    dest: b\n";
        let out = standardize(src).unwrap();
        assert!(out.contains("ansible.builtin.copy:"), "{out}");
    }

    #[test]
    fn kv_args_become_mapping() {
        let src = "- name: T\n  yum: name=httpd state=latest\n";
        let out = standardize(src).unwrap();
        assert!(
            out.contains("ansible.builtin.yum:\n    name: httpd\n    state: latest"),
            "{out}"
        );
    }

    #[test]
    fn free_form_commands_untouched() {
        let src = "- name: T\n  shell: systemctl restart nginx\n";
        let out = standardize(src).unwrap();
        assert!(
            out.contains("ansible.builtin.shell: systemctl restart nginx"),
            "{out}"
        );
    }

    #[test]
    fn task_key_order_canonicalized() {
        let src = "- become: true\n  apt:\n    name: x\n  name: T\n  when: y\n";
        let out = standardize(src).unwrap();
        let name_pos = out.find("name: T").unwrap();
        let mod_pos = out.find("ansible.builtin.apt").unwrap();
        let become_pos = out.find("become").unwrap();
        assert!(name_pos < mod_pos && mod_pos < become_pos, "{out}");
    }

    #[test]
    fn play_key_order_canonicalized() {
        let src = "- tasks:\n    - ping: {}\n  hosts: all\n  name: P\n  become: true\n";
        let out = standardize(src).unwrap();
        let n = out.find("name: P").unwrap();
        let h = out.find("hosts: all").unwrap();
        let b = out.find("become: true").unwrap();
        let t = out.find("tasks:").unwrap();
        assert!(n < h && h < b && b < t, "{out}");
    }

    #[test]
    fn yes_no_become_true_false() {
        let src = "- name: T\n  apt:\n    name: x\n    update_cache: yes\n";
        let out = standardize(src).unwrap();
        assert!(out.contains("update_cache: true"), "{out}");
    }

    #[test]
    fn standardized_kv_task_becomes_schema_correct() {
        // The historical form is rejected by the linter…
        let src = "- name: T\n  apt: name=nginx state=present\n";
        assert!(!lint_str(src, LintTarget::Auto).is_empty());
        // …but its standardized form passes.
        let out = standardize(src).unwrap();
        assert!(
            lint_str(&out, LintTarget::Auto).is_empty(),
            "standardized form should lint clean:\n{out}"
        );
    }

    #[test]
    fn blocks_normalized_recursively() {
        let src =
            "- when: c\n  block:\n    - copy: src=a dest=b\n      name: inner\n  name: outer\n";
        let out = standardize(src).unwrap();
        assert!(out.contains("ansible.builtin.copy:"), "{out}");
        let n = out.find("name: outer").unwrap();
        let b = out.find("block:").unwrap();
        assert!(n < b, "{out}");
    }

    #[test]
    fn idempotent() {
        let src = "- name: T\n  yum: name=httpd state=latest\n  notify: restart httpd\n";
        let once = standardize(src).unwrap();
        let twice = standardize(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn non_sequence_input_untouched_shape() {
        let v = wisdom_yaml::parse("name: T\nping: {}\n").unwrap();
        let n = normalize_document(&v);
        assert!(n.as_map().is_some());
        assert!(n.as_map().unwrap().contains_key("ansible.builtin.ping"));
    }
}
