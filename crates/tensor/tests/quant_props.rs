//! Property tests for the int8 weight quantization layer: the fast packed
//! kernel must be bit-identical to the f32 blocked kernel run over the
//! dequantized matrix (the dequant-on-load oracle), and the
//! quantize→dequantize round trip must stay within half a quantization step
//! per block. Both properties are exercised over random matrices, shapes
//! straddling the panel/tile boundaries, and random block sizes — the same
//! guarantees the model-level `Precision::Int8` path leans on.

use proptest::prelude::*;
use wisdom_tensor::kernels::{matmul_acc, matmul_q8_acc, matmul_q8_acc_threads, matvec_q8_acc};
use wisdom_tensor::QuantMatrix;

/// Zero-skipping reference matvec mirroring the solo decode step.
fn matvec_acc_reference(x: &[f32], w: &[f32], n: usize, out: &mut [f32]) {
    for (p, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        for (o, &wv) in out.iter_mut().zip(w[p * n..(p + 1) * n].iter()) {
            *o += xv * wv;
        }
    }
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast int8 GEBP over the packed matrix == f32 blocked kernel over the
    /// dequantized matrix, bit for bit, for random m/k/n/block and values.
    #[test]
    fn quant_matmul_bit_identical_to_dequant_oracle(
        m in 1usize..10,
        k in 1usize..70,
        n in 1usize..140,
        block in 1usize..80,
        seed in any::<u32>(),
    ) {
        let a = pseudo(m * k, seed as u64);
        let w = pseudo(k * n, seed as u64 ^ 0x9e37);
        let qm = QuantMatrix::quantize_blocked(&w, k, n, block);
        let deq = qm.dequantize();
        let init = pseudo(m * n, seed as u64 ^ 0x517c);
        let mut fast = init.clone();
        matmul_q8_acc(&a, &qm, m, &mut fast);
        let mut oracle = init;
        matmul_acc(&a, &deq, m, k, n, &mut oracle);
        prop_assert!(bits_equal(&fast, &oracle), "fast path diverged from dequant oracle");
    }

    /// Thread count never changes a single output bit.
    #[test]
    fn quant_matmul_threads_bit_stable(
        m in 1usize..9,
        k in 1usize..50,
        n in 1usize..100,
        threads in 2usize..9,
        seed in any::<u32>(),
    ) {
        let a = pseudo(m * k, seed as u64);
        let w = pseudo(k * n, seed as u64 ^ 0xabcd);
        let qm = QuantMatrix::quantize(&w, k, n);
        let mut one = vec![0.0; m * n];
        matmul_q8_acc_threads(&a, &qm, m, &mut one, 1);
        let mut many = vec![0.0; m * n];
        matmul_q8_acc_threads(&a, &qm, m, &mut many, threads);
        prop_assert!(bits_equal(&one, &many), "threads={threads} diverged");
    }

    /// The zero-skipping quant matvec (solo decode path) matches the
    /// zero-skipping f32 reference over the dequantized matrix.
    #[test]
    fn quant_matvec_bit_identical_with_zero_skips(
        k in 1usize..70,
        n in 1usize..100,
        block in 1usize..80,
        zero_every in 1usize..6,
        seed in any::<u32>(),
    ) {
        let mut x = pseudo(k, seed as u64);
        for (i, v) in x.iter_mut().enumerate() {
            if i % zero_every == 0 {
                *v = 0.0;
            }
        }
        let w = pseudo(k * n, seed as u64 ^ 0x1357);
        let qm = QuantMatrix::quantize_blocked(&w, k, n, block);
        let deq = qm.dequantize();
        let mut fast = vec![0.0; n];
        matvec_q8_acc(&x, &qm, &mut fast);
        let mut oracle = vec![0.0; n];
        matvec_acc_reference(&x, &deq, n, &mut oracle);
        prop_assert!(bits_equal(&fast, &oracle), "quant matvec diverged");
    }

    /// Per-block round-trip error bound: |w - dq(q(w))| <= scale/2 (plus
    /// float slop), for every element, over random values and block sizes.
    #[test]
    fn round_trip_error_bounded_per_block(
        k in 1usize..60,
        n in 1usize..40,
        block in 1usize..70,
        vals in prop::collection::vec(-50.0f32..50.0, 1..0x800),
    ) {
        let w: Vec<f32> = (0..k * n).map(|i| vals[i % vals.len()]).collect();
        let qm = QuantMatrix::quantize_blocked(&w, k, n, block);
        let deq = qm.dequantize();
        for p in 0..k {
            for j in 0..n {
                let err = (w[p * n + j] - deq[p * n + j]).abs();
                let bound = qm.scale_at(p, j) * 0.501 + 1e-5;
                prop_assert!(err <= bound, "({p},{j}): err {err} > bound {bound}");
            }
        }
    }
}

/// Deterministic xorshift values in roughly [-2, 2]; proptest supplies the
/// seed so shrinking stays meaningful while values stay reproducible.
fn pseudo(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}
